//! Observers are pure taps: attaching one must not change a run.
//!
//! The `Observer` trait hands out `&Event` and no `Context`, so an
//! observer *cannot* reschedule, draw randomness, or mutate the world —
//! non-perturbation by construction. These tests demonstrate it end to
//! end on the full BIPS deployment: the same seeded scenario runs with
//! and without an observer attached, and every piece of final state
//! (system counters, per-user location-database cells, latency
//! statistics, substrate counters) is identical; two observed runs see
//! byte-identical event traces.

use std::cell::RefCell;
use std::rc::Rc;

use bips::core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips::sim::probe::EngineProbe;
use bips::sim::{Engine, Observer, SimTime};

const USERS: usize = 3;
const DURATION_S: u64 = 200;
const SEED: u64 = 20030519;

fn build_engine() -> Engine<BipsSystem> {
    let cfg = SystemConfig::default();
    let n_rooms = cfg.building.num_rooms();
    let mut builder = BipsSystem::builder(cfg);
    for i in 0..USERS {
        builder = builder.user(UserSpec::new(format!("user{i}"), i % n_rooms));
    }
    let mut engine = builder.into_engine(SEED);
    engine.schedule(SimTime::from_secs(150), SysEvent::locate("user0", "user1"));
    engine
}

/// An observer that folds every event's Debug rendering (plus its
/// timestamp) into an FNV-1a hash — a byte-exact trace fingerprint
/// without storing the trace.
struct TraceHash {
    state: Rc<RefCell<(u64, u64)>>, // (hash, events)
}

impl TraceHash {
    fn new() -> (Self, Rc<RefCell<(u64, u64)>>) {
        let state = Rc::new(RefCell::new((0xcbf2_9ce4_8422_2325, 0)));
        (
            TraceHash {
                state: Rc::clone(&state),
            },
            state,
        )
    }
}

impl Observer<SysEvent> for TraceHash {
    fn on_event_dispatched(&mut self, at: SimTime, event: &SysEvent) {
        let line = format!("{at:?} {event:?}");
        let mut s = self.state.borrow_mut();
        for b in line.as_bytes() {
            s.0 ^= u64::from(*b);
            s.0 = s.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        s.1 += 1;
    }
}

/// Everything we can cheaply fingerprint about a finished run.
fn final_state(sys: &BipsSystem, end: SimTime) -> String {
    let cells: Vec<Option<usize>> = (0..USERS)
        .map(|i| sys.db_cell_of(&format!("user{i}")))
        .collect();
    let mut metrics = bips::sim::MetricSet::new();
    sys.export_metrics(&mut metrics, end);
    format!(
        "stats={:?}\ncells={cells:?}\naccuracy={}\ndetection={:?}\nabsence={:?}\nenrollment={:?}\nmetrics:\n{metrics}",
        sys.stats(),
        sys.tracking_accuracy(),
        sys.detection_latency(),
        sys.absence_latency(),
        sys.enrollment_latency(),
    )
}

#[test]
fn observer_does_not_perturb_the_full_system() {
    let end = SimTime::from_secs(DURATION_S);

    let mut plain = build_engine();
    plain.run_until(end);
    let baseline = final_state(plain.world(), end);

    let mut observed = build_engine();
    let (tracer, _state) = TraceHash::new();
    observed.attach_observer(Box::new(tracer));
    observed.run_until(end);
    assert_eq!(
        final_state(observed.world(), end),
        baseline,
        "attaching an observer changed the simulation"
    );

    // The standard telemetry probe must be just as invisible.
    let mut probed = build_engine();
    let probe = EngineProbe::new(|_: &SysEvent| "ev");
    let handle = probe.handle();
    probed.attach_observer(Box::new(probe));
    probed.run_until(end);
    assert_eq!(
        final_state(probed.world(), end),
        baseline,
        "the engine probe changed the simulation"
    );
    assert!(handle.borrow().events() > 0, "probe saw no events");
}

#[test]
fn observed_event_traces_are_byte_identical_across_runs() {
    let end = SimTime::from_secs(DURATION_S);

    let run = || {
        let mut engine = build_engine();
        let (tracer, state) = TraceHash::new();
        engine.attach_observer(Box::new(tracer));
        engine.run_until(end);
        let snapshot = *state.borrow();
        snapshot
    };

    let (hash_a, events_a) = run();
    let (hash_b, events_b) = run();
    assert!(events_a > 1000, "suspiciously short run: {events_a} events");
    assert_eq!(events_a, events_b, "event counts diverged");
    assert_eq!(hash_a, hash_b, "event traces diverged");
}

#[test]
fn detaching_mid_run_keeps_the_run_on_course() {
    let end = SimTime::from_secs(DURATION_S);

    let mut plain = build_engine();
    plain.run_until(end);
    let baseline = final_state(plain.world(), end);

    // Observe the first half only, then detach.
    let mut engine = build_engine();
    let (tracer, state) = TraceHash::new();
    engine.attach_observer(Box::new(tracer));
    engine.run_until(SimTime::from_secs(DURATION_S / 2));
    assert!(engine.detach_observer().is_some());
    engine.run_until(end);
    assert_eq!(
        final_state(engine.world(), end),
        baseline,
        "attach/detach cycle changed the simulation"
    );
    assert!(state.borrow().1 > 0, "observer saw nothing before detach");
}
