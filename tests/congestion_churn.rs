//! Congestion-driven churn end-to-end: the mobility model's per-cell
//! crossing counters fold into path edge weights once per sweep round
//! (`SystemConfig::congestion_weights`), so the scenario path exercises
//! real — not synthetic — topology churn against the dynamic engine.
//!
//! Determinism guards:
//! * the whole run (crossing counters, engine epoch, every locate
//!   answer) is bit-identical across repeated runs with one seed;
//! * replaying the congested topology's mutation stream through the
//!   sharded mixed workload yields one FNV checksum for every `--jobs`
//!   value and for every engine variant, including the rebuild
//!   reference.

use bips::scenario::Scenario;
use bips_bench::loadgen::{self, Workload};
use bips_core::graph::PathEngineKind;
use bips_core::protocol::LocateOutcome;

const SCENARIO: &str = "\
building department
duty 3.84 15.4
seed 11
duration 600
congestion
user alice lobby random
user bob office-n2 random
user carl office-s1 random
locate 240 alice bob
locate 360 bob carl
locate 480 alice carl
";

#[test]
fn congestion_run_is_deterministic_and_actually_churns() {
    let run = || {
        let (engine, server) = Scenario::parse(SCENARIO).expect("parse").run();
        let sys = engine.world();
        let entries = sys.mobility().stats().per_cell_entries.clone();
        let epoch = server.path_engine().epoch();
        let outcomes: Vec<Option<LocateOutcome>> =
            sys.queries().into_iter().map(|q| q.outcome).collect();
        (entries, epoch, outcomes)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "congestion run diverged across replays");

    let (entries, epoch, outcomes) = a;
    // Walkers crossed cells, and those crossings reached the engine as
    // applied weight mutations — real churn, not a static topology.
    assert!(entries.iter().sum::<u64>() > 0, "no crossings recorded");
    assert!(epoch > 0, "crossing counters never reached the engine");
    assert!(!outcomes.is_empty());
}

#[test]
fn congested_workload_is_bit_identical_across_jobs_and_engines() {
    // The sharded mixed workload with churn folded in at tick
    // boundaries: one checksum, regardless of worker count or engine.
    let w = Workload::tiny();
    let trace = loadgen::generate_trace(&w);
    let mut sums = Vec::new();
    for kind in [
        PathEngineKind::Rebuild,
        PathEngineKind::DynamicDense,
        PathEngineKind::DynamicSparse,
    ] {
        for jobs in [1usize, 4, 8] {
            let (r, _) = loadgen::run_sharded_churn(&w, &trace, jobs, kind, 77, 2);
            sums.push(((kind, jobs), (r.checksum, r.ack_checksum, r.found)));
        }
    }
    let first = sums[0].1;
    for (label, sum) in &sums {
        assert_eq!(*sum, first, "{label:?} diverged from {:?}", sums[0].0);
    }
}
