//! Determinism guard for `desim::par`: every experiment must produce
//! bit-identical results — outcomes *and* the merged telemetry snapshot —
//! regardless of the worker count. The parallel runner derives each
//! replication's seed from the trial index and folds per-trial MetricSets
//! in index order, so `--jobs N` may only change wall-clock time.

use bips_bench::figure2::{run_with_metrics as run_fig2, Figure2Config};
use bips_bench::table1::{run_with_metrics as run_t1, Table1Config};
use desim::SimDuration;

fn table1_cfg(jobs: usize) -> Table1Config {
    Table1Config {
        trials: 40,
        horizon: SimDuration::from_secs(60),
        seed: 2003,
        jobs,
    }
}

fn figure2_cfg(jobs: usize) -> Figure2Config {
    Figure2Config {
        slave_counts: vec![2, 10],
        replications: 25,
        jobs,
        ..Figure2Config::default()
    }
}

#[test]
fn table1_is_bit_identical_across_jobs() {
    let (serial, serial_metrics) = run_t1(&table1_cfg(1));
    for jobs in [2, 8] {
        let (r, metrics) = run_t1(&table1_cfg(jobs));
        assert_eq!(
            metrics, serial_metrics,
            "table1 telemetry diverged at jobs={jobs}"
        );
        assert_eq!(r.undiscovered, serial.undiscovered);
        for (a, b) in r.rows.iter().zip(&serial.rows) {
            assert_eq!(a.class, b.class);
            assert_eq!(a.cases, b.cases, "jobs={jobs} class={}", a.class);
            // Bitwise, not approximate: ordered merging must reproduce
            // the serial floating-point operation sequence exactly.
            assert_eq!(
                a.mean_secs.to_bits(),
                b.mean_secs.to_bits(),
                "jobs={jobs} class={}",
                a.class
            );
            assert_eq!(a.ci95.to_bits(), b.ci95.to_bits());
            assert_eq!(a.median_secs.to_bits(), b.median_secs.to_bits());
        }
    }
}

#[test]
fn figure2_is_bit_identical_across_jobs() {
    let (serial, serial_metrics) = run_fig2(&figure2_cfg(1));
    for jobs in [2, 8] {
        let (r, metrics) = run_fig2(&figure2_cfg(jobs));
        assert_eq!(
            metrics, serial_metrics,
            "figure2 telemetry diverged at jobs={jobs}"
        );
        assert_eq!(r.curves.len(), serial.curves.len());
        for (a, b) in r.curves.iter().zip(&serial.curves) {
            assert_eq!(a.slaves, b.slaves);
            assert_eq!(a.points.len(), b.points.len(), "jobs={jobs}");
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.0.to_bits(), pb.0.to_bits(), "jobs={jobs}");
                assert_eq!(pa.1.to_bits(), pb.1.to_bits(), "jobs={jobs}");
            }
        }
    }
}

/// `BIPS_JOBS` only fills in the ambient default (`jobs = 0`); an explicit
/// worker count wins, and either path stays bit-identical to serial.
#[test]
fn explicit_jobs_overrides_ambient_default() {
    let (serial, serial_metrics) = run_t1(&table1_cfg(1));
    let (r, metrics) = run_t1(&table1_cfg(0));
    assert_eq!(metrics, serial_metrics, "ambient jobs diverged from serial");
    assert_eq!(r.rows.len(), serial.rows.len());
    for (a, b) in r.rows.iter().zip(&serial.rows) {
        assert_eq!(a.mean_secs.to_bits(), b.mean_secs.to_bits());
    }
}
