//! Paper-shape assertions: the headline quantitative structure of every
//! table and figure must hold at small replication counts. These are the
//! regression guards for the reproduction; the full-size numbers live in
//! EXPERIMENTS.md and are produced by the bips-bench binaries.

use bips_bench::duty::{run_dwell, run_sweep, DutySweepConfig};
use bips_bench::figure2::{run as run_fig2, Figure2Config};
use bips_bench::table1::{run as run_t1, Table1Config};
use desim::SimDuration;

#[test]
fn table1_shape_same_train_wins_by_one_train_repetition() {
    let r = run_t1(&Table1Config {
        trials: 120,
        horizon: SimDuration::from_secs(60),
        seed: 2003,
        ..Table1Config::default()
    });
    assert_eq!(r.undiscovered, 0, "every trial must eventually discover");
    let same = &r.rows[0];
    let diff = &r.rows[1];
    let mixed = &r.rows[2];

    // Paper: Same 1.6028 s / Different 4.1320 s / Mixed 2.865 s.
    // Shape: the different-train penalty is roughly the 2.56 s train
    // repetition; the means stay within a factor ~1.5 of the paper's.
    assert!(
        (1.0..=3.0).contains(&same.mean_secs),
        "same-train mean {:.2}s vs paper 1.60s",
        same.mean_secs
    );
    assert!(
        (3.0..=6.5).contains(&diff.mean_secs),
        "diff-train mean {:.2}s vs paper 4.13s",
        diff.mean_secs
    );
    let penalty = diff.mean_secs - same.mean_secs;
    assert!(
        (1.8..=3.8).contains(&penalty),
        "train-switch penalty {penalty:.2}s vs paper 2.53s (≈ one 2.56 s repetition)"
    );
    assert!(mixed.mean_secs > same.mean_secs && mixed.mean_secs < diff.mean_secs);
    // Roughly 50/50 class split (paper: 236/264).
    let frac = same.cases as f64 / (same.cases + diff.cases) as f64;
    assert!((0.38..=0.62).contains(&frac), "class split {frac:.2}");
}

#[test]
fn figure2_shape_staircase_and_collision_ordering() {
    let r = run_fig2(&Figure2Config {
        slave_counts: vec![2, 10, 20],
        replications: 60,
        ..Figure2Config::default()
    });
    let curve = |n: usize| r.curves.iter().find(|c| c.slaves == n).unwrap();

    // Paper: ≤10 slaves → ~90 % in the first 1 s phase, 100 % by the
    // second cycle; 15–20 slaves all discovered within two cycles.
    assert!(curve(2).probability_at(1.0) >= 0.9);
    assert!(curve(10).probability_at(1.0) >= 0.8);
    assert!(
        curve(10).probability_at(6.0) >= 0.95,
        "cycle 2 must finish ≤10 slaves"
    );
    assert!(
        curve(20).probability_at(6.0) >= 0.9,
        "20 slaves ≈ done by cycle 2"
    );

    // More slaves → more collisions → lower first-phase fraction.
    assert!(curve(20).probability_at(1.0) <= curve(10).probability_at(1.0) + 0.02);
    assert!(curve(10).probability_at(1.0) <= curve(2).probability_at(1.0) + 0.05);

    // Staircase: flat during the 4 s service phase.
    for n in [2, 10, 20] {
        let c = curve(n);
        assert!(
            (c.probability_at(4.5) - c.probability_at(1.5)).abs() < 0.03,
            "N={n}: curve rose during the service phase"
        );
    }
}

#[test]
fn section5_shape_384s_discovers_about_95_percent() {
    let r = run_sweep(&DutySweepConfig {
        inquiry_slots_s: vec![2.56, 3.84],
        slaves: 20,
        replications: 80,
        seed: 384,
        jobs: 0,
    });
    let at_256 = r.at(2.56);
    let at_384 = r.at(3.84);
    // Paper's reasoning: 2.56 s covers the same-train half (≈50 %, plus
    // whatever the second train's prefix catches); 3.84 s reaches ≈95 %.
    assert!(
        (0.40..=0.70).contains(&at_256),
        "2.56 s slot discovered {at_256:.2}, paper argues ≈50%"
    );
    assert!(
        at_384 >= 0.90,
        "3.84 s slot discovered {at_384:.2}, paper says ≈95%"
    );
}

#[test]
fn section5_dwell_and_load_numbers() {
    let d = run_dwell(7);
    assert!((d.paper_estimate_s - 15.3846).abs() < 1e-3);
    assert!(
        (0.24..=0.26).contains(&d.tracking_load),
        "tracking load {:.3} vs paper ≈24%",
        d.tracking_load
    );
}
