//! End-to-end integration: the complete BIPS stack driven through the
//! umbrella crate, exercising discovery → paging → login → tracking →
//! queries across crate boundaries.

use bips::core::protocol::LocateOutcome;
use bips::core::registry::AccessRights;
use bips::core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips::mobility::walker::WalkMode;
use bips::mobility::{Building, Point, RoomId};
use bips::sim::{SimDuration, SimTime};

fn corridor(rooms: usize, spacing: f64) -> Building {
    let mut b = Building::new();
    let ids: Vec<RoomId> = (0..rooms)
        .map(|i| b.add_room(format!("r{i}"), Point::new(spacing * i as f64, 0.0)))
        .collect();
    for w in ids.windows(2) {
        b.connect(w[0], w[1]);
    }
    b
}

fn fast_config(building: Building) -> SystemConfig {
    SystemConfig {
        building,
        duty: bips::baseband::params::DutyCycle::periodic(
            SimDuration::from_secs(4),
            SimDuration::from_secs(8),
        ),
        sweep_interval: SimDuration::from_secs(4),
        absence_timeout: SimDuration::from_secs(16),
        ..SystemConfig::default()
    }
}

#[test]
fn three_room_corridor_tracks_a_commuter() {
    let mut e = BipsSystem::builder(fast_config(corridor(3, 25.0)))
        .user(UserSpec::new("commuter", 0).mode(WalkMode::Loop(vec![
            RoomId::new(1),
            RoomId::new(2),
            RoomId::new(1),
            RoomId::new(0),
        ])))
        .into_engine(11);
    let mut seen = std::collections::HashSet::new();
    let mut acc = 0.0;
    for step in 1..=60 {
        e.run_until(SimTime::from_secs(step * 10));
        if let Some(c) = e.world().db_cell_of("commuter") {
            seen.insert(c);
        }
        acc += e.world().tracking_accuracy();
    }
    assert!(e.world().is_logged_in("commuter"));
    assert_eq!(seen.len(), 3, "commuter seen in cells {seen:?}");
    // The DB was right for a decent share of the sampled instants (a
    // constantly walking user is the worst case for a 4 s sweep).
    assert!(acc / 60.0 > 0.3, "mean sampled accuracy {}", acc / 60.0);
}

#[test]
fn queries_respect_access_rights_end_to_end() {
    let mut e = BipsSystem::builder(fast_config(corridor(2, 30.0)))
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(
            UserSpec::new("director", 1)
                .mode(WalkMode::Stationary)
                .rights(AccessRights::invisible()),
        )
        .into_engine(12);
    e.run_until(SimTime::from_secs(120));
    assert!(e.world().is_logged_in("alice"));
    assert!(e.world().is_logged_in("director"));
    // Alice cannot locate the invisible director; the director can locate
    // alice.
    e.schedule(
        SimTime::from_secs(120),
        SysEvent::locate("alice", "director"),
    );
    e.schedule(
        SimTime::from_secs(121),
        SysEvent::locate("director", "alice"),
    );
    e.run_until(SimTime::from_secs(300));
    let queries = e.world().queries();
    assert_eq!(queries.len(), 2);
    let alice_q = queries.iter().find(|q| q.user == "alice").unwrap();
    assert_eq!(alice_q.outcome, Some(LocateOutcome::Denied));
    let dir_q = queries.iter().find(|q| q.user == "director").unwrap();
    assert!(
        matches!(dir_q.outcome, Some(LocateOutcome::Found { cell: 0, .. })),
        "{dir_q:?}"
    );
}

#[test]
fn unknown_target_and_not_logged_in_outcomes() {
    let mut e = BipsSystem::builder(fast_config(corridor(2, 30.0)))
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(
            UserSpec::new("sleeper", 1)
                .mode(WalkMode::Stationary)
                .auto_login(false),
        )
        .into_engine(13);
    e.run_until(SimTime::from_secs(120));
    assert!(!e.world().is_logged_in("sleeper"));
    e.schedule(SimTime::from_secs(130), SysEvent::locate("alice", "ghost"));
    e.schedule(
        SimTime::from_secs(131),
        SysEvent::locate("alice", "sleeper"),
    );
    e.run_until(SimTime::from_secs(300));
    let queries = e.world().queries();
    let ghost = queries.iter().find(|q| q.target == "ghost").unwrap();
    assert_eq!(ghost.outcome, Some(LocateOutcome::NoSuchUser));
    let sleeper = queries.iter().find(|q| q.target == "sleeper").unwrap();
    assert_eq!(sleeper.outcome, Some(LocateOutcome::NotLoggedIn));
    // A scripted login brings the sleeper online after all.
    e.schedule(SimTime::from_secs(300), SysEvent::login("sleeper"));
    e.run_until(SimTime::from_secs(420));
    assert!(e.world().is_logged_in("sleeper"));
}

#[test]
fn user_walking_out_of_coverage_goes_absent() {
    // Two rooms 60 m apart: between them, nobody covers the walker.
    let mut b = Building::new();
    let a = b.add_room("a", Point::new(0.0, 0.0));
    let z = b.add_room("z", Point::new(60.0, 0.0));
    b.connect(a, z);
    let mut e = BipsSystem::builder(fast_config(b))
        .user(UserSpec::new("walker", 0).mode(WalkMode::Route(vec![RoomId::new(1)])))
        .into_engine(14);
    // After the walk completes the user must be present in z only.
    e.run_until(SimTime::from_secs(400));
    assert_eq!(e.world().db_cell_of("walker"), Some(1));
    let db = e.world().server().db();
    let addr = bips::baseband::BdAddr::new(0x0010_0000_0000);
    assert_eq!(db.cells_of(addr), vec![1], "stale presence in cell 0");
}

#[test]
fn same_seed_same_world_different_seed_diverges() {
    let run = |seed| {
        let mut e = BipsSystem::builder(fast_config(corridor(3, 25.0)))
            .user(UserSpec::new("u0", 0))
            .user(UserSpec::new("u1", 1))
            .user(UserSpec::new("u2", 2))
            .into_engine(seed);
        e.run_until(SimTime::from_secs(200));
        (
            e.world().stats(),
            e.world().db_cell_of("u0"),
            e.world().db_cell_of("u1"),
            e.world().db_cell_of("u2"),
        )
    };
    assert_eq!(run(77), run(77), "determinism violated");
    let a = run(77);
    let b = run(78);
    assert!(a != b, "different seeds should explore different worlds");
}

#[test]
fn lossy_lan_still_converges() {
    // 20 % frame loss on the LAN: the stop-and-wait transport must mask
    // it completely — logins and presence still converge.
    let mut cfg = fast_config(corridor(2, 30.0));
    cfg.lan = bips::lan::LanConfig {
        loss: 0.2,
        ..bips::lan::LanConfig::default()
    };
    let mut e = BipsSystem::builder(cfg)
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("bob", 1).mode(WalkMode::Stationary))
        .into_engine(21);
    e.run_until(SimTime::from_secs(180));
    assert!(e.world().is_logged_in("alice"));
    assert!(e.world().is_logged_in("bob"));
    assert_eq!(e.world().db_cell_of("alice"), Some(0));
    assert_eq!(e.world().db_cell_of("bob"), Some(1));
    // And a query survives the lossy wire too.
    e.schedule(SimTime::from_secs(180), SysEvent::locate("alice", "bob"));
    e.run_until(SimTime::from_secs(360));
    let q = &e.world().queries()[0];
    assert!(
        matches!(q.outcome, Some(LocateOutcome::Found { .. })),
        "{q:?}"
    );
}

#[test]
fn multi_floor_building_tracks_between_floors() {
    // Two-floor office; a user takes the stairs. Coverage never spans
    // floors, so the DB must show the floor transition.
    let building = Building::multi_floor_office(2);
    let stair0 = building.room_by_name("stair-f0").unwrap();
    let r00 = building.room_by_name("room-f0-0").unwrap();
    let r01 = building.room_by_name("room-f0-1").unwrap();
    let stair1 = building.room_by_name("stair-f1").unwrap();
    let room1 = building.room_by_name("room-f1-0").unwrap();
    // Wander floor 0 long enough to be enrolled there, then climb.
    let route = WalkMode::Route(vec![r00, r01, r00, stair0, stair1, room1]);
    let mut e = BipsSystem::builder(fast_config(building))
        .user(UserSpec::new("climber", stair0.index()).mode(route))
        .into_engine(22);
    let mut floors_seen = std::collections::HashSet::new();
    for step in 1..=80 {
        e.run_until(SimTime::from_secs(step * 10));
        if let Some(c) = e.world().db_cell_of("climber") {
            floors_seen.insert(if c < 6 { 0 } else { 1 });
        }
    }
    assert!(
        floors_seen.contains(&0) && floors_seen.contains(&1),
        "only saw floors {floors_seen:?}"
    );
    assert_eq!(e.world().db_cell_of("climber"), Some(room1.index()));
}

#[test]
fn detection_latency_is_bounded_by_cycle_plus_sweep() {
    // With a 4 s inquiry / 8 s cycle and 4 s sweeps, detecting a
    // stationary user takes at most a few cycles.
    let mut e = BipsSystem::builder(fast_config(corridor(2, 30.0)))
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .into_engine(23);
    e.run_until(SimTime::from_secs(300));
    let lat = e.world().detection_latency();
    assert!(!lat.is_empty(), "no detection samples");
    assert!(
        lat.mean() < 30.0,
        "detection latency {:.1}s too slow for a 8 s cycle",
        lat.mean()
    );
    assert_eq!(e.world().stats().missed_detections, 0);
}

#[test]
fn eight_users_in_one_cell_all_enroll_through_the_page_queue() {
    // More users than the 7-slave piconet cap, all camped in one room:
    // the page queue must serialize logins and everyone still enrolls
    // (links are released after the login exchange).
    let mut e = BipsSystem::builder(fast_config(corridor(2, 30.0)))
        .user(UserSpec::new("u0", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u1", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u2", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u3", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u4", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u5", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u6", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("u7", 0).mode(WalkMode::Stationary))
        .into_engine(24);
    e.run_until(SimTime::from_secs(600));
    for i in 0..8 {
        assert!(
            e.world().is_logged_in(&format!("u{i}")),
            "u{i} never logged in"
        );
        assert_eq!(e.world().db_cell_of(&format!("u{i}")), Some(0));
    }
}

#[test]
fn slot_accurate_paging_works_through_the_full_system() {
    let mut cfg = fast_config(corridor(2, 30.0));
    cfg.medium.page_model = bips::baseband::params::PageModel::SlotAccurate;
    let mut e = BipsSystem::builder(cfg)
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("bob", 1).mode(WalkMode::Stationary))
        .into_engine(25);
    e.run_until(SimTime::from_secs(180));
    assert!(e.world().is_logged_in("alice"));
    assert!(e.world().is_logged_in("bob"));
    e.schedule(SimTime::from_secs(180), SysEvent::locate("alice", "bob"));
    e.run_until(SimTime::from_secs(360));
    let q = &e.world().queries()[0];
    assert!(
        matches!(q.outcome, Some(LocateOutcome::Found { .. })),
        "{q:?}"
    );
}

#[test]
fn server_restart_recovers_via_epoch_resync() {
    let mut e = BipsSystem::builder(fast_config(corridor(2, 30.0)))
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(UserSpec::new("bob", 1).mode(WalkMode::Stationary))
        .into_engine(26);
    e.run_until(SimTime::from_secs(120));
    assert!(e.world().is_logged_in("alice") && e.world().is_logged_in("bob"));
    assert_eq!(e.world().db_cell_of("alice"), Some(0));
    let updates_before = e.world().stats().presence_updates_sent;
    let logins_before = e.world().stats().logins_completed;

    // Crash the central server: sessions and presence evaporate.
    e.schedule(SimTime::from_secs(120), SysEvent::restart_server());
    e.run_until(SimTime::from_secs(121));
    assert_eq!(e.world().server().epoch(), 1);
    assert_eq!(
        e.world().server().locate_by_name("alice"),
        None,
        "server RAM state must be lost"
    );

    // Within a few cycles the epoch bump propagates: workstations
    // re-announce, handhelds re-login, the DB converges again.
    e.run_until(SimTime::from_secs(400));
    assert!(e.world().is_logged_in("alice"), "alice never re-logged-in");
    assert!(e.world().is_logged_in("bob"), "bob never re-logged-in");
    assert_eq!(e.world().db_cell_of("alice"), Some(0));
    assert_eq!(e.world().db_cell_of("bob"), Some(1));
    let st = e.world().stats();
    assert!(
        st.presence_updates_sent > updates_before,
        "no re-announcement"
    );
    assert!(st.logins_completed > logins_before, "no re-authentication");
    assert_eq!(e.world().tracking_accuracy(), 1.0);
}

#[test]
fn history_query_traces_movement_end_to_end() {
    let mut e = BipsSystem::builder(fast_config(corridor(3, 25.0)))
        .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
        .user(
            UserSpec::new("walker", 0).mode(WalkMode::Route(vec![RoomId::new(1), RoomId::new(2)])),
        )
        .into_engine(27);
    // Let the walker complete its route and the DB record the journey.
    e.run_until(SimTime::from_secs(300));
    assert!(e.world().is_logged_in("alice") && e.world().is_logged_in("walker"));
    // Alice asks where the walker was during the whole run.
    e.schedule(
        SimTime::from_secs(300),
        SysEvent::history("alice", "walker", 0, 300),
    );
    e.run_until(SimTime::from_secs(500));
    let q = e
        .world()
        .queries()
        .into_iter()
        .find(|q| matches!(q.kind, bips::core::system::QueryKind::History { .. }))
        .expect("history query recorded");
    assert!(q.answered_at.is_some(), "history never answered: {q:?}");
    let Some(bips::core::protocol::HistoryOutcome::Trace(steps)) = &q.history_outcome else {
        panic!("unexpected outcome {:?}", q.history_outcome);
    };
    // The trace must include presence transitions in at least two
    // different cells along the walk.
    let cells: std::collections::HashSet<u32> = steps.iter().map(|s| s.cell).collect();
    assert!(
        cells.len() >= 2,
        "trace covered only cells {cells:?}: {steps:?}"
    );
    // Chronological, with sensible transitions.
    for w in steps.windows(2) {
        assert!(w[1].at_us >= w[0].at_us, "trace out of order");
    }
}
