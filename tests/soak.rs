//! Long-run stability: a busy department simulated for a virtual hour.
//!
//! Guards against slow state leaks (pending maps, event-queue growth,
//! stuck handhelds) that short tests cannot see.

use bips::core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips::mobility::walker::WalkMode;
use bips::sim::{SimDuration, SimTime};

#[test]
fn one_virtual_hour_with_ten_users_stays_healthy() {
    let mut builder = BipsSystem::builder(SystemConfig::default());
    for i in 0..10 {
        builder = builder.user(
            UserSpec::new(format!("u{i}"), i % 9).mode(WalkMode::RandomWalk {
                pause: (SimDuration::from_secs(5), SimDuration::from_secs(45)),
            }),
        );
    }
    let mut e = builder.into_engine(3600);

    // Queries fire continuously, and the server is restarted twice
    // mid-run to exercise recovery under load.
    let mut t = 180u64;
    while t < 3600 {
        let a = (t / 180) % 10;
        let b = (a + 3) % 10;
        e.schedule(
            SimTime::from_secs(t),
            SysEvent::locate(format!("u{a}"), format!("u{b}")),
        );
        t += 180;
    }
    e.schedule(SimTime::from_secs(1200), SysEvent::restart_server());
    e.schedule(SimTime::from_secs(2400), SysEvent::restart_server());

    let mut accuracy_sum = 0.0;
    let mut samples = 0u32;
    for step in 1..=36 {
        e.run_until(SimTime::from_secs(step * 100));
        accuracy_sum += e.world().tracking_accuracy();
        samples += 1;
        // The calendar must not grow without bound.
        let pending = e.context_mut().pending();
        assert!(
            pending < 5_000,
            "event-queue leak at t={}s: {pending} pending",
            step * 100
        );
    }

    let sys = e.world();
    let st = sys.stats();
    // Everyone is (re-)logged-in at the end despite two server crashes.
    for i in 0..10 {
        assert!(sys.is_logged_in(&format!("u{i}")), "u{i} lost forever");
    }
    // At least the original logins plus re-logins after both restarts.
    assert!(st.logins_completed >= 20, "logins: {}", st.logins_completed);
    // Tracking keeps working on average.
    let mean_acc = accuracy_sum / samples as f64;
    assert!(mean_acc > 0.5, "mean accuracy {mean_acc}");
    // Queries flow throughout.
    assert!(st.queries_issued >= 18);
    assert!(
        st.queries_answered * 10 >= st.queries_issued * 7,
        "answered only {} of {}",
        st.queries_answered,
        st.queries_issued
    );
    // Update-on-change still beats naive reporting over the long run.
    assert!(st.naive_announcements > st.presence_updates_sent);
}
