//! Property-based invariants across the workspace (proptest).

use bips::baseband::BdAddr;
use bips::core::graph::{random_connected_graph, WsGraph};
use bips::core::locationdb::LocationDb;
use bips::core::protocol::{LocateOutcome, Request, Response};
use bips::mobility::geometry::{inside_circle, segment_circle_crossings, Point};
use bips::sim::stats::{EmpiricalCdf, OnlineStats};
use bips::sim::{SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Dijkstra agrees with the Bellman–Ford reference on arbitrary
    /// connected weighted graphs.
    #[test]
    fn dijkstra_equals_bellman_ford(n in 2usize..40, extra in 0usize..60, seed in any::<u64>()) {
        let g = random_connected_graph(n, extra, seed);
        let (d1, _) = g.dijkstra(0);
        let d2 = g.bellman_ford(0);
        for v in 0..n {
            prop_assert!((d1[v] - d2[v]).abs() < 1e-9, "node {}: {} vs {}", v, d1[v], d2[v]);
        }
    }

    /// Every APSP path is a real walk with the claimed total length, and
    /// distances obey the triangle inequality.
    #[test]
    fn apsp_paths_are_valid_walks(n in 2usize..25, extra in 0usize..40, seed in any::<u64>()) {
        let g = random_connected_graph(n, extra, seed);
        let apsp = g.precompute_all_pairs();
        for a in 0..n {
            for b in 0..n {
                let (path, total) = apsp.path(a, b).expect("connected");
                prop_assert_eq!(path[0], a);
                prop_assert_eq!(*path.last().unwrap(), b);
                let mut sum = 0.0;
                for w in path.windows(2) {
                    let weight = g.edges(w[0]).iter().find(|&&(v, _)| v == w[1]).map(|&(_, x)| x);
                    prop_assert!(weight.is_some(), "path uses non-edge {:?}", w);
                    sum += weight.unwrap();
                }
                prop_assert!((sum - total).abs() < 1e-6);
                // Triangle inequality through a random midpoint.
                let m = (a + b) % n;
                let via = apsp.distance(a, m).unwrap() + apsp.distance(m, b).unwrap();
                prop_assert!(total <= via + 1e-9);
            }
        }
    }

    /// The BIPS protocol codec round-trips arbitrary field contents.
    #[test]
    fn protocol_round_trips(
        raw_addr in 0u64..(1 << 48),
        cell in any::<u32>(),
        present in any::<bool>(),
        user in "[a-zA-Z0-9 _\\-]{0,40}",
        password in "\\PC{0,40}",
    ) {
        let addr = BdAddr::new(raw_addr);
        for req in [
            Request::Presence { cell, addr, present },
            Request::Login { addr, user: user.clone(), password: password.clone() },
            Request::Logout { addr },
            Request::Locate { from: addr, target: user.clone(), from_cell: cell },
        ] {
            let buf = req.encode();
            prop_assert_eq!(Request::decode(&buf), Ok(req));
        }
        let resp = Response::LocateResult(LocateOutcome::Found {
            cell,
            path: vec![cell, cell.wrapping_add(1)],
            distance: (cell as f64) * 0.5,
        });
        let buf = resp.encode();
        prop_assert_eq!(Response::decode(&buf), Ok(resp));
    }

    /// Decoding never panics on arbitrary bytes (errors only).
    #[test]
    fn protocol_decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Empirical CDFs are monotone, bounded, and hit 1 at the max sample.
    #[test]
    fn cdf_is_monotone(samples in proptest::collection::vec(0.0f64..1e6, 1..200)) {
        let mut cdf: EmpiricalCdf = samples.iter().copied().collect();
        let max = samples.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(cdf.probability_at(max), 1.0);
        let mut last = 0.0;
        for i in 0..20 {
            let x = max * (i as f64) / 19.0;
            let p = cdf.probability_at(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
    }

    /// Welford statistics match the naive two-pass computation.
    #[test]
    fn online_stats_match_naive(xs in proptest::collection::vec(-1e6f64..1e6, 2..100)) {
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
    }

    /// Time arithmetic: (t + a) + b == (t + b) + a and subtraction undoes
    /// addition.
    #[test]
    fn sim_time_arithmetic(t in 0u64..1_000_000_000, a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let t0 = SimTime::from_micros(t);
        let da = SimDuration::from_micros(a);
        let db = SimDuration::from_micros(b);
        prop_assert_eq!((t0 + da) + db, (t0 + db) + da);
        prop_assert_eq!((t0 + da) - da, t0);
        prop_assert_eq!((t0 + da) - t0, da);
    }

    /// BD_ADDR text form round-trips for all 48-bit values.
    #[test]
    fn bd_addr_round_trips(raw in 0u64..(1 << 48)) {
        let a = BdAddr::new(raw);
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BdAddr>(), Ok(a));
        prop_assert_eq!(u64::from(a), raw);
    }

    /// The location DB's current cell is always one of the claimed cells,
    /// under arbitrary update sequences.
    #[test]
    fn locationdb_latest_is_among_cells(
        ops in proptest::collection::vec((0u64..4, 0usize..5, any::<bool>()), 1..120)
    ) {
        let mut db = LocationDb::new();
        for (i, (dev, cell, present)) in ops.iter().enumerate() {
            db.apply(BdAddr::new(*dev), *cell, *present, SimTime::from_secs(i as u64));
        }
        for dev in 0..4u64 {
            let addr = BdAddr::new(dev);
            let cells = db.cells_of(addr);
            match db.current_cell(addr) {
                Some(c) => prop_assert!(cells.contains(&c), "latest {} not in {:?}", c, cells),
                None => prop_assert!(cells.is_empty()),
            }
        }
        let st = db.stats();
        prop_assert_eq!(st.applied as usize, db.history().len());
    }

    /// Segment/circle intersection returns a sane sub-interval consistent
    /// with point-inside tests at its midpoint.
    #[test]
    fn segment_circle_interval_is_consistent(
        ax in -100.0f64..100.0, ay in -100.0f64..100.0,
        bx in -100.0f64..100.0, by in -100.0f64..100.0,
        cx in -50.0f64..50.0, cy in -50.0f64..50.0,
        r in 0.5f64..30.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        if let Some((t_in, t_out)) = segment_circle_crossings(a, b, c, r) {
            prop_assert!((0.0..=1.0).contains(&t_in));
            prop_assert!((0.0..=1.0).contains(&t_out));
            prop_assert!(t_in < t_out);
            let mid = a.lerp(b, (t_in + t_out) / 2.0);
            prop_assert!(inside_circle(mid, c, r * (1.0 + 1e-9)));
        } else if a.distance(b) > 1e-9 {
            // No interval: the midpoint of the segment must not be
            // strictly inside unless the whole thing grazes the rim.
            let mid = a.lerp(b, 0.5);
            prop_assert!(!inside_circle(mid, c, r * (1.0 - 1e-9)) || a.distance(b) < 1e-6);
        }
    }

    /// Graph construction from arbitrary buildings produces matching
    /// node/edge counts.
    #[test]
    fn graph_mirrors_building(rooms in 2usize..12, seed in any::<u64>()) {
        let mut b = bips::mobility::Building::new();
        let mut rng = bips::sim::SimRng::seed_from(seed);
        let ids: Vec<_> = (0..rooms)
            .map(|i| b.add_room(format!("r{i}"), Point::new(rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0))))
            .collect();
        for w in ids.windows(2) {
            b.connect_with_distance(w[0], w[1], rng.uniform(1.0, 30.0));
        }
        let g = WsGraph::from_building(&b);
        prop_assert_eq!(g.num_nodes(), rooms);
        prop_assert_eq!(g.num_edges(), rooms - 1);
        prop_assert!(g.is_connected());
    }
}

proptest! {
    /// The scenario parser never panics, whatever the input.
    #[test]
    fn scenario_parser_is_total(text in "\\PC{0,400}") {
        let _ = bips::scenario::Scenario::parse(&text);
    }

    /// Structured-ish random scenario lines: still no panics, and errors
    /// always carry a line number within the input.
    #[test]
    fn scenario_errors_point_into_the_input(
        lines in proptest::collection::vec(
            proptest::sample::select(vec![
                "building department",
                "building corridor:3",
                "room a 0 0",
                "room b 5 5",
                "door a b",
                "duty 4 8",
                "duty 8 4",
                "seed 1",
                "duration 10",
                "user u a stationary",
                "user u room-0",
                "locate 5 u u",
                "restart 3",
                "garbage here",
            ]),
            0..12,
        )
    ) {
        let text = lines.join("\n");
        if let Err(e) = bips::scenario::Scenario::parse(&text) {
            prop_assert!(e.line >= 1 && e.line <= lines.len().max(1));
        }
    }
}
