//! # bips — an indoor Bluetooth-based positioning service
//!
//! A from-scratch Rust reproduction of *“Experimenting an Indoor
//! Bluetooth-based Positioning Service”* (Anastasi, Bandelloni, Conti,
//! Delmastro, Gregori, Mainetto — ICDCS Workshops 2003): a building-scale
//! service that tracks mobile users through Bluetooth cells and answers
//! *“what is the shortest path to user X?”*.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`sim`] — the deterministic discrete-event engine ([`desim`]);
//! * [`baseband`] — the slot-accurate Bluetooth 1.1 radio model
//!   ([`bt_baseband`]): inquiry trains, scan windows, response backoff,
//!   FHS collisions, paging, links;
//! * [`lan`] — the simulated Ethernet segment with a reliable transport
//!   and RPC framing ([`bips_lan`]);
//! * [`mobility`] — buildings, coverage cells and walkers
//!   ([`bips_mobility`]);
//! * [`core`] — BIPS itself ([`bips_core`]): registry, location database,
//!   workstation tracking, the central server, and the full-system
//!   simulation.
//!
//! ## Quick start
//!
//! ```
//! use bips::core::system::{BipsSystem, SystemConfig, UserSpec};
//! use bips::mobility::walker::WalkMode;
//! use bips::sim::SimTime;
//!
//! // A department building, two users, the paper's duty cycle.
//! let mut engine = BipsSystem::builder(SystemConfig::default())
//!     .user(UserSpec::new("alice", 0).mode(WalkMode::Stationary))
//!     .user(UserSpec::new("bob", 4).mode(WalkMode::Stationary))
//!     .into_engine(42);
//!
//! // Run five virtual minutes: discovery → login → presence tracking.
//! engine.run_until(SimTime::from_secs(300));
//! assert!(engine.world().is_logged_in("alice"));
//! assert_eq!(engine.world().db_cell_of("bob"), Some(4));
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-reproduction map.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;

pub use bips_core as core;
pub use bips_lan as lan;
pub use bips_mobility as mobility;
pub use bt_baseband as baseband;
pub use desim as sim;
