//! `bips-sim` — run a BIPS deployment scenario from the command line.
//!
//! ```console
//! $ bips-sim --building department --users 6 --duration 900 --seed 42
//! $ bips-sim --building office:3 --users 10 --inquiry 3.84 --cycle 15.4
//! $ bips-sim --building corridor:5 --users 2 --query alice:bob
//! $ bips-sim --file examples/department.bips
//! ```
//!
//! With `--file`, the scenario text format (see [`bips::scenario`]) defines
//! everything and the other flags are ignored. Every run is deterministic
//! in its seed.

use bips::core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips::mobility::{Building, Point, RoomId};
use bips::sim::{SimDuration, SimTime};

struct Args {
    building: String,
    users: usize,
    duration_s: u64,
    seed: u64,
    inquiry_s: f64,
    cycle_s: f64,
    batch: bool,
    query: Option<(String, String)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bips-sim [--building department|office:<floors>|corridor:<rooms>]\n\
         \x20               [--users N] [--duration SECONDS] [--seed SEED]\n\
         \x20               [--inquiry SECS] [--cycle SECS] [--batch]\n\
         \x20               [--query USER:TARGET]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        building: "department".into(),
        users: 6,
        duration_s: 900,
        seed: 42,
        inquiry_s: 3.84,
        cycle_s: 15.4,
        batch: false,
        query: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--building" => args.building = val("--building"),
            "--users" => args.users = val("--users").parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = val("--duration").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--inquiry" => args.inquiry_s = val("--inquiry").parse().unwrap_or_else(|_| usage()),
            "--cycle" => args.cycle_s = val("--cycle").parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = true,
            "--query" => {
                let v = val("--query");
                let Some((a, b)) = v.split_once(':') else { usage() };
                args.query = Some((a.to_string(), b.to_string()));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.users == 0 || args.inquiry_s <= 0.0 || args.cycle_s < args.inquiry_s {
        usage();
    }
    args
}

fn build_building(spec: &str) -> Building {
    if spec == "department" {
        return Building::academic_department();
    }
    if let Some(floors) = spec.strip_prefix("office:") {
        let floors: usize = floors.parse().unwrap_or_else(|_| usage());
        return Building::multi_floor_office(floors.max(1));
    }
    if let Some(rooms) = spec.strip_prefix("corridor:") {
        let rooms: usize = rooms.parse().unwrap_or_else(|_| usage());
        let rooms = rooms.max(2);
        let mut b = Building::new();
        let ids: Vec<RoomId> = (0..rooms)
            .map(|i| b.add_room(format!("room-{i}"), Point::new(18.0 * i as f64, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        return b;
    }
    usage()
}

fn run_scenario_file(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let scenario = bips::scenario::Scenario::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}:{e}");
        std::process::exit(1);
    });
    let building = scenario.config.building.clone();
    let names: Vec<String> = scenario.users.iter().map(|u| u.name.clone()).collect();
    let duration = scenario.duration;
    println!(
        "bips-sim: scenario {path} ({} rooms, {} users, {}s, seed {})",
        building.num_rooms(),
        names.len(),
        duration.as_secs_f64(),
        scenario.seed
    );
    let mut engine = scenario.into_engine();
    let end = SimTime::ZERO + duration;
    engine.run_until(end);
    report(engine.world(), &building, &names, end, true);
}

fn report(
    sys: &BipsSystem,
    building: &bips::mobility::Building,
    names: &[String],
    end: SimTime,
    show_queries: bool,
) {
    let st = sys.stats();
    println!("
== results ==");
    println!(
        "logins completed: {} ({} users)   accuracy now: {:.0}%",
        st.logins_completed,
        names.len(),
        sys.tracking_accuracy() * 100.0
    );
    println!(
        "presence: {} changes in {} LAN messages (+{} heartbeats; naive: {})",
        st.presence_updates_sent,
        st.presence_messages_sent,
        st.heartbeats_sent,
        st.naive_announcements
    );
    let lat = sys.detection_latency();
    if !lat.is_empty() {
        println!(
            "detection latency: {:.1}s mean over {} samples ({} visits missed)",
            lat.mean(),
            lat.len(),
            st.missed_detections
        );
    }
    println!("
where is everyone?");
    for name in names {
        let loc = sys
            .db_cell_of(name)
            .map(|c| building.name(RoomId::new(c)).to_string())
            .unwrap_or_else(|| "out of coverage".to_string());
        println!("  {name:<12} {loc}");
    }
    if show_queries && !sys.queries().is_empty() {
        println!("
queries:");
        for q in sys.queries() {
            let verdict = match (&q.outcome, &q.history_outcome) {
                (Some(o), _) => format!("{o:?}"),
                (_, Some(h)) => format!("{h:?}"),
                _ => "(pending)".into(),
            };
            println!("  {}→{} at {}: {}", q.user, q.target, q.issued_at, verdict);
        }
    }
    println!("
occupancy (time-weighted devices per cell):");
    for (room, avg) in sys.cell_occupancy(end).iter().enumerate() {
        if *avg > 0.005 {
            println!("  {:<12} {avg:.2}", building.name(RoomId::new(room)));
        }
    }
}

fn main() {
    // --file mode takes over entirely.
    let argv: Vec<String> = std::env::args().collect();
    if let Some(pos) = argv.iter().position(|a| a == "--file") {
        match argv.get(pos + 1) {
            Some(path) => return run_scenario_file(path),
            None => usage(),
        }
    }
    let args = parse_args();
    let building = build_building(&args.building);
    let n_rooms = building.num_rooms();
    let config = SystemConfig {
        building: building.clone(),
        duty: bips::baseband::params::DutyCycle::periodic(
            SimDuration::from_secs_f64(args.inquiry_s),
            SimDuration::from_secs_f64(args.cycle_s),
        ),
        sweep_interval: SimDuration::from_secs_f64(args.cycle_s),
        absence_timeout: SimDuration::from_secs_f64(2.0 * args.cycle_s),
        batch_updates: args.batch,
        ..SystemConfig::default()
    };

    println!(
        "bips-sim: {} ({} rooms), {} users, {}s, seed {}, inquiry {:.2}s / cycle {:.2}s{}",
        args.building,
        n_rooms,
        args.users,
        args.duration_s,
        args.seed,
        args.inquiry_s,
        args.cycle_s,
        if args.batch { ", batched updates" } else { "" }
    );

    let mut builder = BipsSystem::builder(config);
    let mut names = Vec::new();
    for i in 0..args.users {
        let name = match &args.query {
            Some((a, _)) if i == 0 => a.clone(),
            Some((_, b)) if i == 1 => b.clone(),
            _ => format!("user{i}"),
        };
        names.push(name.clone());
        builder = builder.user(UserSpec::new(name, i % n_rooms));
    }
    let mut engine = builder.into_engine(args.seed);

    // Optional periodic query between the named pair.
    if let Some((from, to)) = &args.query {
        let mut t = 120u64;
        while t < args.duration_s {
            engine.schedule(SimTime::from_secs(t), SysEvent::locate(from.clone(), to.clone()));
            t += 120;
        }
    }

    let end = SimTime::from_secs(args.duration_s);
    engine.run_until(end);

    let sys = engine.world();
    let st = sys.stats();
    println!("\n== results ==");
    println!(
        "logins: {}/{}   accuracy now: {:.0}%",
        st.logins_completed,
        args.users,
        sys.tracking_accuracy() * 100.0
    );
    println!(
        "presence: {} changes in {} LAN messages (naive: {})",
        st.presence_updates_sent, st.presence_messages_sent, st.naive_announcements
    );
    let lat = sys.detection_latency();
    if !lat.is_empty() {
        println!(
            "detection latency: {:.1}s mean over {} samples ({} visits missed)",
            lat.mean(),
            lat.len(),
            st.missed_detections
        );
    }
    println!("\nwhere is everyone?");
    for name in &names {
        let loc = sys
            .db_cell_of(name)
            .map(|c| building.name(RoomId::new(c)).to_string())
            .unwrap_or_else(|| "out of coverage".to_string());
        println!("  {name:<12} {loc}");
    }
    if args.query.is_some() {
        println!("\nqueries:");
        for q in sys.queries() {
            println!(
                "  {}→{} at {}: {:?}",
                q.user, q.target, q.issued_at, q.outcome
            );
        }
    }
    println!("\noccupancy (time-weighted devices per cell):");
    for (room, avg) in sys.cell_occupancy(end).iter().enumerate() {
        if *avg > 0.005 {
            println!("  {:<12} {avg:.2}", building.name(RoomId::new(room)));
        }
    }
}
