//! `bips-sim` — run a BIPS deployment scenario from the command line.
//!
//! ```console
//! $ bips-sim --building department --users 6 --duration 900 --seed 42
//! $ bips-sim --building office:3 --users 10 --inquiry 3.84 --cycle 15.4
//! $ bips-sim --building corridor:5 --users 2 --query alice:bob
//! $ bips-sim --file examples/department.bips --json run.json
//! ```
//!
//! With `--file`, the scenario text format (see [`bips::scenario`]) defines
//! everything and the other simulation flags are ignored. Every run is
//! deterministic in its seed.
//!
//! `--json PATH` writes a structured run report (config, seed, headline
//! numbers, full metric snapshot); `--jsonl PATH` appends the same report
//! as one compact line, for accumulating sweeps. The JSON schema and the
//! metric catalog are documented in `docs/OBSERVABILITY.md`.

// Operator-facing binary: timing the run for the human at the
// terminal is fine; simulation results never depend on it.
#![allow(clippy::disallowed_methods)]

use bips::core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips::mobility::{Building, Point, RoomId};
use bips::sim::probe::{EngineProbe, ProbeHandle};
use bips::sim::{MetricSet, RunReport, SimDuration, SimTime};

struct Args {
    building: String,
    users: usize,
    duration_s: u64,
    seed: u64,
    inquiry_s: f64,
    cycle_s: f64,
    jobs: usize,
    batch: bool,
    query: Option<(String, String)>,
    json: Option<String>,
    jsonl: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: bips-sim [--building department|office:<floors>|corridor:<rooms>]\n\
         \x20               [--users N] [--duration SECONDS] [--seed SEED]\n\
         \x20               [--inquiry SECS] [--cycle SECS] [--jobs N] [--batch]\n\
         \x20               [--query USER:TARGET]\n\
         \x20               [--json PATH] [--jsonl PATH]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        building: "department".into(),
        users: 6,
        duration_s: 900,
        seed: 42,
        inquiry_s: 3.84,
        cycle_s: 15.4,
        jobs: 0,
        batch: false,
        query: None,
        json: None,
        jsonl: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--building" => args.building = val("--building"),
            "--users" => args.users = val("--users").parse().unwrap_or_else(|_| usage()),
            "--duration" => args.duration_s = val("--duration").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--inquiry" => args.inquiry_s = val("--inquiry").parse().unwrap_or_else(|_| usage()),
            "--cycle" => args.cycle_s = val("--cycle").parse().unwrap_or_else(|_| usage()),
            "--jobs" => args.jobs = val("--jobs").parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = true,
            "--query" => {
                let v = val("--query");
                let Some((a, b)) = v.split_once(':') else {
                    usage()
                };
                args.query = Some((a.to_string(), b.to_string()));
            }
            "--json" => args.json = Some(val("--json")),
            "--jsonl" => args.jsonl = Some(val("--jsonl")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    if args.users == 0 || args.inquiry_s <= 0.0 || args.cycle_s < args.inquiry_s {
        usage();
    }
    args
}

fn build_building(spec: &str) -> Building {
    if spec == "department" {
        return Building::academic_department();
    }
    if let Some(floors) = spec.strip_prefix("office:") {
        let floors: usize = floors.parse().unwrap_or_else(|_| usage());
        return Building::multi_floor_office(floors.max(1));
    }
    if let Some(rooms) = spec.strip_prefix("corridor:") {
        let rooms: usize = rooms.parse().unwrap_or_else(|_| usage());
        let rooms = rooms.max(2);
        let mut b = Building::new();
        let ids: Vec<RoomId> = (0..rooms)
            .map(|i| b.add_room(format!("room-{i}"), Point::new(18.0 * i as f64, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        return b;
    }
    usage()
}

/// Event classification for the engine probe's per-type profiles.
fn classify(ev: &SysEvent) -> &'static str {
    match ev {
        SysEvent::Bb(_) => "bb",
        SysEvent::Lan(_) => "lan",
        SysEvent::Tr(_) => "transport",
        SysEvent::Mob(_) => "mobility",
        SysEvent::Sweep { .. } => "sweep",
        SysEvent::Cmd(_) => "cmd",
    }
}

/// Collects the run's full metric snapshot (substrates + engine probe).
fn snapshot(sys: &BipsSystem, probe: &ProbeHandle, end: SimTime) -> MetricSet {
    let mut metrics = MetricSet::new();
    sys.export_metrics(&mut metrics, end);
    probe.borrow().export_into(&mut metrics, end);
    metrics
}

/// Writes the structured report wherever the user asked for it.
fn emit_report(report: &RunReport, json: Option<&str>, jsonl: Option<&str>) {
    if let Some(path) = json {
        report.write_json(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
    if let Some(path) = jsonl {
        report.append_jsonl(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("appended to {path}");
    }
}

fn run_scenario_file(path: &str, json: Option<&str>, jsonl: Option<&str>) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let scenario = bips::scenario::Scenario::parse(&text).unwrap_or_else(|e| {
        eprintln!("{path}:{e}");
        std::process::exit(1);
    });
    let building = scenario.config.building.clone();
    let names: Vec<String> = scenario.users.iter().map(|u| u.name.clone()).collect();
    let duration = scenario.duration;
    let seed = scenario.seed;
    println!(
        "bips-sim: scenario {path} ({} rooms, {} users, {}s, seed {})",
        building.num_rooms(),
        names.len(),
        duration.as_secs_f64(),
        seed
    );
    let mut engine = scenario.into_engine();
    let probe = EngineProbe::new(classify);
    let handle = probe.handle();
    engine.attach_observer(Box::new(probe));
    let end = SimTime::ZERO + duration;
    engine.run_until(end);
    let metrics = snapshot(engine.world(), &handle, end);
    report(engine.world(), &building, &names, end, true);
    println!("\n— telemetry —");
    print!("{metrics}");

    if json.is_some() || jsonl.is_some() {
        let mut run = RunReport::new("bips-sim", seed);
        run.config("scenario_file", path)
            .config("users", names.len())
            .config("duration_s", duration.as_secs_f64());
        let sys = engine.world();
        headline_artifacts(&mut run, sys, names.len());
        run.metrics(&metrics);
        emit_report(&run, json, jsonl);
    }
}

/// The headline numbers every bips-sim report carries.
fn headline_artifacts(run: &mut RunReport, sys: &BipsSystem, users: usize) {
    let st = sys.stats();
    run.artifact("users", users)
        .artifact("logins_completed", st.logins_completed)
        .artifact("tracking_accuracy", sys.tracking_accuracy())
        .artifact("presence_updates_sent", st.presence_updates_sent)
        .artifact("presence_messages_sent", st.presence_messages_sent)
        .artifact("naive_announcements", st.naive_announcements)
        .artifact("heartbeats_sent", st.heartbeats_sent)
        .artifact("missed_detections", st.missed_detections)
        .artifact("detection_latency_mean_s", sys.detection_latency().mean());
}

fn report(
    sys: &BipsSystem,
    building: &bips::mobility::Building,
    names: &[String],
    end: SimTime,
    show_queries: bool,
) {
    let st = sys.stats();
    println!("\n== results ==");
    println!(
        "logins completed: {} ({} users)   accuracy now: {:.0}%",
        st.logins_completed,
        names.len(),
        sys.tracking_accuracy() * 100.0
    );
    println!(
        "presence: {} changes in {} LAN messages (+{} heartbeats; naive: {})",
        st.presence_updates_sent,
        st.presence_messages_sent,
        st.heartbeats_sent,
        st.naive_announcements
    );
    let lat = sys.detection_latency();
    if !lat.is_empty() {
        println!(
            "detection latency: {:.1}s mean over {} samples ({} visits missed)",
            lat.mean(),
            lat.len(),
            st.missed_detections
        );
    }
    println!("\nwhere is everyone?");
    for name in names {
        let loc = sys
            .db_cell_of(name)
            .map(|c| building.name(RoomId::new(c)).to_string())
            .unwrap_or_else(|| "out of coverage".to_string());
        println!("  {name:<12} {loc}");
    }
    if show_queries && !sys.queries().is_empty() {
        println!("\nqueries:");
        for q in sys.queries() {
            let verdict = match (&q.outcome, &q.history_outcome) {
                (Some(o), _) => format!("{o:?}"),
                (_, Some(h)) => format!("{h:?}"),
                _ => "(pending)".into(),
            };
            println!("  {}→{} at {}: {}", q.user, q.target, q.issued_at, verdict);
        }
    }
    println!("\noccupancy (time-weighted devices per cell):");
    for (room, avg) in sys.cell_occupancy(end).iter().enumerate() {
        if *avg > 0.005 {
            println!("  {:<12} {avg:.2}", building.name(RoomId::new(room)));
        }
    }
}

fn main() {
    // --file mode takes over; only the report flags still apply.
    let argv: Vec<String> = std::env::args().collect();
    if let Some(pos) = argv.iter().position(|a| a == "--file") {
        let take = |flag: &str| {
            argv.iter()
                .position(|a| a == flag)
                .and_then(|i| argv.get(i + 1))
                .map(String::as_str)
        };
        match argv.get(pos + 1) {
            Some(path) => return run_scenario_file(path, take("--json"), take("--jsonl")),
            None => usage(),
        }
    }
    let args = parse_args();
    let building = build_building(&args.building);
    let n_rooms = building.num_rooms();
    let config = SystemConfig {
        building: building.clone(),
        duty: bips::baseband::params::DutyCycle::periodic(
            SimDuration::from_secs_f64(args.inquiry_s),
            SimDuration::from_secs_f64(args.cycle_s),
        ),
        sweep_interval: SimDuration::from_secs_f64(args.cycle_s),
        absence_timeout: SimDuration::from_secs_f64(2.0 * args.cycle_s),
        batch_updates: args.batch,
        ..SystemConfig::default()
    };

    println!(
        "bips-sim: {} ({} rooms), {} users, {}s, seed {}, inquiry {:.2}s / cycle {:.2}s{}",
        args.building,
        n_rooms,
        args.users,
        args.duration_s,
        args.seed,
        args.inquiry_s,
        args.cycle_s,
        if args.batch { ", batched updates" } else { "" }
    );

    let mut builder = BipsSystem::builder(config);
    let mut names = Vec::new();
    for i in 0..args.users {
        let name = match &args.query {
            Some((a, _)) if i == 0 => a.clone(),
            Some((_, b)) if i == 1 => b.clone(),
            _ => format!("user{i}"),
        };
        names.push(name.clone());
        builder = builder.user(UserSpec::new(name, i % n_rooms));
    }
    let mut engine = builder.into_engine(args.seed);
    let probe = EngineProbe::new(classify);
    let handle = probe.handle();
    engine.attach_observer(Box::new(probe));

    // Optional periodic query between the named pair.
    if let Some((from, to)) = &args.query {
        let mut t = 120u64;
        while t < args.duration_s {
            engine.schedule(
                SimTime::from_secs(t),
                SysEvent::locate(from.clone(), to.clone()),
            );
            t += 120;
        }
    }

    let end = SimTime::from_secs(args.duration_s);
    let wall_start = std::time::Instant::now();
    engine.run_until(end);
    let wall_secs = wall_start.elapsed().as_secs_f64();

    let metrics = snapshot(engine.world(), &handle, end);
    report(engine.world(), &building, &names, end, args.query.is_some());
    println!("\n— telemetry —");
    print!("{metrics}");

    if args.json.is_some() || args.jsonl.is_some() {
        let mut run = RunReport::new("bips-sim", args.seed);
        run.config("building", args.building.as_str())
            .config("users", args.users)
            .config("duration_s", args.duration_s)
            .config("inquiry_s", args.inquiry_s)
            .config("cycle_s", args.cycle_s)
            .config("jobs", bips::sim::par::resolve_jobs(args.jobs) as u64)
            .config("batch_updates", args.batch);
        headline_artifacts(&mut run, engine.world(), args.users);
        run.artifact("wall_secs", wall_secs);
        run.metrics(&metrics);
        emit_report(&run, args.json.as_deref(), args.jsonl.as_deref());
    }
}
