//! Text scenario files for `bips-sim`.
//!
//! A scenario is a line-oriented description of a deployment — building,
//! users, duty cycle, scripted events — so experiments can be shared and
//! replayed without writing Rust. Lines are `#`-commented; directives:
//!
//! ```text
//! # geometry: either a preset or explicit rooms/doors
//! building department            # or office:<floors> / corridor:<rooms>
//! room lobby 0 9                 # name x y   (meters)
//! room lab 18 9
//! door lobby lab                 # optional trailing walking distance
//!
//! # deployment parameters
//! duty 3.84 15.4                 # inquiry / cycle, seconds
//! seed 42
//! duration 900                   # seconds
//! batch                          # batch presence updates
//! congestion                     # fold crossing counters into path weights
//!
//! # users: name room [stationary|random|loop room,room,...] [noauto]
//! user alice lobby stationary
//! user bob lab random
//! user carl lab loop lobby,lab
//!
//! # scripted events (seconds)
//! locate 300 alice bob
//! history 600 alice bob 0 600
//! logout 700 carl
//! restart 800                    # server crash + restart
//! ```

use std::fmt;

use bips_core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips_core::BipsServer;
use bips_mobility::walker::WalkMode;
use bips_mobility::{Building, Point, RoomId};
use desim::{Engine, SimDuration, SimTime};

/// A parsed scenario, ready to run.
#[derive(Debug)]
pub struct Scenario {
    /// Deployment configuration (building, duty cycle, batching).
    pub config: SystemConfig,
    /// Mobile users.
    pub users: Vec<UserSpec>,
    /// Run length.
    pub duration: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Scripted events with their firing times.
    pub script: Vec<(SimTime, SysEvent)>,
}

/// A parse failure, with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScenarioError {
    /// 1-based line of the offending directive.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ParseScenarioError {
    ParseScenarioError {
        line,
        message: message.into(),
    }
}

impl Scenario {
    /// Parses a scenario from text.
    ///
    /// # Errors
    ///
    /// Returns the first offending line with a description.
    pub fn parse(text: &str) -> Result<Scenario, ParseScenarioError> {
        let mut building: Option<Building> = None;
        let mut explicit = Building::new();
        let mut has_explicit_rooms = false;
        let mut users: Vec<(usize, String, String, WalkMode, bool)> = Vec::new();
        let mut duty: Option<(f64, f64)> = None;
        let mut seed = 42u64;
        let mut duration = SimDuration::from_secs(900);
        let mut batch = false;
        let mut congestion = false;
        let mut script_raw: Vec<(usize, SimTime, ScriptItem)> = Vec::new();

        enum ScriptItem {
            Locate(String, String),
            History(String, String, u64, u64),
            Logout(String),
            Login(String),
            Restart,
        }

        for (idx, raw) in text.lines().enumerate() {
            let ln = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            let directive = tok.next().expect("non-empty line");
            let rest: Vec<&str> = tok.collect();
            match directive {
                "building" => {
                    let spec = rest.first().ok_or_else(|| err(ln, "missing preset"))?;
                    building = Some(
                        preset(spec)
                            .ok_or_else(|| err(ln, format!("unknown building preset '{spec}'")))?,
                    );
                }
                "room" => {
                    let [name, x, y] = rest[..] else {
                        return Err(err(ln, "usage: room <name> <x> <y>"));
                    };
                    let x: f64 = x.parse().map_err(|_| err(ln, "bad x coordinate"))?;
                    let y: f64 = y.parse().map_err(|_| err(ln, "bad y coordinate"))?;
                    if explicit.room_by_name(name).is_some() {
                        return Err(err(ln, format!("duplicate room '{name}'")));
                    }
                    explicit.add_room(name, Point::new(x, y));
                    has_explicit_rooms = true;
                }
                "door" => {
                    if rest.len() < 2 || rest.len() > 3 {
                        return Err(err(ln, "usage: door <a> <b> [distance]"));
                    }
                    let a = explicit
                        .room_by_name(rest[0])
                        .ok_or_else(|| err(ln, format!("unknown room '{}'", rest[0])))?;
                    let b = explicit
                        .room_by_name(rest[1])
                        .ok_or_else(|| err(ln, format!("unknown room '{}'", rest[1])))?;
                    match rest.get(2) {
                        Some(d) => {
                            let d: f64 = d.parse().map_err(|_| err(ln, "bad distance"))?;
                            explicit.connect_with_distance(a, b, d);
                        }
                        None => explicit.connect(a, b),
                    }
                }
                "duty" => {
                    let [inq, cyc] = rest[..] else {
                        return Err(err(ln, "usage: duty <inquiry-s> <cycle-s>"));
                    };
                    let inq: f64 = inq.parse().map_err(|_| err(ln, "bad inquiry"))?;
                    let cyc: f64 = cyc.parse().map_err(|_| err(ln, "bad cycle"))?;
                    if inq <= 0.0 || cyc < inq {
                        return Err(err(ln, "need 0 < inquiry ≤ cycle"));
                    }
                    duty = Some((inq, cyc));
                }
                "seed" => {
                    let v = rest.first().ok_or_else(|| err(ln, "missing seed"))?;
                    seed = v.parse().map_err(|_| err(ln, "bad seed"))?;
                }
                "duration" => {
                    let v = rest.first().ok_or_else(|| err(ln, "missing seconds"))?;
                    let secs: u64 = v.parse().map_err(|_| err(ln, "bad duration"))?;
                    duration = SimDuration::from_secs(secs);
                }
                "batch" => batch = true,
                "congestion" => congestion = true,
                "user" => {
                    if rest.len() < 2 {
                        return Err(err(ln, "usage: user <name> <room> [mode…] [noauto]"));
                    }
                    let name = rest[0].to_string();
                    if users.iter().any(|(_, n, _, _, _)| *n == name) {
                        return Err(err(ln, format!("duplicate user '{name}'")));
                    }
                    let room = rest[1].to_string();
                    let mut noauto = false;
                    let mut mode_tokens: Vec<&str> = Vec::new();
                    for &t in &rest[2..] {
                        if t == "noauto" {
                            noauto = true;
                        } else {
                            mode_tokens.push(t);
                        }
                    }
                    let mode = match mode_tokens.split_first() {
                        None | Some((&"random", _)) => WalkMode::RandomWalk {
                            pause: (SimDuration::from_secs(10), SimDuration::from_secs(40)),
                        },
                        Some((&"stationary", _)) => WalkMode::Stationary,
                        Some((&"loop", args)) | Some((&"route", args)) => {
                            let list = args
                                .first()
                                .ok_or_else(|| err(ln, "loop/route needs room,room,…"))?;
                            // Room names resolved after the building is final.
                            let rooms: Vec<String> = list.split(',').map(str::to_string).collect();
                            if rooms.is_empty() {
                                return Err(err(ln, "empty route"));
                            }
                            // Encode names for later resolution via a marker:
                            // store indices later; for now stash the strings.
                            users.push((ln, name, room, WalkMode::Stationary, noauto));
                            pending_routes(&mut users, mode_tokens[0] == "loop", rooms);
                            continue;
                        }
                        Some((other, _)) => {
                            return Err(err(ln, format!("unknown mode '{other}'")));
                        }
                    };
                    users.push((ln, name, room, mode, noauto));
                }
                "locate" => {
                    let [t, a, b] = rest[..] else {
                        return Err(err(ln, "usage: locate <t-s> <user> <target>"));
                    };
                    let t: u64 = t.parse().map_err(|_| err(ln, "bad time"))?;
                    script_raw.push((
                        ln,
                        SimTime::from_secs(t),
                        ScriptItem::Locate(a.into(), b.into()),
                    ));
                }
                "history" => {
                    let [t, a, b, from, to] = rest[..] else {
                        return Err(err(
                            ln,
                            "usage: history <t-s> <user> <target> <from-s> <to-s>",
                        ));
                    };
                    let t: u64 = t.parse().map_err(|_| err(ln, "bad time"))?;
                    let from: u64 = from.parse().map_err(|_| err(ln, "bad window start"))?;
                    let to: u64 = to.parse().map_err(|_| err(ln, "bad window end"))?;
                    script_raw.push((
                        ln,
                        SimTime::from_secs(t),
                        ScriptItem::History(a.into(), b.into(), from, to),
                    ));
                }
                "logout" => {
                    let [t, a] = rest[..] else {
                        return Err(err(ln, "usage: logout <t-s> <user>"));
                    };
                    let t: u64 = t.parse().map_err(|_| err(ln, "bad time"))?;
                    script_raw.push((ln, SimTime::from_secs(t), ScriptItem::Logout(a.into())));
                }
                "login" => {
                    let [t, a] = rest[..] else {
                        return Err(err(ln, "usage: login <t-s> <user>"));
                    };
                    let t: u64 = t.parse().map_err(|_| err(ln, "bad time"))?;
                    script_raw.push((ln, SimTime::from_secs(t), ScriptItem::Login(a.into())));
                }
                "restart" => {
                    let [t] = rest[..] else {
                        return Err(err(ln, "usage: restart <t-s>"));
                    };
                    let t: u64 = t.parse().map_err(|_| err(ln, "bad time"))?;
                    script_raw.push((ln, SimTime::from_secs(t), ScriptItem::Restart));
                }
                other => return Err(err(ln, format!("unknown directive '{other}'"))),
            }
        }

        // Route placeholders are resolved below.
        fn pending_routes(
            users: &mut [(usize, String, String, WalkMode, bool)],
            is_loop: bool,
            rooms: Vec<String>,
        ) {
            // Marker via a special pause: resolved after building fixing.
            // We stash the route names joined by '\n' in the room field of
            // a phantom entry — simpler: replace the last user's mode with
            // a RandomWalk marker is fragile; instead encode directly:
            let last = users.last_mut().expect("user just pushed");
            // Temporarily encode the route in the room string after a
            // separator; resolved in the second pass.
            last.2 = format!(
                "{}\x1f{}\x1f{}",
                last.2,
                if is_loop { "loop" } else { "route" },
                rooms.join(",")
            );
        }

        let building = match (building, has_explicit_rooms) {
            (Some(_), true) => {
                return Err(err(
                    1,
                    "use either a building preset or explicit rooms, not both",
                ))
            }
            (Some(b), false) => b,
            (None, true) => explicit,
            (None, false) => Building::academic_department(),
        };

        let resolve_room = |name: &str, ln: usize| {
            building
                .room_by_name(name)
                .ok_or_else(|| err(ln, format!("unknown room '{name}'")))
        };

        let mut specs = Vec::with_capacity(users.len());
        for (ln, name, room_field, mode, noauto) in users {
            let mut parts = room_field.split('\x1f');
            let room_name = parts.next().expect("room part");
            let room = resolve_room(room_name, ln)?;
            let mode = match (parts.next(), parts.next()) {
                (Some(kind), Some(list)) => {
                    let route: Result<Vec<RoomId>, _> =
                        list.split(',').map(|r| resolve_room(r, ln)).collect();
                    let route = route?;
                    if kind == "loop" {
                        WalkMode::Loop(route)
                    } else {
                        WalkMode::Route(route)
                    }
                }
                _ => mode,
            };
            specs.push(
                UserSpec::new(name, room.index())
                    .mode(mode)
                    .auto_login(!noauto),
            );
        }

        let mut script = Vec::with_capacity(script_raw.len());
        let known = |n: &str| specs.iter().any(|u| u.name == n);
        for (ln, t, item) in script_raw {
            let ev = match item {
                ScriptItem::Locate(a, b) => {
                    if !known(&a) {
                        return Err(err(ln, format!("unknown user '{a}'")));
                    }
                    SysEvent::locate(a, b)
                }
                ScriptItem::History(a, b, from, to) => {
                    if !known(&a) {
                        return Err(err(ln, format!("unknown user '{a}'")));
                    }
                    SysEvent::history(a, b, from, to)
                }
                ScriptItem::Logout(a) => {
                    if !known(&a) {
                        return Err(err(ln, format!("unknown user '{a}'")));
                    }
                    SysEvent::logout(a)
                }
                ScriptItem::Login(a) => {
                    if !known(&a) {
                        return Err(err(ln, format!("unknown user '{a}'")));
                    }
                    SysEvent::login(a)
                }
                ScriptItem::Restart => SysEvent::restart_server(),
            };
            script.push((t, ev));
        }

        let (inq, cyc) = duty.unwrap_or((3.84, 15.4));
        let config = SystemConfig {
            building,
            duty: bt_baseband::params::DutyCycle::periodic(
                SimDuration::from_secs_f64(inq),
                SimDuration::from_secs_f64(cyc),
            ),
            sweep_interval: SimDuration::from_secs_f64(cyc),
            absence_timeout: SimDuration::from_secs_f64(2.0 * cyc),
            batch_updates: batch,
            congestion_weights: congestion,
            ..SystemConfig::default()
        };

        Ok(Scenario {
            config,
            users: specs,
            duration,
            seed,
            script,
        })
    }

    /// Builds the engine with every user added and the script scheduled.
    pub fn into_engine(self) -> Engine<BipsSystem> {
        let mut builder = BipsSystem::builder(self.config);
        for u in self.users {
            builder = builder.user(u);
        }
        let mut engine = builder.into_engine(self.seed);
        for (t, ev) in self.script {
            engine.schedule(t, ev);
        }
        engine
    }

    /// Convenience: the server after running the scenario to completion.
    pub fn run(self) -> (Engine<BipsSystem>, BipsServer) {
        let duration = self.duration;
        let mut engine = self.into_engine();
        engine.run_until(SimTime::ZERO + duration);
        let server = engine.world().server().clone();
        (engine, server)
    }
}

fn preset(spec: &str) -> Option<Building> {
    if spec == "department" {
        return Some(Building::academic_department());
    }
    if let Some(floors) = spec.strip_prefix("office:") {
        return floors
            .parse::<usize>()
            .ok()
            .filter(|&f| f > 0)
            .map(Building::multi_floor_office);
    }
    if let Some(rooms) = spec.strip_prefix("corridor:") {
        let rooms: usize = rooms.parse().ok().filter(|&r| r >= 2)?;
        let mut b = Building::new();
        let ids: Vec<RoomId> = (0..rooms)
            .map(|i| b.add_room(format!("room-{i}"), Point::new(18.0 * i as f64, 0.0)))
            .collect();
        for w in ids.windows(2) {
            b.connect(w[0], w[1]);
        }
        return Some(b);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let text = "\
# a custom two-room site
room lobby 0 0
room lab 25 0
door lobby lab
duty 4 8
seed 7
duration 300
user alice lobby stationary
user bob lab stationary noauto
user carl lobby loop lab,lobby
locate 120 alice bob
login 150 bob
restart 200
";
        let sc = Scenario::parse(text).expect("parse");
        assert_eq!(sc.config.building.num_rooms(), 2);
        assert_eq!(sc.users.len(), 3);
        assert!(!sc.users[1].auto_login);
        assert!(matches!(sc.users[2].mode, WalkMode::Loop(ref r) if r.len() == 2));
        assert_eq!(sc.seed, 7);
        assert_eq!(sc.duration, SimDuration::from_secs(300));
        assert_eq!(sc.script.len(), 3);
    }

    #[test]
    fn parsed_scenario_actually_runs() {
        let text = "\
building corridor:2
duty 4 8
duration 200
seed 5
user alice room-0 stationary
user bob room-1 stationary
locate 120 alice bob
";
        let (engine, server) = Scenario::parse(text).expect("parse").run();
        assert!(engine.world().is_logged_in("alice"));
        assert_eq!(server.locate_by_name("bob"), Some(1));
        let q = &engine.world().queries()[0];
        assert!(q.answered_at.is_some(), "{q:?}");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("room a 0", "usage: room"),
            ("door a b", "unknown room"),
            ("building atlantis", "unknown building preset"),
            ("duty 5 1", "need 0 < inquiry"),
            ("user a nowhere", "unknown room"),
            ("frobnicate 1", "unknown directive"),
            ("user a", "usage: user"),
        ];
        for (text, needle) in cases {
            let e = Scenario::parse(text).expect_err(text);
            assert_eq!(e.line, 1, "{text}");
            assert!(e.message.contains(needle), "{text}: {e}");
        }
        let multi = "room a 0 0\nroom a 1 1\n";
        let e = Scenario::parse(multi).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("duplicate room"));
    }

    #[test]
    fn script_users_must_exist() {
        let text = "building corridor:2\nuser alice room-0\nlocate 10 ghost alice\n";
        let e = Scenario::parse(text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("unknown user 'ghost'"));
    }

    #[test]
    fn comments_and_defaults() {
        let sc = Scenario::parse("# nothing but comments\n").expect("parse");
        assert_eq!(sc.config.building.num_rooms(), 9, "default: department");
        assert_eq!(sc.seed, 42);
        assert!(sc.users.is_empty());
    }

    #[test]
    fn preset_and_explicit_rooms_conflict() {
        let text = "building department\nroom extra 0 0\n";
        let e = Scenario::parse(text).unwrap_err();
        assert!(e.message.contains("not both"));
    }
}
