//! The radio medium: devices, events, hearings, collisions, links.
//!
//! [`Baseband`] owns every modeled radio (masters = BIPS workstations,
//! slaves = handhelds) and advances them event by event. It is written
//! against [`SubScheduler`] so it runs standalone (see
//! [`world::BasebandWorld`](crate::world::BasebandWorld)) or embedded in a
//! larger simulation such as the full BIPS system.
//!
//! The interesting physics all happens here:
//!
//! * a master in the inquiry phase transmits two ID packets per even slot
//!   along its current train ([`inquiry`](crate::inquiry));
//! * a slave hears an ID iff it is in radio range, its scan machine is
//!   listening for inquiry at that instant, and its scan frequency equals
//!   the transmitted frequency;
//! * FHS responses scheduled for the same master at the same instant
//!   **collide** and are all lost (the mechanism the paper added to
//!   BlueHoc) — unless collisions are disabled for ablation;
//! * discovered devices can be paged during the master's service phase
//!   and then exchange data until range loss trips the supervision
//!   timeout.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use desim::compose::SubScheduler;
use desim::{EventId, SimDuration, SimRng, SimTime};

use crate::addr::BdAddr;
use crate::clock::{NativeClock, CLKN_12_PERIOD, SLOT_PAIR, TICK};
use crate::hop::{InquiryFreq, Train, NUM_INQUIRY_FREQS};
use crate::inquiry::InquiryState;
use crate::link::Link;
use crate::page::{completion_time, PageAttempt};
use crate::params::{
    MasterConfig, MediumConfig, PageModel, ScanFreqModel, SlaveConfig, StartTrain,
};
use crate::scan::{ScanAction, ScanMachine, ScanPhase, WindowSchedule};
use crate::schedule::{Phase, PhasePlan};

/// The train selected by a clock at an instant: bit 14 of CLKN flips
/// every 2.56 s, the train-repetition period.
fn train_from_clock(clock: &NativeClock, at: SimTime) -> Train {
    if (clock.clkn(at) >> 14) & 1 == 0 {
        Train::A
    } else {
        Train::B
    }
}

/// Maximum simultaneously active slaves in one piconet (spec: a 3-bit
/// active member address, 7 slaves plus the master).
pub const MAX_ACTIVE_SLAVES: usize = 7;

/// Identifies a master (a BIPS workstation radio) within one [`Baseband`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MasterId(usize);

impl MasterId {
    /// Creates an id from a raw index (as returned by
    /// [`Baseband::add_master`]).
    pub fn new(index: usize) -> MasterId {
        MasterId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifies a slave (a handheld radio) within one [`Baseband`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SlaveId(usize);

impl SlaveId {
    /// Creates an id from a raw index (as returned by
    /// [`Baseband::add_slave`]).
    pub fn new(index: usize) -> SlaveId {
        SlaveId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A baseband event. Opaque: embedders wrap it in their own event enum and
/// hand it back to [`Baseband::handle`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BbEvent(Ev);

#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Bootstrap: start all configured devices.
    Start,
    /// Master even-slot inquiry transmission. `deferred` marks a
    /// skip-ahead transmission that already requeued itself behind the
    /// other events of its instant (see `should_defer`).
    InqTx {
        master: usize,
        epoch: u32,
        deferred: bool,
    },
    /// Master duty-cycle boundary.
    PhaseBoundary { master: usize, epoch: u32 },
    /// Slave regular scan-window open (index = which window).
    WindowOpen {
        slave: usize,
        epoch: u32,
        index: u64,
    },
    /// Slave scan-window close.
    WindowClose { slave: usize, epoch: u32 },
    /// Slave response backoff finished.
    BackoffEnd { slave: usize, epoch: u32 },
    /// All FHS responses aimed at `master` for the instant keyed `key`.
    FhsRx { master: usize, key: u64 },
    /// An in-flight page attempt reaches a decision instant (analytic
    /// model).
    PageResolve {
        master: usize,
        slave: usize,
        attempt: u32,
    },
    /// Slot-accurate paging: the master's next page-ID transmission.
    PageTx { master: usize, attempt: u32 },
    /// A data message finishes its transfer.
    DataDelivered {
        master: usize,
        slave: usize,
        tag: u64,
        payload: Vec<u8>,
    },
    /// Link supervision check after a range loss.
    SupervisionCheck { master: usize, slave: usize },
    /// Scripted command (public API action delivered as an event).
    Cmd(Command),
}

/// A scripted action, schedulable like any other event — lets tests,
/// examples and experiment harnesses drive the medium's public API at
/// chosen instants without writing a custom [`World`](desim::World).
#[derive(Debug, Clone, PartialEq, Eq)]
enum Command {
    SetInRange(MasterId, SlaveId, bool),
    RequestPage(MasterId, SlaveId),
    SendData(MasterId, SlaveId, Vec<u8>, u64),
    Disconnect(MasterId, SlaveId),
    SetSlaveActive(SlaveId, bool),
}

impl BbEvent {
    /// The bootstrap event: schedule it once at the simulation start to
    /// launch every configured device (standalone worlds do this for you).
    pub fn start() -> BbEvent {
        BbEvent(Ev::Start)
    }

    /// Scripted [`Baseband::set_in_range`].
    pub fn set_in_range(master: MasterId, slave: SlaveId, in_range: bool) -> BbEvent {
        BbEvent(Ev::Cmd(Command::SetInRange(master, slave, in_range)))
    }

    /// Scripted [`Baseband::request_page`].
    pub fn request_page(master: MasterId, slave: SlaveId) -> BbEvent {
        BbEvent(Ev::Cmd(Command::RequestPage(master, slave)))
    }

    /// Scripted [`Baseband::send_data`]; a missing link is silently
    /// dropped (scripts cannot observe errors).
    pub fn send_data(master: MasterId, slave: SlaveId, payload: Vec<u8>, tag: u64) -> BbEvent {
        BbEvent(Ev::Cmd(Command::SendData(master, slave, payload, tag)))
    }

    /// Scripted [`Baseband::disconnect`].
    pub fn disconnect(master: MasterId, slave: SlaveId) -> BbEvent {
        BbEvent(Ev::Cmd(Command::Disconnect(master, slave)))
    }

    /// Scripted [`Baseband::set_slave_active`].
    pub fn set_slave_active(slave: SlaveId, active: bool) -> BbEvent {
        BbEvent(Ev::Cmd(Command::SetSlaveActive(slave, active)))
    }
}

/// One successful FHS reception (a device discovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Discovery {
    /// The discovering master.
    pub master: MasterId,
    /// The discovered slave.
    pub slave: SlaveId,
    /// When the master received the FHS.
    pub at: SimTime,
}

/// Things the baseband tells its embedder (drained via
/// [`Baseband::drain_notifications`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BbNotification {
    /// First FHS reception for this (master, slave) pair since the last
    /// reset.
    Discovered(Discovery),
    /// Every successful FHS reception (repeat sightings included) — the
    /// signal a BIPS workstation uses to refresh a device's presence.
    FhsSeen {
        /// The receiving master.
        master: MasterId,
        /// The sighted slave.
        slave: SlaveId,
        /// When.
        at: SimTime,
    },
    /// Two or more FHS responses collided at a master.
    FhsCollision {
        /// The master whose receive window was hit.
        master: MasterId,
        /// The slaves whose responses were destroyed.
        slaves: Vec<SlaveId>,
        /// When.
        at: SimTime,
    },
    /// A page attempt succeeded; the link is up.
    LinkEstablished {
        /// The piconet master.
        master: MasterId,
        /// The now-connected slave.
        slave: SlaveId,
        /// When.
        at: SimTime,
    },
    /// A page attempt timed out.
    PageFailed {
        /// The paging master.
        master: MasterId,
        /// The unreachable slave.
        slave: SlaveId,
        /// When the master gave up.
        at: SimTime,
    },
    /// A link was torn down (supervision timeout or explicit disconnect).
    LinkLost {
        /// The piconet master.
        master: MasterId,
        /// The disconnected slave.
        slave: SlaveId,
        /// When.
        at: SimTime,
    },
    /// A data message was delivered over a link.
    DataDelivered {
        /// Sending/receiving master.
        master: MasterId,
        /// The slave endpoint.
        slave: SlaveId,
        /// Caller-chosen tag identifying the message kind/direction.
        tag: u64,
        /// The message bytes (crossed the link in DM1 packets).
        payload: Vec<u8>,
        /// When.
        at: SimTime,
    },
}

/// Medium-wide counters, exposed for tests and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BbStats {
    /// ID packets transmitted by masters.
    pub ids_transmitted: u64,
    /// ID packets heard by slaves.
    pub ids_heard: u64,
    /// Backoffs begun by slaves.
    pub backoffs: u64,
    /// FHS responses transmitted by slaves.
    pub fhs_transmitted: u64,
    /// FHS responses successfully received.
    pub fhs_received: u64,
    /// FHS responses destroyed by collisions.
    pub fhs_collided: u64,
    /// FHS responses lost because the master had left the inquiry phase.
    pub fhs_missed_phase: u64,
    /// Page attempts begun.
    pub pages_started: u64,
    /// Pages completing in a connection.
    pub pages_completed: u64,
    /// Pages abandoned at timeout.
    pub pages_failed: u64,
    /// Links lost (supervision or explicit).
    pub links_lost: u64,
    /// Data messages delivered.
    pub data_delivered: u64,
}

/// Error returned by [`Baseband::send_data`] when no link exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoLinkError {
    /// The master endpoint of the missing link.
    pub master: MasterId,
    /// The slave endpoint of the missing link.
    pub slave: SlaveId,
}

impl std::fmt::Display for NoLinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no link between master {} and slave {}",
            self.master.index(),
            self.slave.index()
        )
    }
}

impl std::error::Error for NoLinkError {}

struct MasterDev {
    addr: BdAddr,
    clock: NativeClock,
    plan: PhasePlan,
    inq: InquiryState,
    start_policy: StartTrain,
    start_train: Train,
    epoch: u32,
    paging: Option<(PageAttempt, u32)>,
    page_attempt_seq: u32,
    page_queue: VecDeque<SlaveId>,
    /// Skip-ahead bookkeeping; `Some` exactly while the master is inside
    /// an inquiry phase with the skip-ahead scheduler enabled.
    skip: Option<SkipChain>,
}

/// Lazy accounting for a master's inquiry chain under skip-ahead.
///
/// Slot pairs on the inquiry grid before `from` are fully accounted
/// (`ids_transmitted`, train position); pairs from `from` onwards are
/// pending. They are settled in closed form — proven deaf, so no RNG
/// draws or state changes are lost — when the next audible pair fires,
/// when an audibility-increasing transition re-aims the chain, when the
/// phase ends, or when the engine quiesces at a `run_until` boundary.
struct SkipChain {
    /// First unaccounted slot pair on the master's even-slot grid.
    from: SimTime,
    /// Pending `InqTx` at the predicted next audible pair; `None` while
    /// no in-range scanning slave can hear this phase at all (the chain
    /// is dormant until a wake-up transition).
    event: Option<EventId>,
    /// When the phase was entered — the instant the naive chain would
    /// have scheduled its first `InqTx` (same-instant ordering proxy).
    entered_at: SimTime,
    /// The phase's first slot pair; later pairs were naively scheduled
    /// one `SLOT_PAIR` before they fire.
    first_pair: SimTime,
    /// Instant the pending `event` fires at (`MAX` while dormant). A
    /// re-aim that lands on the same instant keeps the existing event:
    /// rescheduling would assign a fresh queue sequence number and could
    /// reorder the `InqTx` against other events of that instant.
    aimed_at: SimTime,
}

struct SlaveDev {
    addr: BdAddr,
    #[allow(dead_code)] // kept for FHS payloads and future clock-accurate paging
    clock: NativeClock,
    windows: WindowSchedule,
    machine: ScanMachine,
    freq_rot: u8,
    epoch: u32,
    active: bool,
    halt_when_discovered: bool,
    connected_to: Option<MasterId>,
    /// Whether a live scan-window chain is armed. The skip-ahead
    /// predictor must treat a slave whose chain died (halted after
    /// discovery, connected, deactivated) as deaf forever — its
    /// [`WindowSchedule`] keeps ticking on paper, but no event will ever
    /// reopen a window until a control transition re-arms the chain.
    scanning: bool,
    /// When the pending `WindowOpen` was scheduled — the skip-ahead
    /// scheduler compares this against the instant the naive chain would
    /// have scheduled a same-instant `InqTx` to reproduce the naive
    /// processing order exactly.
    window_armed_at: SimTime,
    /// Start of the window that pending `WindowOpen` will open. A
    /// sleeping machine is deaf before this even if the schedule shows
    /// an earlier window on paper (re-armed chains skip partial windows).
    next_window_start: SimTime,
    /// When the pending `BackoffEnd` was scheduled (ordering proxy, as
    /// for `window_armed_at`).
    backoff_armed_at: SimTime,
}

impl SlaveDev {
    /// The inquiry-sequence position this slave listens on at `now`:
    /// its clock phase walks it one position per 1.28 s.
    fn scan_freq(&self, now: SimTime) -> InquiryFreq {
        let steps = now.elapsed().div_duration(crate::clock::CLKN_12_PERIOD);
        InquiryFreq::new(((self.freq_rot as u64 + steps) % NUM_INQUIRY_FREQS as u64) as u8)
    }
}

/// Per-master slave coverage, one bit per (master, slave) pair packed
/// into `u64` words. Replaces a hashed pair-set: the hot inquiry loop
/// tests and iterates coverage with shifts and `trailing_zeros` instead
/// of per-probe hashing.
#[derive(Default)]
struct RangeMatrix {
    /// `words[m]` is master `m`'s slave bitset, grown on demand.
    words: Vec<Vec<u64>>,
}

impl RangeMatrix {
    fn insert(&mut self, m: usize, sl: usize) {
        if self.words.len() <= m {
            self.words.resize_with(m + 1, Vec::new);
        }
        let row = &mut self.words[m];
        let w = sl / 64;
        if row.len() <= w {
            row.resize(w + 1, 0);
        }
        row[w] |= 1u64 << (sl % 64);
    }

    fn remove(&mut self, m: usize, sl: usize) {
        if let Some(word) = self.words.get_mut(m).and_then(|row| row.get_mut(sl / 64)) {
            *word &= !(1u64 << (sl % 64));
        }
    }

    #[inline]
    fn contains(&self, m: usize, sl: usize) -> bool {
        self.words
            .get(m)
            .and_then(|row| row.get(sl / 64))
            .is_some_and(|&word| word >> (sl % 64) & 1 == 1)
    }

    /// Number of words in master `m`'s row.
    #[inline]
    fn row_words(&self, m: usize) -> usize {
        self.words.get(m).map_or(0, Vec::len)
    }

    /// Word `w` of master `m`'s row (0 when out of bounds).
    #[inline]
    fn word(&self, m: usize, w: usize) -> u64 {
        self.words
            .get(m)
            .and_then(|row| row.get(w))
            .copied()
            .unwrap_or(0)
    }
}

/// In-flight FHS response buckets, keyed by `(master, response offset)`.
///
/// A sorted scratch `Vec` with recycled responder buffers: at most a
/// handful of buckets are live at once (responses resolve within a slot),
/// so binary search over a dense array beats a `HashMap` — and reusing
/// drained responder `Vec`s removes the per-response allocation entirely.
#[derive(Default)]
struct FhsBuckets {
    live: Vec<((usize, u64), Vec<usize>)>,
    spare: Vec<Vec<usize>>,
}

impl FhsBuckets {
    /// Appends `responder` to the bucket for `key`, creating it (from a
    /// recycled buffer when available) if absent. Returns `true` if this
    /// call created the bucket — i.e. the responder is the first.
    fn push(&mut self, key: (usize, u64), responder: usize) -> bool {
        match self.live.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => {
                self.live[i].1.push(responder);
                false
            }
            Err(i) => {
                let mut buf = self.spare.pop().unwrap_or_default();
                buf.push(responder);
                self.live.insert(i, (key, buf));
                true
            }
        }
    }

    /// Removes and returns the bucket for `key`, if any. Return the buffer
    /// via [`recycle`](FhsBuckets::recycle) once drained.
    fn take(&mut self, key: (usize, u64)) -> Option<Vec<usize>> {
        match self.live.binary_search_by(|(k, _)| k.cmp(&key)) {
            Ok(i) => Some(self.live.remove(i).1),
            Err(_) => None,
        }
    }

    /// Returns a drained responder buffer to the reuse pool.
    fn recycle(&mut self, mut buf: Vec<usize>) {
        buf.clear();
        self.spare.push(buf);
    }
}

/// The Bluetooth radio medium: all masters, slaves, links and in-flight
/// responses.
///
/// See the [crate docs](crate) for a runnable example.
pub struct Baseband {
    cfg: MediumConfig,
    masters: Vec<MasterDev>,
    slaves: Vec<SlaveDev>,
    in_range: RangeMatrix,
    fhs_buckets: FhsBuckets,
    discoveries: Vec<Discovery>,
    discovered_pairs: BTreeSet<(usize, usize)>,
    /// Ordered map: [`Baseband::active_slaves`] iterates the keys, so
    /// the order must not depend on a hasher (determinism invariant).
    links: BTreeMap<(usize, usize), Link>,
    notifications: Vec<BbNotification>,
    stats: BbStats,
    started: bool,
    /// Scan rotation shared by all slaves under
    /// [`ScanFreqModel::SharedSequence`], resolved at first slave add.
    shared_rot: Option<u8>,
}

impl std::fmt::Debug for Baseband {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Baseband")
            .field("masters", &self.masters.len())
            .field("slaves", &self.slaves.len())
            .field("links", &self.links.len())
            .field("discoveries", &self.discoveries.len())
            .finish_non_exhaustive()
    }
}

impl Baseband {
    /// An empty medium with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.packet_success` is outside `(0, 1]`.
    pub fn new(cfg: MediumConfig) -> Baseband {
        assert!(
            cfg.packet_success > 0.0 && cfg.packet_success <= 1.0,
            "packet_success {} outside (0, 1]",
            cfg.packet_success
        );
        Baseband {
            cfg,
            masters: Vec::new(),
            slaves: Vec::new(),
            in_range: RangeMatrix::default(),
            fhs_buckets: FhsBuckets::default(),
            discoveries: Vec::new(),
            discovered_pairs: BTreeSet::new(),
            links: BTreeMap::new(),
            notifications: Vec::new(),
            stats: BbStats::default(),
            started: false,
            shared_rot: None,
        }
    }

    /// Adds a master, resolving its random clock phase and start train
    /// from `rng`. Must be called before [`start`](Baseband::start).
    ///
    /// # Panics
    ///
    /// Panics if the medium has already started.
    pub fn add_master(&mut self, cfg: MasterConfig, rng: &mut SimRng) -> MasterId {
        assert!(!self.started, "cannot add devices after start");
        let clock = NativeClock::random(rng);
        // The starting train is a function of the free-running clock
        // (uniform phase → 50/50), matching how real hardware lands on a
        // train; Fixed policies pin it instead.
        let start_train = match cfg.start_train_policy() {
            StartTrain::Random => train_from_clock(&clock, SimTime::ZERO),
            StartTrain::Fixed(t) => t,
        };
        let id = self.masters.len();
        self.masters.push(MasterDev {
            addr: cfg.addr,
            clock,
            plan: PhasePlan::new(cfg.duty_cycle(), SimTime::ZERO),
            inq: InquiryState::new(start_train, cfg.train_policy()),
            start_policy: cfg.start_train_policy(),
            start_train,
            epoch: 0,
            paging: None,
            page_attempt_seq: 0,
            page_queue: VecDeque::new(),
            skip: None,
        });
        MasterId(id)
    }

    /// Adds a slave, resolving its random clock phase, scan-window phase
    /// and starting scan frequency from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the medium has already started.
    pub fn add_slave(&mut self, cfg: SlaveConfig, rng: &mut SimRng) -> SlaveId {
        assert!(!self.started, "cannot add devices after start");
        let start = match self.cfg.scan_freq_model {
            ScanFreqModel::PerDevice => cfg.start_freq_policy().resolve(rng),
            ScanFreqModel::SharedSequence => {
                let rot = *self
                    .shared_rot
                    .get_or_insert_with(|| cfg.start_freq_policy().resolve(rng).index());
                InquiryFreq::new(rot)
            }
        };
        let windows = WindowSchedule::random(cfg.scan_pattern(), rng);
        let id = self.slaves.len();
        self.slaves.push(SlaveDev {
            addr: cfg.addr,
            clock: NativeClock::random(rng),
            windows,
            machine: ScanMachine::new(cfg.scan_pattern(), cfg.backoff_bound()),
            freq_rot: start.index(),
            epoch: 0,
            active: true,
            halt_when_discovered: cfg.halts_when_discovered(),
            connected_to: None,
            scanning: false,
            window_armed_at: SimTime::ZERO,
            next_window_start: SimTime::MAX,
            backoff_armed_at: SimTime::ZERO,
        });
        SlaveId(id)
    }

    /// Number of masters.
    pub fn num_masters(&self) -> usize {
        self.masters.len()
    }

    /// Number of slaves.
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// A master's device address.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not a valid id for this medium.
    pub fn master_addr(&self, m: MasterId) -> BdAddr {
        self.masters[m.0].addr
    }

    /// A slave's device address.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid id for this medium.
    pub fn slave_addr(&self, s: SlaveId) -> BdAddr {
        self.slaves[s.0].addr
    }

    /// The train a master started (or restarts) its inquiry on.
    pub fn master_start_train(&self, m: MasterId) -> Train {
        self.masters[m.0].start_train
    }

    /// The inquiry-sequence position slave `s` listens on at `now`.
    pub fn slave_scan_freq(&self, s: SlaveId, now: SimTime) -> InquiryFreq {
        self.slaves[s.0].scan_freq(now)
    }

    /// Whether the slave currently holds a connection, and to whom.
    pub fn slave_connection(&self, s: SlaveId) -> Option<MasterId> {
        self.slaves[s.0].connected_to
    }

    /// The slaves connected to master `m`, in ascending slave-id order.
    ///
    /// Allocation-free: callers that need a materialized list collect into
    /// their own (reusable) buffer.
    pub fn connected_slaves(&self, m: MasterId) -> impl Iterator<Item = SlaveId> + '_ {
        self.slaves
            .iter()
            .enumerate()
            .filter(move |(_, dev)| dev.connected_to == Some(m))
            .map(|(sl, _)| SlaveId(sl))
    }

    /// Marks `slave` in or out of `master`'s radio coverage. Out-of-range
    /// connected slaves start the supervision clock.
    pub fn set_in_range<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        master: MasterId,
        slave: SlaveId,
        in_range: bool,
    ) {
        let key = (master.0, slave.0);
        if in_range {
            self.in_range.insert(master.0, slave.0);
            if let Some(link) = self.links.get_mut(&key) {
                link.mark_in_range();
            }
            // A new audible slave may precede the chain's current aim.
            self.wake_master(s, master.0);
        } else {
            self.in_range.remove(master.0, slave.0);
            if let Some(link) = self.links.get_mut(&key) {
                link.mark_out_of_range(s.now());
                s.schedule(
                    s.now() + self.cfg.supervision_timeout,
                    BbEvent(Ev::SupervisionCheck {
                        master: master.0,
                        slave: slave.0,
                    }),
                );
            }
        }
    }

    /// True if `slave` is in `master`'s coverage.
    pub fn is_in_range(&self, master: MasterId, slave: SlaveId) -> bool {
        self.in_range.contains(master.0, slave.0)
    }

    /// Switches a slave's radio on or off. Deactivating drops any link
    /// immediately and stops scanning; activating resumes scanning.
    pub fn set_slave_active<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        slave: SlaveId,
        active: bool,
    ) {
        if self.slaves[slave.0].active == active {
            return;
        }
        if active {
            self.slaves[slave.0].active = true;
            if self.started {
                self.restart_slave_scanning(s, slave.0);
            }
        } else {
            if let Some(m) = self.slaves[slave.0].connected_to {
                self.tear_down_link(s.now(), m.0, slave.0);
            }
            let dev = &mut self.slaves[slave.0];
            dev.active = false;
            dev.epoch += 1;
            dev.machine.stop();
            dev.scanning = false;
        }
    }

    /// Queues a page of `slave` by `master`; the page runs during the
    /// master's service phase. No-op if the pair is already linked or the
    /// page is already queued/in flight.
    ///
    /// Note: a master configured with
    /// [`DutyCycle::always_inquiry`](crate::params::DutyCycle::always_inquiry)
    /// has no service phase and therefore never executes queued pages —
    /// give tracking masters a periodic duty cycle.
    pub fn request_page<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        master: MasterId,
        slave: SlaveId,
    ) {
        if self.links.contains_key(&(master.0, slave.0)) {
            return;
        }
        let dev = &mut self.masters[master.0];
        if let Some((attempt, _)) = dev.paging {
            if attempt.slave == slave {
                return;
            }
        }
        if dev.page_queue.contains(&slave) {
            return;
        }
        dev.page_queue.push_back(slave);
        self.maybe_start_page(s, master.0);
    }

    /// Sends `payload` between `master` and `slave` (the slot timing is
    /// symmetric, so one call covers both directions). The bytes cross
    /// the link in DM1 packets — one slot pair per 17 bytes — and are
    /// handed back in the [`BbNotification::DataDelivered`] notification
    /// with the caller's `tag` identifying kind/direction.
    ///
    /// # Errors
    ///
    /// Returns [`NoLinkError`] if the pair is not connected.
    pub fn send_data<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        master: MasterId,
        slave: SlaveId,
        payload: Vec<u8>,
        tag: u64,
    ) -> Result<(), NoLinkError> {
        if !self.links.contains_key(&(master.0, slave.0)) {
            return Err(NoLinkError { master, slave });
        }
        s.schedule(
            s.now() + Link::transfer_time(payload.len()),
            BbEvent(Ev::DataDelivered {
                master: master.0,
                slave: slave.0,
                tag,
                payload,
            }),
        );
        Ok(())
    }

    /// Explicitly tears down a link (e.g. BIPS logout). No-op if absent.
    pub fn disconnect<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        master: MasterId,
        slave: SlaveId,
    ) {
        if self.links.contains_key(&(master.0, slave.0)) {
            self.tear_down_link(s.now(), master.0, slave.0);
            self.restart_slave_scanning(s, slave.0);
            // A freed piconet slot may unblock queued pages.
            self.maybe_start_page(s, master.0);
        }
    }

    /// All first-time discoveries since the last
    /// [`reset_discoveries`](Baseband::reset_discoveries).
    pub fn discoveries(&self) -> &[Discovery] {
        &self.discoveries
    }

    /// Clears the discovery record (e.g. between measurement trials).
    pub fn reset_discoveries(&mut self) {
        self.discoveries.clear();
        self.discovered_pairs.clear();
    }

    /// Medium counters.
    pub fn stats(&self) -> BbStats {
        self.stats
    }

    /// Settles every master's skip-ahead inquiry chain up to `now`,
    /// accounting the provably deaf slot pairs the scheduler jumped over.
    /// Embedding worlds forward [`World::quiesce`](desim::World::quiesce)
    /// here so counters observed at a `run_until` boundary are
    /// bit-identical to the naive slot-ticking chain. No-op when
    /// skip-ahead is disabled.
    pub fn settle(&mut self, now: SimTime) {
        if !self.cfg.skip_ahead {
            return;
        }
        for m in 0..self.masters.len() {
            self.settle_master(m, now);
        }
    }

    /// Exports the medium's counters into `metrics` under the
    /// `baseband.*` prefix (see `docs/OBSERVABILITY.md` for the catalog).
    pub fn export_metrics(&self, metrics: &mut desim::MetricSet) {
        let s = &self.stats;
        metrics.set_counter("baseband.inquiry.ids_transmitted", s.ids_transmitted);
        metrics.set_counter("baseband.inquiry.ids_heard", s.ids_heard);
        metrics.set_counter("baseband.inquiry.backoffs", s.backoffs);
        metrics.set_counter("baseband.inquiry.fhs_transmitted", s.fhs_transmitted);
        metrics.set_counter("baseband.inquiry.fhs_received", s.fhs_received);
        metrics.set_counter("baseband.inquiry.fhs_collisions", s.fhs_collided);
        metrics.set_counter("baseband.inquiry.fhs_missed_phase", s.fhs_missed_phase);
        metrics.set_counter(
            "baseband.inquiry.discoveries",
            self.discoveries.len() as u64,
        );
        metrics.set_counter("baseband.page.started", s.pages_started);
        metrics.set_counter("baseband.page.completed", s.pages_completed);
        metrics.set_counter("baseband.page.failed", s.pages_failed);
        metrics.set_counter("baseband.link.lost", s.links_lost);
        metrics.gauge("baseband.link.active", self.links.len() as f64);
        metrics.set_counter("baseband.data.delivered", s.data_delivered);
    }

    /// Drains accumulated notifications, oldest first.
    pub fn drain_notifications(&mut self) -> Vec<BbNotification> {
        std::mem::take(&mut self.notifications)
    }

    /// Launches every configured device: masters begin their duty cycles,
    /// slaves their scan schedules. Usually invoked by handling
    /// [`BbEvent::start`]; embedders may call it directly from their own
    /// bootstrap.
    pub fn start<S: SubScheduler<BbEvent>>(&mut self, s: &mut S) {
        if self.started {
            return;
        }
        self.started = true;
        // Arm the scan-chain bookkeeping before the masters enter their
        // phases (the skip-ahead predictor reads it), but schedule the
        // actual WindowOpen events *after* — the naive order puts every
        // first InqTx ahead of every WindowOpen, which decides who wins
        // when a window opens exactly on a transmitted slot pair.
        for sl in 0..self.slaves.len() {
            if self.slaves[sl].active {
                self.arm_scan_chain(s.now(), sl);
            }
        }
        for m in 0..self.masters.len() {
            self.enter_phase(s, m);
        }
        for sl in 0..self.slaves.len() {
            if self.slaves[sl].active {
                self.schedule_first_window(s, sl);
            }
        }
    }

    /// Processes one baseband event. Embedders call this with events they
    /// unwrapped from their own event enum.
    pub fn handle<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, event: BbEvent) {
        match event.0 {
            Ev::Start => self.start(s),
            Ev::InqTx {
                master,
                epoch,
                deferred,
            } => self.on_inq_tx(s, master, epoch, deferred),
            Ev::PhaseBoundary { master, epoch } => {
                if self.masters[master].epoch == epoch {
                    self.enter_phase(s, master);
                }
            }
            Ev::WindowOpen {
                slave,
                epoch,
                index,
            } => self.on_window_open(s, slave, epoch, index),
            Ev::WindowClose { slave, epoch } => {
                let dev = &mut self.slaves[slave];
                if dev.epoch == epoch {
                    dev.machine.close_window(s.now());
                }
            }
            Ev::BackoffEnd { slave, epoch } => self.on_backoff_end(s, slave, epoch),
            Ev::FhsRx { master, key } => self.on_fhs_rx(s, master, key),
            Ev::PageResolve {
                master,
                slave,
                attempt,
            } => self.on_page_resolve(s, master, slave, attempt),
            Ev::PageTx { master, attempt } => self.on_page_tx(s, master, attempt),
            Ev::DataDelivered {
                master,
                slave,
                tag,
                payload,
            } => {
                // Deliver only if the link survived the transfer.
                if self.links.contains_key(&(master, slave)) {
                    self.stats.data_delivered += 1;
                    self.notifications.push(BbNotification::DataDelivered {
                        master: MasterId(master),
                        slave: SlaveId(slave),
                        tag,
                        payload,
                        at: s.now(),
                    });
                }
            }
            Ev::SupervisionCheck { master, slave } => {
                let expired = self
                    .links
                    .get(&(master, slave))
                    .map(|l| l.supervision_expired(s.now(), self.cfg.supervision_timeout))
                    .unwrap_or(false);
                if expired {
                    self.tear_down_link(s.now(), master, slave);
                    self.restart_slave_scanning(s, slave);
                    self.maybe_start_page(s, master);
                }
            }
            Ev::Cmd(cmd) => match cmd {
                Command::SetInRange(m, sl, r) => self.set_in_range(s, m, sl, r),
                Command::RequestPage(m, sl) => self.request_page(s, m, sl),
                Command::SendData(m, sl, payload, tag) => {
                    let _ = self.send_data(s, m, sl, payload, tag);
                }
                Command::Disconnect(m, sl) => self.disconnect(s, m, sl),
                Command::SetSlaveActive(sl, a) => self.set_slave_active(s, sl, a),
            },
        }
    }

    // ----- master machinery -------------------------------------------

    /// (Re-)enters the phase in force now and arms the next boundary.
    fn enter_phase<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize) {
        let now = s.now();
        // Close out the ending inquiry phase: account every pair up to
        // the boundary and drop the chain (pairs at or after `now`
        // belong to the next phase and are never transmitted).
        self.settle_master(m, now);
        if let Some(chain) = self.masters[m].skip.take() {
            if let Some(ev) = chain.event {
                s.cancel(ev);
            }
        }
        self.masters[m].epoch += 1;
        let epoch = self.masters[m].epoch;
        let phase = self.masters[m].plan.phase_at(now);
        match phase {
            Phase::Inquiry => {
                // Each inquiry phase picks its train from the free-running
                // clock (spec: the inquiry hop phase is CLKN-driven), so
                // successive short phases do not keep re-covering the same
                // half of the inquiry frequencies. A Fixed policy (used by
                // the Figure 2 setup) pins the train instead.
                let train = match self.masters[m].start_policy {
                    StartTrain::Fixed(t) => t,
                    StartTrain::Random => train_from_clock(&self.masters[m].clock, now),
                };
                self.masters[m].start_train = train;
                self.masters[m].inq.restart(train);
                let first_tx = self.masters[m].clock.next_even_slot(now);
                if self.cfg.skip_ahead {
                    // The first pair is scheduled eagerly, from the same
                    // handler position as the naive chain, so it carries
                    // the naive sequence number and wins or loses
                    // same-instant ties identically (wakes between now
                    // and `first_tx` re-aim to the same instant and must
                    // not replace this event). The solver takes over
                    // once it fires.
                    let id = s.schedule(
                        first_tx,
                        BbEvent(Ev::InqTx {
                            master: m,
                            epoch,
                            deferred: false,
                        }),
                    );
                    self.masters[m].skip = Some(SkipChain {
                        from: first_tx,
                        event: Some(id),
                        entered_at: now,
                        first_pair: first_tx,
                        aimed_at: first_tx,
                    });
                } else {
                    s.schedule(
                        first_tx,
                        BbEvent(Ev::InqTx {
                            master: m,
                            epoch,
                            deferred: false,
                        }),
                    );
                }
            }
            Phase::Service => {
                self.maybe_start_page(s, m);
            }
        }
        if let Some((at, _next)) = self.masters[m].plan.next_boundary(now) {
            s.schedule(at, BbEvent(Ev::PhaseBoundary { master: m, epoch }));
        }
    }

    fn on_inq_tx<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        m: usize,
        epoch: u32,
        deferred: bool,
    ) {
        if self.masters[m].epoch != epoch {
            return;
        }
        let now = s.now();
        if self.masters[m].plan.phase_at(now) != Phase::Inquiry {
            return; // phase boundary will restart the chain
        }
        if self.cfg.skip_ahead {
            // This is the chain's own event; its id is spent.
            if let Some(chain) = self.masters[m].skip.as_mut() {
                chain.event = None;
                chain.aimed_at = SimTime::MAX;
            }
            if self.should_defer(m, now, deferred) {
                let id = s.schedule(
                    now,
                    BbEvent(Ev::InqTx {
                        master: m,
                        epoch,
                        deferred: true,
                    }),
                );
                if let Some(chain) = self.masters[m].skip.as_mut() {
                    chain.event = Some(id);
                    chain.aimed_at = now;
                }
                return;
            }
            // Account the provably deaf pairs the chain jumped over.
            self.settle_master(m, now);
        }
        let plan = self.masters[m].inq.plan();
        self.stats.ids_transmitted += 2;
        self.transmit_id(s, m, plan.first, now);
        self.transmit_id(s, m, plan.second, now + TICK);
        self.masters[m].inq.advance();
        if self.cfg.skip_ahead {
            if let Some(chain) = self.masters[m].skip.as_mut() {
                chain.from = now + SLOT_PAIR;
            }
            self.rearm_inquiry(s, m);
        } else {
            s.schedule(
                now + SLOT_PAIR,
                BbEvent(Ev::InqTx {
                    master: m,
                    epoch,
                    deferred: false,
                }),
            );
        }
    }

    /// The instant the naive chain would have scheduled master `m`'s
    /// `InqTx` for pair `now`: during the previous pair, or at phase
    /// entry for the phase's first pair.
    fn naive_arm_instant(&self, m: usize, now: SimTime) -> SimTime {
        let chain = self.masters[m].skip.as_ref().expect("chain present");
        if now == chain.first_pair {
            chain.entered_at
        } else {
            now - SLOT_PAIR
        }
    }

    /// Whether the skip-ahead `InqTx` firing at `now` must requeue itself
    /// behind the other events of this instant to reproduce the naive
    /// processing order.
    ///
    /// The naive chain scheduled the `InqTx` for pair `now` while
    /// processing the previous pair (or at phase entry, for the first
    /// pair), so a `WindowOpen` or `BackoffEnd` landing at the same
    /// instant runs *first* exactly when it was armed before that — and
    /// whichever runs first decides whether the slave hears this pair.
    /// The skip-ahead event was scheduled at an arbitrary earlier re-aim,
    /// so when such a tie exists it defers once; the requeued copy runs
    /// after every event already queued at `now`. A requeued copy
    /// (`deferred`) skips these one-shot checks but still yields to
    /// naive-earlier sibling masters sharing the instant, so coincident
    /// chains fire in naive precedence order (see below).
    fn should_defer(&self, m: usize, now: SimTime, deferred: bool) -> bool {
        if self.masters[m].skip.is_none() {
            return false;
        }
        // Sibling masters whose chains are pending at this same instant:
        // the naive order is by arm instant, and on a tie (coincident
        // slot grids arm both during the previous shared pair, all the
        // way back) by phase-entry instant, then master index. Yielding
        // re-checks on every requeue; the minimal sibling never yields,
        // so each pass fires at least one chain and the recursion
        // terminates.
        let key = (
            self.naive_arm_instant(m, now),
            self.masters[m]
                .skip
                .as_ref()
                .expect("chain present")
                .entered_at,
            m,
        );
        for other in 0..self.masters.len() {
            if other == m {
                continue;
            }
            let Some(chain) = self.masters[other].skip.as_ref() else {
                continue;
            };
            if chain.event.is_none() || chain.aimed_at != now {
                continue;
            }
            if (self.naive_arm_instant(other, now), chain.entered_at, other) < key {
                return true;
            }
        }
        if deferred {
            return false;
        }
        let naive_sched = key.0;
        for w in 0..self.in_range.row_words(m) {
            let mut bits = self.in_range.word(m, w);
            while bits != 0 {
                let sl = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let dev = &self.slaves[sl];
                if !dev.active || dev.connected_to.is_some() || !dev.scanning {
                    continue;
                }
                if dev.next_window_start == now && dev.window_armed_at < naive_sched {
                    return true;
                }
                if matches!(dev.machine.phase(), ScanPhase::Backoff { until } if until == now)
                    && dev.backoff_armed_at < naive_sched
                {
                    return true;
                }
            }
        }
        false
    }

    /// Accounts every pending slot pair strictly before `up_to` on master
    /// `m`'s inquiry chain, in closed form. Pairs settled this way were
    /// proven deaf by the predictor (or precede a phase boundary), so the
    /// naive chain would have transmitted into silence: only
    /// `ids_transmitted` and the train walker advance, with no RNG draws.
    fn settle_master(&mut self, m: usize, up_to: SimTime) {
        let dev = &mut self.masters[m];
        let Some(chain) = dev.skip.as_mut() else {
            return;
        };
        if up_to <= chain.from {
            return;
        }
        let span = up_to - chain.from;
        let mut n = span.div_duration(SLOT_PAIR);
        if !(span % SLOT_PAIR).is_zero() {
            n += 1;
        }
        chain.from += SLOT_PAIR * n;
        dev.inq.advance_by(n);
        self.stats.ids_transmitted += 2 * n;
    }

    /// Re-aims master `m`'s inquiry chain: predicts the earliest pending
    /// slot pair any in-range, active, unconnected, scanning slave could
    /// hear and schedules the next `InqTx` there — or leaves the chain
    /// dormant when no such pair exists before the phase boundary.
    ///
    /// Requires `skip` to be `Some` with `from` settled past `now`.
    fn rearm_inquiry<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize) {
        let Some(chain) = self.masters[m].skip.as_ref() else {
            return;
        };
        let from = chain.from;
        let armed = chain.event.is_some();
        let aimed_at = chain.aimed_at;
        let bound = self.masters[m]
            .plan
            .next_boundary(s.now())
            .map_or(SimTime::MAX, |(t, _)| t);
        let mut target = bound;
        for w in 0..self.in_range.row_words(m) {
            let mut bits = self.in_range.word(m, w);
            while bits != 0 {
                let sl = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let dev = &self.slaves[sl];
                if !dev.active || dev.connected_to.is_some() || !dev.scanning {
                    continue;
                }
                target = target.min(self.slave_next_audible(m, sl, from, target));
            }
        }
        if armed && target >= aimed_at {
            // Never move an armed aim later (and keep an unchanged aim):
            // the pending event keeps its queue sequence number, which
            // same-instant ordering depends on. Firing at a pair the
            // predictor now considers deaf is a harmless false alarm —
            // the handler re-runs the exact audibility gates — but
            // cancelling and rescheduling at the same instant would
            // reorder the InqTx behind events queued in between.
            return;
        }
        let epoch = self.masters[m].epoch;
        let chain = self.masters[m].skip.as_mut().expect("chain present");
        if let Some(ev) = chain.event.take() {
            s.cancel(ev);
        }
        if target < bound {
            let id = s.schedule(
                target,
                BbEvent(Ev::InqTx {
                    master: m,
                    epoch,
                    deferred: false,
                }),
            );
            chain.event = Some(id);
            chain.aimed_at = target;
        } else {
            chain.aimed_at = SimTime::MAX;
        }
    }

    /// Re-aims every in-range master other than `tx_master` after slave
    /// `sl` entered a response backoff. The backoff *ends* in open-ended
    /// inquiry listening, which can make the slave receptive to another
    /// master earlier than that master's schedule-derived prediction —
    /// the transmitting master itself re-aims at the end of its own
    /// `on_inq_tx`.
    fn wake_other_masters<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        tx_master: usize,
        sl: usize,
    ) {
        if !self.cfg.skip_ahead {
            return;
        }
        for m in 0..self.masters.len() {
            if m != tx_master && self.in_range.contains(m, sl) {
                self.wake_master(s, m);
            }
        }
    }

    /// An audibility-increasing transition happened: settle master `m`'s
    /// chain to `now` and re-aim it. No-op for masters outside an inquiry
    /// phase (or with skip-ahead disabled).
    fn wake_master<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize) {
        if self.masters[m].skip.is_none() {
            return;
        }
        self.settle_master(m, s.now());
        self.rearm_inquiry(s, m);
    }

    /// The earliest slot pair on master `m`'s grid (`from + j·SLOT_PAIR`,
    /// strictly before `bound`) at which slave `sl` could hear one of the
    /// pair's two ID half-slots; `bound` (or later) if none exists.
    ///
    /// Conservative, never late: every pair strictly before the returned
    /// instant is provably deaf for this slave, but the returned pair is
    /// allowed to be a false alarm (straddling a scan-frequency block
    /// boundary, or a window that closed again) — the fired event re-runs
    /// the exact audibility gates, so a false alarm only costs one event.
    ///
    /// Requires `m`'s train walker to be settled to the pair at `from`.
    fn slave_next_audible(&self, m: usize, sl: usize, from: SimTime, bound: SimTime) -> SimTime {
        /// Bounds the work per query; on exhaustion the current pair is
        /// returned as a conservative wake-up.
        const SOLVER_CAP: usize = 64;
        let dev = &self.slaves[sl];
        let mut t = from;
        for _ in 0..SOLVER_CAP {
            if t >= bound {
                return bound;
            }
            // Deaf spans with a known end (sleep between windows, backoff)
            // are jumped in one step: resume at the first pair whose
            // second half-slot reaches the receptive instant.
            let r = dev
                .machine
                .next_receptive_after(t, &dev.windows, dev.next_window_start);
            if r == SimTime::MAX {
                return bound;
            }
            if r > t + TICK {
                let gap = (r - TICK) - t;
                let mut j = gap.div_duration(SLOT_PAIR);
                if !(gap % SLOT_PAIR).is_zero() {
                    j += 1;
                }
                t += SLOT_PAIR * j;
                continue;
            }
            // The scan frequency is constant within the current absolute
            // 1.28 s block; ask the train walker for the first pair that
            // covers it.
            let block_end =
                SimTime::ZERO + CLKN_12_PERIOD * (t.elapsed().div_duration(CLKN_12_PERIOD) + 1);
            let phi = dev.scan_freq(t);
            let j0 = (t - from).div_duration(SLOT_PAIR);
            let mut walker = self.masters[m].inq;
            walker.advance_by(j0);
            let candidate = walker
                .pairs_until_freq(phi)
                .map(|d| t + SLOT_PAIR * d)
                .filter(|&tc| {
                    // The audible half-slot must still be inside the
                    // block: second half-slot when the frequency sits at
                    // an odd train offset.
                    let tick = if phi.index() % 2 == 1 {
                        TICK
                    } else {
                        SimDuration::ZERO
                    };
                    tc + tick < block_end
                });
            // First pair whose pair-span touches the next block; its two
            // half-slots see different scan frequencies, so it is woken
            // conservatively rather than solved.
            let straddle = {
                let gap = (block_end - TICK).saturating_since(t);
                let mut j = gap.div_duration(SLOT_PAIR);
                if !(gap % SLOT_PAIR).is_zero() {
                    j += 1;
                }
                t + SLOT_PAIR * j
            };
            match candidate {
                Some(tc) if tc <= straddle => return tc.min(bound),
                _ if straddle < block_end => return straddle.min(bound),
                _ => t = straddle, // lands in the next block; re-solve
            }
        }
        t.min(bound)
    }

    /// Delivers one ID packet to every slave that can hear it.
    fn transmit_id<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        m: usize,
        freq: InquiryFreq,
        at: SimTime,
    ) {
        // Walk only the slaves in this master's coverage bitset, ascending
        // (same probe order — and therefore RNG draw order — as a linear
        // scan over all slaves).
        for w in 0..self.in_range.row_words(m) {
            let mut bits = self.in_range.word(m, w);
            while bits != 0 {
                let sl = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let dev = &self.slaves[sl];
                if !dev.active || dev.connected_to.is_some() {
                    continue;
                }
                if !dev.machine.hears_inquiry(at) || dev.scan_freq(at) != freq {
                    continue;
                }
                // Channel errors: the paper assumes an error-free environment;
                // packet_success < 1 models a lossy cell edge.
                if self.cfg.packet_success < 1.0 && !s.rng().chance(self.cfg.packet_success) {
                    continue;
                }
                self.stats.ids_heard += 1;
                let action = {
                    let dev = &mut self.slaves[sl];
                    dev.machine.hear_id(at, s.rng())
                };
                let epoch = self.slaves[sl].epoch;
                match action {
                    ScanAction::StartBackoff(until) => {
                        self.stats.backoffs += 1;
                        self.slaves[sl].backoff_armed_at = s.now();
                        s.schedule(until, BbEvent(Ev::BackoffEnd { slave: sl, epoch }));
                        self.wake_other_masters(s, m, sl);
                    }
                    ScanAction::Respond {
                        at: tx,
                        backoff_until,
                    } => {
                        self.stats.fhs_transmitted += 1;
                        let key = tx.elapsed().div_duration(SimDuration::from_units_0125us(1));
                        if self.fhs_buckets.push((m, key), sl) {
                            s.schedule(tx, BbEvent(Ev::FhsRx { master: m, key }));
                        }
                        self.slaves[sl].backoff_armed_at = s.now();
                        s.schedule(backoff_until, BbEvent(Ev::BackoffEnd { slave: sl, epoch }));
                        self.wake_other_masters(s, m, sl);
                    }
                    ScanAction::None => {}
                }
            }
        }
    }

    fn on_fhs_rx<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize, key: u64) {
        let Some(mut responders) = self.fhs_buckets.take((m, key)) else {
            return;
        };
        let now = s.now();
        if self.masters[m].plan.phase_at(now) != Phase::Inquiry {
            self.stats.fhs_missed_phase += responders.len() as u64;
            self.fhs_buckets.recycle(responders);
            return;
        }
        // Channel errors corrupt individual FHS packets; the survivors
        // then contend for the receive window.
        if self.cfg.packet_success < 1.0 {
            let p = self.cfg.packet_success;
            responders.retain(|_| s.rng().chance(p));
        }
        if self.cfg.fhs_collisions && responders.len() > 1 {
            self.stats.fhs_collided += responders.len() as u64;
            self.notifications.push(BbNotification::FhsCollision {
                master: MasterId(m),
                slaves: responders.iter().map(|&sl| SlaveId(sl)).collect(),
                at: now,
            });
            self.fhs_buckets.recycle(responders);
            return;
        }
        for &sl in &responders {
            self.stats.fhs_received += 1;
            self.notifications.push(BbNotification::FhsSeen {
                master: MasterId(m),
                slave: SlaveId(sl),
                at: now,
            });
            if self.discovered_pairs.insert((m, sl)) {
                let d = Discovery {
                    master: MasterId(m),
                    slave: SlaveId(sl),
                    at: now,
                };
                self.discoveries.push(d);
                self.notifications.push(BbNotification::Discovered(d));
            }
            if self.slaves[sl].halt_when_discovered {
                // The handheld proceeds to page scan / enrollment and
                // stops answering inquiries.
                let dev = &mut self.slaves[sl];
                dev.epoch += 1;
                dev.machine.stop();
                dev.scanning = false;
            }
        }
        self.fhs_buckets.recycle(responders);
    }

    fn maybe_start_page<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize) {
        let now = s.now();
        if self.masters[m].paging.is_some() {
            return;
        }
        if self.masters[m].plan.phase_at(now) != Phase::Service {
            return;
        }
        // Piconet capacity: at most 7 active slaves. Further pages wait
        // in the queue until a link is released.
        if self.active_slaves(m) >= MAX_ACTIVE_SLAVES {
            return;
        }
        let Some(target) = self.masters[m].page_queue.pop_front() else {
            return;
        };
        self.stats.pages_started += 1;
        self.masters[m].page_attempt_seq += 1;
        let seq = self.masters[m].page_attempt_seq;
        let attempt = PageAttempt::new(MasterId(m), target, now, self.cfg.page_timeout);
        self.masters[m].paging = Some((attempt, seq));
        match self.cfg.page_model {
            PageModel::Analytic => self.schedule_page_resolve(s, m, target.0, seq, now),
            PageModel::SlotAccurate => {
                // Transmit page IDs from the next even slot; also arm the
                // timeout via a resolve at the deadline.
                let first = self.masters[m].clock.next_even_slot(now);
                s.schedule(
                    first,
                    BbEvent(Ev::PageTx {
                        master: m,
                        attempt: seq,
                    }),
                );
                s.schedule(
                    attempt.deadline,
                    BbEvent(Ev::PageResolve {
                        master: m,
                        slave: target.0,
                        attempt: seq,
                    }),
                );
            }
        }
    }

    /// Slot-accurate paging: one even-slot page-ID transmission aimed at
    /// the paged slave's current page frequency (known from the FHS
    /// clock). If the slave is actually listening in a page-scan window,
    /// the handshake completes a few slots later.
    fn on_page_tx<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, m: usize, seq: u32) {
        let now = s.now();
        let Some((attempt, cur_seq)) = self.masters[m].paging else {
            return;
        };
        if cur_seq != seq {
            return;
        }
        if attempt.expired(now) {
            return; // the deadline resolve will clean up
        }
        if self.masters[m].plan.phase_at(now) != Phase::Service {
            // Paging pauses during inquiry; retry at the next service
            // phase.
            if let Some((t, _)) = self.masters[m].plan.next_boundary(now) {
                s.schedule(
                    t.min(attempt.deadline),
                    BbEvent(Ev::PageTx {
                        master: m,
                        attempt: seq,
                    }),
                );
            }
            return;
        }
        let sl = attempt.slave.index();
        let reachable = self.in_range.contains(m, sl)
            && self.slaves[sl].active
            && self.slaves[sl].connected_to.is_none();
        if reachable && self.slaves[sl].machine.hears_page(now) {
            // Channel errors apply to the page exchange as a whole.
            if self.cfg.packet_success >= 1.0 || s.rng().chance(self.cfg.packet_success) {
                // ID → slave ID response → FHS → ack → POLL: complete in
                // a handshake, checked again at the completion instant by
                // the resolve path.
                self.masters[m].paging = Some((attempt, seq));
                s.schedule(
                    (now + crate::page::PAGE_HANDSHAKE).min(attempt.deadline),
                    BbEvent(Ev::PageResolve {
                        master: m,
                        slave: sl,
                        attempt: seq,
                    }),
                );
                return; // stop transmitting; resolve finishes the job
            }
        }
        // Keep paging every even slot.
        s.schedule(
            (now + SLOT_PAIR).min(attempt.deadline),
            BbEvent(Ev::PageTx {
                master: m,
                attempt: seq,
            }),
        );
    }

    fn schedule_page_resolve<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        m: usize,
        sl: usize,
        seq: u32,
        from: SimTime,
    ) {
        let (attempt, _) = self.masters[m].paging.expect("paging in progress");
        let done = completion_time(from, &self.slaves[sl].windows);
        let at = if done == SimTime::MAX {
            attempt.deadline
        } else {
            done.min(attempt.deadline)
        };
        // The resolve instant may coincide with `from`; events at the
        // current instant run after the current handler, which is fine.
        let at = at.max(s.now());
        s.schedule(
            at,
            BbEvent(Ev::PageResolve {
                master: m,
                slave: sl,
                attempt: seq,
            }),
        );
    }

    fn on_page_resolve<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        m: usize,
        sl: usize,
        seq: u32,
    ) {
        let now = s.now();
        let Some((attempt, cur_seq)) = self.masters[m].paging else {
            return;
        };
        if cur_seq != seq || attempt.slave.0 != sl {
            return;
        }
        let dev = &self.slaves[sl];
        let reachable = self.in_range.contains(m, sl)
            && dev.active
            && dev.connected_to.is_none()
            && self.masters[m].plan.phase_at(now) == Phase::Service;
        // Expiry wins over reachability: a resolve that only fires at the
        // deadline (e.g. a slave with no page-scan windows) must fail, not
        // connect.
        if attempt.expired(now) {
            self.masters[m].paging = None;
            self.stats.pages_failed += 1;
            self.notifications.push(BbNotification::PageFailed {
                master: MasterId(m),
                slave: SlaveId(sl),
                at: now,
            });
            self.maybe_start_page(s, m);
        } else if reachable {
            self.masters[m].paging = None;
            self.stats.pages_completed += 1;
            self.links
                .insert((m, sl), Link::new(MasterId(m), SlaveId(sl), now));
            let dev = &mut self.slaves[sl];
            dev.connected_to = Some(MasterId(m));
            dev.epoch += 1; // kill pending scan events
            dev.machine.stop();
            dev.scanning = false;
            self.notifications.push(BbNotification::LinkEstablished {
                master: MasterId(m),
                slave: SlaveId(sl),
                at: now,
            });
            self.maybe_start_page(s, m);
        } else {
            match self.cfg.page_model {
                PageModel::Analytic => {
                    // Retry at the next opportunity: either the next
                    // page-scan window or the next service phase,
                    // whichever is later.
                    let next_service = match self.masters[m].plan.phase_at(now) {
                        Phase::Service => now,
                        Phase::Inquiry => self.masters[m]
                            .plan
                            .next_boundary(now)
                            .map(|(t, _)| t)
                            .unwrap_or(attempt.deadline),
                    };
                    let from = next_service.max(now + SLOT_PAIR);
                    self.schedule_page_resolve(s, m, sl, seq, from);
                }
                PageModel::SlotAccurate => {
                    // The transmit chain keeps trying on its own; nothing
                    // to re-arm here unless it has gone quiet (handshake
                    // failed the reachability re-check).
                    s.schedule(
                        (now + SLOT_PAIR).min(attempt.deadline),
                        BbEvent(Ev::PageTx {
                            master: m,
                            attempt: seq,
                        }),
                    );
                }
            }
        }
    }

    // ----- slave machinery --------------------------------------------

    /// Arms a (re)starting scan chain's bookkeeping: resolves the first
    /// window at or after `now` and records it for the skip-ahead
    /// predictor. The matching `WindowOpen` is scheduled separately by
    /// [`schedule_first_window`] so callers can control event order.
    fn arm_scan_chain(&mut self, now: SimTime, sl: usize) {
        let dev = &mut self.slaves[sl];
        let idx = dev.windows.first_window_at_or_after(now);
        dev.scanning = true;
        dev.window_armed_at = now;
        dev.next_window_start = dev.windows.window_start(idx);
    }

    /// Schedules the `WindowOpen` for the chain most recently armed by
    /// [`arm_scan_chain`].
    fn schedule_first_window<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, sl: usize) {
        let dev = &self.slaves[sl];
        let idx = dev.windows.first_window_at_or_after(s.now());
        let epoch = dev.epoch;
        s.schedule(
            dev.next_window_start,
            BbEvent(Ev::WindowOpen {
                slave: sl,
                epoch,
                index: idx,
            }),
        );
    }

    fn on_window_open<S: SubScheduler<BbEvent>>(
        &mut self,
        s: &mut S,
        sl: usize,
        epoch: u32,
        index: u64,
    ) {
        let now = s.now();
        let dev = &mut self.slaves[sl];
        if dev.epoch != epoch || !dev.active || dev.connected_to.is_some() {
            return;
        }
        let kind = dev.windows.window_kind(index);
        let close = now + dev.windows.pattern().window();
        dev.machine.open_window(now, kind, close);
        s.schedule(close, BbEvent(Ev::WindowClose { slave: sl, epoch }));
        let next_at = dev.windows.window_start(index + 1);
        dev.window_armed_at = now;
        dev.next_window_start = next_at;
        s.schedule(
            next_at,
            BbEvent(Ev::WindowOpen {
                slave: sl,
                epoch,
                index: index + 1,
            }),
        );
    }

    fn on_backoff_end<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, sl: usize, epoch: u32) {
        let now = s.now();
        let dev = &mut self.slaves[sl];
        if dev.epoch != epoch || !dev.active || dev.connected_to.is_some() {
            return;
        }
        // Post-backoff listen: the slave awaits the next inquiry message
        // (spec: it returns to the inquiry scan substate). The listen is
        // open-ended; the next *regular* window boundary re-asserts the
        // scheduled kind, so a periodic scanner reverts to its timetable
        // at most one interval later.
        dev.machine.end_backoff(now, SimTime::MAX);
    }

    fn restart_slave_scanning<S: SubScheduler<BbEvent>>(&mut self, s: &mut S, sl: usize) {
        let dev = &mut self.slaves[sl];
        dev.connected_to = None;
        dev.epoch += 1;
        dev.machine.stop();
        dev.scanning = false;
        if dev.active && self.started {
            // Re-aim every inquiring master *between* arming the chain
            // bookkeeping and scheduling the WindowOpen: audibility just
            // increased, and a chain InqTx landing exactly on the first
            // window's open instant must keep the naive order (InqTx
            // first, window still shut).
            self.arm_scan_chain(s.now(), sl);
            for m in 0..self.masters.len() {
                self.wake_master(s, m);
            }
            self.schedule_first_window(s, sl);
        }
    }

    /// Number of active (connected) slaves in master `m`'s piconet.
    fn active_slaves(&self, m: usize) -> usize {
        self.links.keys().filter(|&&(mi, _)| mi == m).count()
    }

    fn tear_down_link(&mut self, now: SimTime, m: usize, sl: usize) {
        if self.links.remove(&(m, sl)).is_some() {
            self.stats.links_lost += 1;
            self.slaves[sl].connected_to = None;
            self.notifications.push(BbNotification::LinkLost {
                master: MasterId(m),
                slave: SlaveId(sl),
                at: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DutyCycle, ScanPattern, TrainPolicy};
    use desim::{Context, Engine, World};

    struct TestWorld {
        bb: Baseband,
    }

    impl World for TestWorld {
        type Event = BbEvent;
        fn handle(&mut self, ctx: &mut Context<BbEvent>, ev: BbEvent) {
            self.bb.handle(ctx, ev);
        }
        fn quiesce(&mut self, ctx: &mut Context<BbEvent>) {
            self.bb.settle(ctx.now());
        }
    }

    /// One master / `n` slaves; range is applied separately.
    fn setup(
        seed: u64,
        mcfg: MasterConfig,
        slave_cfgs: Vec<SlaveConfig>,
        medium: MediumConfig,
    ) -> Engine<TestWorld> {
        let mut bb = Baseband::new(medium);
        let mut rng = desim::SeedDeriver::new(seed).rng(0);
        bb.add_master(mcfg, &mut rng);
        for c in slave_cfgs {
            bb.add_slave(c, &mut rng);
        }
        let mut engine = Engine::new(TestWorld { bb }, seed);
        engine.schedule(SimTime::ZERO, BbEvent::start());
        engine
    }

    fn all_in_range(engine: &mut Engine<TestWorld>) {
        // Nothing is linked before the run, so mutating the range set
        // directly (same module) is equivalent to the command events.
        let n_m = engine.world().bb.num_masters();
        let n_s = engine.world().bb.num_slaves();
        for m in 0..n_m {
            for s in 0..n_s {
                engine.world_mut().bb.in_range.insert(m, s);
            }
        }
    }

    fn continuous_slave(i: u64) -> SlaveConfig {
        SlaveConfig::new(BdAddr::new(0x1000 + i)).scan(ScanPattern::continuous_inquiry())
    }

    #[test]
    fn single_slave_is_discovered_quickly_when_always_inquiring() {
        let mcfg = MasterConfig::new(BdAddr::new(1))
            .duty(DutyCycle::always_inquiry())
            .trains(TrainPolicy::spec());
        let mut e = setup(11, mcfg, vec![continuous_slave(1)], MediumConfig::default());
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(11));
        let d = e.world().bb.discoveries();
        assert_eq!(d.len(), 1, "one slave, one discovery");
        // Continuous scan + always-inquiry: both trains are covered within
        // 2×2.56 s, so discovery lands well within 6 s.
        assert!(d[0].at < SimTime::from_secs(6), "discovery at {}", d[0].at);
    }

    #[test]
    fn discovery_requires_range() {
        let mcfg = MasterConfig::new(BdAddr::new(1));
        let mut e = setup(12, mcfg, vec![continuous_slave(1)], MediumConfig::default());
        // never put in range
        e.run_until(SimTime::from_secs(12));
        assert!(e.world().bb.discoveries().is_empty());
        assert_eq!(e.world().bb.stats().ids_heard, 0);
    }

    #[test]
    fn many_slaves_all_discovered_under_continuous_inquiry() {
        let mcfg = MasterConfig::new(BdAddr::new(1));
        let slaves: Vec<SlaveConfig> = (0..10).map(continuous_slave).collect();
        let mut e = setup(13, mcfg, slaves, MediumConfig::default());
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(30));
        assert_eq!(e.world().bb.discoveries().len(), 10);
        let st = e.world().bb.stats();
        assert!(st.fhs_transmitted >= 10);
        assert!(st.ids_transmitted > 1000);
    }

    #[test]
    fn collisions_are_counted_and_destroy_responses() {
        // Many slaves forced onto the SAME scan frequency and zero
        // backoff bound: every response collides forever.
        let mcfg = MasterConfig::new(BdAddr::new(1))
            .trains(TrainPolicy::Single)
            .start_train(crate::params::StartTrain::Fixed(Train::A));
        let slaves: Vec<SlaveConfig> = (0..4)
            .map(|i| {
                SlaveConfig::new(BdAddr::new(0x2000 + i))
                    .scan(ScanPattern::continuous_inquiry())
                    .start_freq(crate::params::StartFreq::Fixed(InquiryFreq::new(0)))
                    .backoff_max_slots(0)
            })
            .collect();
        let mut e = setup(14, mcfg, slaves, MediumConfig::default());
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(5));
        let st = e.world().bb.stats();
        assert_eq!(e.world().bb.discoveries().len(), 0, "all collide");
        assert!(st.fhs_collided > 0);
        assert_eq!(st.fhs_received, 0);
    }

    #[test]
    fn disabling_collisions_restores_bluehoc_optimism() {
        let mcfg = MasterConfig::new(BdAddr::new(1))
            .trains(TrainPolicy::Single)
            .start_train(crate::params::StartTrain::Fixed(Train::A));
        let slaves: Vec<SlaveConfig> = (0..4)
            .map(|i| {
                SlaveConfig::new(BdAddr::new(0x2000 + i))
                    .scan(ScanPattern::continuous_inquiry())
                    .start_freq(crate::params::StartFreq::Fixed(InquiryFreq::new(0)))
                    .backoff_max_slots(0)
            })
            .collect();
        let medium = MediumConfig {
            fhs_collisions: false,
            ..MediumConfig::default()
        };
        let mut e = setup(14, mcfg, slaves, medium);
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(5));
        assert_eq!(e.world().bb.discoveries().len(), 4);
    }

    #[test]
    fn duty_cycle_blocks_discovery_outside_inquiry_phase() {
        // 1 s inquiry / 100 s period: a slave whose first scan window
        // opens after t=1 s cannot be discovered in the first cycle
        // because the master stops transmitting IDs.
        let mcfg = MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
            SimDuration::from_secs(1),
            SimDuration::from_secs(100),
        ));
        let slaves: Vec<SlaveConfig> = (0..8).map(continuous_slave).collect();
        let mut e = setup(15, mcfg, slaves, MediumConfig::default());
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(99));
        for d in e.world().bb.discoveries() {
            assert!(
                d.at <= SimTime::from_millis(1700),
                "discovery after phase end: {}",
                d.at
            );
        }
        let ids_at_1s = e.world().bb.stats().ids_transmitted;
        // 1 s of inquiry = 800 slot pairs = 1600 IDs (±1 pair).
        assert!((1590..=1602).contains(&ids_at_1s), "{ids_at_1s}");
    }

    #[test]
    fn page_establishes_link_and_data_flows() {
        // 50 % inquiry duty finds the alternating slave quickly and still
        // leaves service phases for the page to run in.
        let mcfg = MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
            SimDuration::from_secs(2),
            SimDuration::from_secs(4),
        ));
        let slave = SlaveConfig::new(BdAddr::new(0x99)).scan(ScanPattern::alternating());
        let mut e = setup(16, mcfg, vec![slave], MediumConfig::default());
        all_in_range(&mut e);
        let (m, s) = (MasterId::new(0), SlaveId::new(0));
        // Let discovery happen, then script a page and a data exchange.
        e.run_until(SimTime::from_secs(20));
        assert_eq!(e.world().bb.discoveries().len(), 1);
        e.schedule(SimTime::from_secs(20), BbEvent::request_page(m, s));
        e.run_until(SimTime::from_secs(40));
        let notes = e.world_mut().bb.drain_notifications();
        assert!(
            notes
                .iter()
                .any(|n| matches!(n, BbNotification::LinkEstablished { .. })),
            "no link established: {notes:?}"
        );
        assert_eq!(e.world().bb.slave_connection(s), Some(m));
        assert_eq!(
            e.world().bb.connected_slaves(m).collect::<Vec<_>>(),
            vec![s]
        );
        e.schedule(
            SimTime::from_secs(40),
            BbEvent::send_data(m, s, vec![9u8; 64], 7),
        );
        e.run_until(SimTime::from_secs(41));
        let notes = e.world_mut().bb.drain_notifications();
        assert!(notes.iter().any(
            |n| matches!(n, BbNotification::DataDelivered { tag: 7, payload, .. } if payload.len() == 64)
        ));
        assert_eq!(e.world().bb.stats().data_delivered, 1);
    }

    #[test]
    fn out_of_range_trips_supervision_and_slave_rescans() {
        let mcfg = MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
            SimDuration::from_secs(2),
            SimDuration::from_secs(4),
        ));
        let slave = SlaveConfig::new(BdAddr::new(0x99)).scan(ScanPattern::alternating());
        let mut e = setup(17, mcfg, vec![slave], MediumConfig::default());
        all_in_range(&mut e);
        let (m, s) = (MasterId::new(0), SlaveId::new(0));
        e.schedule(SimTime::from_secs(15), BbEvent::request_page(m, s));
        e.run_until(SimTime::from_secs(30));
        assert_eq!(e.world().bb.slave_connection(s), Some(m));
        // Walk away.
        e.schedule(SimTime::from_secs(30), BbEvent::set_in_range(m, s, false));
        e.run_until(SimTime::from_secs(40));
        let notes = e.world_mut().bb.drain_notifications();
        assert!(
            notes
                .iter()
                .any(|n| matches!(n, BbNotification::LinkLost { .. })),
            "{notes:?}"
        );
        assert_eq!(e.world().bb.slave_connection(s), None);
        // Walk back: the slave is scanning again and can be rediscovered.
        e.schedule(SimTime::from_secs(40), BbEvent::set_in_range(m, s, true));
        e.world_mut().bb.reset_discoveries();
        e.run_until(SimTime::from_secs(70));
        assert_eq!(
            e.world().bb.discoveries().len(),
            1,
            "rediscovered after return"
        );
    }

    #[test]
    fn deactivated_slave_is_invisible() {
        let mcfg = MasterConfig::new(BdAddr::new(1));
        let mut e = setup(19, mcfg, vec![continuous_slave(1)], MediumConfig::default());
        all_in_range(&mut e);
        e.schedule(
            SimTime::ZERO,
            BbEvent::set_slave_active(SlaveId::new(0), false),
        );
        e.run_until(SimTime::from_secs(12));
        assert!(e.world().bb.discoveries().is_empty());
        // Reactivate: discovered on the continuing inquiry.
        e.schedule(
            SimTime::from_secs(12),
            BbEvent::set_slave_active(SlaveId::new(0), true),
        );
        e.run_until(SimTime::from_secs(25));
        assert_eq!(e.world().bb.discoveries().len(), 1);
    }

    #[test]
    fn deterministic_same_seed_same_discoveries() {
        let run = |seed| {
            let mcfg = MasterConfig::new(BdAddr::new(1));
            let slaves: Vec<SlaveConfig> = (0..5).map(continuous_slave).collect();
            let mut e = setup(seed, mcfg, slaves, MediumConfig::default());
            all_in_range(&mut e);
            e.run_until(SimTime::from_secs(15));
            e.world()
                .bb
                .discoveries()
                .iter()
                .map(|d| (d.slave.index(), d.at))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }

    #[test]
    fn reset_discoveries_allows_rediscovery() {
        let mcfg = MasterConfig::new(BdAddr::new(1));
        let mut e = setup(18, mcfg, vec![continuous_slave(1)], MediumConfig::default());
        all_in_range(&mut e);
        e.run_until(SimTime::from_secs(8));
        let first = e.world().bb.discoveries().len();
        assert_eq!(first, 1);
        e.world_mut().bb.reset_discoveries();
        assert!(e.world().bb.discoveries().is_empty());
        e.run_until(SimTime::from_secs(20));
        assert_eq!(
            e.world().bb.discoveries().len(),
            1,
            "slave keeps responding, so it is rediscovered after reset"
        );
    }

    #[test]
    fn no_link_error_reports_pair() {
        let err = NoLinkError {
            master: MasterId::new(2),
            slave: SlaveId::new(7),
        };
        assert_eq!(err.to_string(), "no link between master 2 and slave 7");
    }
}

#[cfg(test)]
mod capacity_tests {
    use super::*;
    use crate::params::{DutyCycle, ScanPattern};
    use desim::{Context, Engine, SimDuration, World};

    struct TestWorld {
        bb: Baseband,
    }

    impl World for TestWorld {
        type Event = BbEvent;
        fn handle(&mut self, ctx: &mut Context<BbEvent>, ev: BbEvent) {
            self.bb.handle(ctx, ev);
        }
        fn quiesce(&mut self, ctx: &mut Context<BbEvent>) {
            self.bb.settle(ctx.now());
        }
    }

    /// One service-only master, N page-scanning slaves, everything in
    /// range, with pages requested for all of them at t = 1 s.
    fn engine_with_pages(n: usize) -> Engine<TestWorld> {
        let mut bb = Baseband::new(MediumConfig::default());
        let mut rng = desim::SeedDeriver::new(55).rng(0);
        // Duty with a long service phase so pages run immediately after a
        // short inquiry burst.
        let m = bb.add_master(
            MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
                SimDuration::from_millis(100),
                SimDuration::from_secs(100),
            )),
            &mut rng,
        );
        let slaves: Vec<SlaveId> = (0..n)
            .map(|i| {
                bb.add_slave(
                    SlaveConfig::new(BdAddr::new(0x100 + i as u64))
                        .scan(ScanPattern::alternating()),
                    &mut rng,
                )
            })
            .collect();
        let mut e = Engine::new(TestWorld { bb }, 55);
        e.schedule(SimTime::ZERO, BbEvent::start());
        for &s in &slaves {
            e.schedule(SimTime::ZERO, BbEvent::set_in_range(m, s, true));
            e.schedule(SimTime::from_secs(1), BbEvent::request_page(m, s));
        }
        e
    }

    #[test]
    fn piconet_never_exceeds_seven_active_slaves() {
        let mut e = engine_with_pages(10);
        let m = MasterId::new(0);
        for step in 1..=60 {
            e.run_until(SimTime::from_secs(step));
            let active = e.world().bb.connected_slaves(m).count();
            assert!(active <= MAX_ACTIVE_SLAVES, "t={step}s: {active} active");
        }
        // Exactly seven connect; the other three wait in the queue.
        assert_eq!(e.world().bb.connected_slaves(m).count(), MAX_ACTIVE_SLAVES);
    }

    #[test]
    fn freeing_a_slot_admits_the_next_queued_page() {
        let mut e = engine_with_pages(10);
        let m = MasterId::new(0);
        e.run_until(SimTime::from_secs(60));
        let connected: Vec<SlaveId> = e.world().bb.connected_slaves(m).collect();
        assert_eq!(connected.len(), MAX_ACTIVE_SLAVES);
        // Disconnect two: the queue must refill the slots.
        e.schedule(SimTime::from_secs(60), BbEvent::disconnect(m, connected[0]));
        e.schedule(SimTime::from_secs(60), BbEvent::disconnect(m, connected[1]));
        e.run_until(SimTime::from_secs(120));
        let after: Vec<SlaveId> = e.world().bb.connected_slaves(m).collect();
        assert_eq!(after.len(), MAX_ACTIVE_SLAVES, "slots not refilled");
        assert!(!after.contains(&connected[0]) || !after.contains(&connected[1]));
    }

    #[test]
    fn seven_or_fewer_connect_without_queueing_delay() {
        let mut e = engine_with_pages(7);
        e.run_until(SimTime::from_secs(60));
        assert_eq!(
            e.world().bb.connected_slaves(MasterId::new(0)).count(),
            7,
            "all seven fit"
        );
    }
}

#[cfg(test)]
mod page_model_tests {
    use super::*;
    use crate::params::{DutyCycle, PageModel, ScanPattern};
    use desim::{Context, Engine, SimDuration, World};

    struct TestWorld {
        bb: Baseband,
    }

    impl World for TestWorld {
        type Event = BbEvent;
        fn handle(&mut self, ctx: &mut Context<BbEvent>, ev: BbEvent) {
            self.bb.handle(ctx, ev);
        }
        fn quiesce(&mut self, ctx: &mut Context<BbEvent>) {
            self.bb.settle(ctx.now());
        }
    }

    fn paging_engine(model: PageModel, packet_success: f64, seed: u64) -> Engine<TestWorld> {
        let mut bb = Baseband::new(MediumConfig {
            page_model: model,
            packet_success,
            ..MediumConfig::default()
        });
        let mut rng = desim::SeedDeriver::new(seed).rng(0);
        let m = bb.add_master(
            MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
                SimDuration::from_millis(100),
                SimDuration::from_secs(60),
            )),
            &mut rng,
        );
        let sl = bb.add_slave(
            SlaveConfig::new(BdAddr::new(0x99)).scan(ScanPattern::alternating()),
            &mut rng,
        );
        let mut e = Engine::new(TestWorld { bb }, seed);
        e.schedule(SimTime::ZERO, BbEvent::start());
        e.schedule(SimTime::ZERO, BbEvent::set_in_range(m, sl, true));
        e.schedule(SimTime::from_secs(1), BbEvent::request_page(m, sl));
        e
    }

    fn link_time(e: &mut Engine<TestWorld>) -> Option<SimTime> {
        e.run_until(SimTime::from_secs(30));
        e.world_mut()
            .bb
            .drain_notifications()
            .into_iter()
            .find_map(|n| match n {
                BbNotification::LinkEstablished { at, .. } => Some(at),
                _ => None,
            })
    }

    #[test]
    fn slot_accurate_page_connects_within_scan_cycles() {
        let mut e = paging_engine(PageModel::SlotAccurate, 1.0, 31);
        let at = link_time(&mut e).expect("no link established");
        // The slave's page-scan windows come every 2.56 s; the page must
        // land within a few of them.
        assert!(
            at < SimTime::from_secs(9),
            "slot-accurate page too slow: {at}"
        );
    }

    #[test]
    fn slot_accurate_and_analytic_latencies_are_comparable() {
        let lat = |model| {
            let mut sum = 0.0;
            let n = 12;
            for seed in 0..n {
                let mut e = paging_engine(model, 1.0, 100 + seed);
                let at = link_time(&mut e).expect("link");
                sum += (at - SimTime::from_secs(1)).as_secs_f64();
            }
            sum / n as f64
        };
        let analytic = lat(PageModel::Analytic);
        let slot = lat(PageModel::SlotAccurate);
        // Both are dominated by the wait for a page-scan window; they
        // must agree within a factor of ~2.5.
        assert!(
            slot < analytic * 2.5 + 1.0 && analytic < slot * 2.5 + 1.0,
            "analytic {analytic:.2}s vs slot-accurate {slot:.2}s"
        );
    }

    #[test]
    fn channel_errors_slow_slot_accurate_paging() {
        let mean_lat = |p: f64| {
            let mut sum = 0.0;
            let n = 10;
            let mut ok = 0;
            for seed in 0..n {
                let mut e = paging_engine(PageModel::SlotAccurate, p, 200 + seed);
                if let Some(at) = link_time(&mut e) {
                    sum += (at - SimTime::from_secs(1)).as_secs_f64();
                    ok += 1;
                }
            }
            (sum / ok.max(1) as f64, ok)
        };
        let (clean, ok_clean) = mean_lat(1.0);
        let (lossy, ok_lossy) = mean_lat(0.3);
        assert_eq!(ok_clean, 10);
        assert!(ok_lossy >= 5, "most lossy pages still complete: {ok_lossy}");
        assert!(
            lossy >= clean,
            "errors cannot speed paging up: {clean:.2}s vs {lossy:.2}s"
        );
    }

    #[test]
    fn page_timeout_fires_when_slave_never_page_scans() {
        // A continuous-inquiry slave has no page windows: the attempt
        // must end in PageFailed at the deadline under both models.
        for model in [PageModel::Analytic, PageModel::SlotAccurate] {
            let mut bb = Baseband::new(MediumConfig {
                page_model: model,
                ..MediumConfig::default()
            });
            let mut rng = desim::SeedDeriver::new(7).rng(0);
            let m = bb.add_master(
                MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
                    SimDuration::from_millis(100),
                    SimDuration::from_secs(60),
                )),
                &mut rng,
            );
            let sl = bb.add_slave(
                SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::continuous_inquiry()),
                &mut rng,
            );
            let mut e = Engine::new(TestWorld { bb }, 7);
            e.schedule(SimTime::ZERO, BbEvent::start());
            e.schedule(SimTime::ZERO, BbEvent::set_in_range(m, sl, true));
            e.schedule(SimTime::from_secs(1), BbEvent::request_page(m, sl));
            e.run_until(SimTime::from_secs(30));
            let notes = e.world_mut().bb.drain_notifications();
            assert!(
                notes
                    .iter()
                    .any(|n| matches!(n, BbNotification::PageFailed { .. })),
                "{model:?}: no PageFailed in {notes:?}"
            );
            assert_eq!(e.world().bb.slave_connection(sl), None);
        }
    }
}

#[cfg(test)]
mod range_flap_tests {
    use super::*;
    use crate::params::{DutyCycle, ScanPattern};
    use desim::{Context, Engine, SimDuration, World};

    struct TestWorld {
        bb: Baseband,
    }

    impl World for TestWorld {
        type Event = BbEvent;
        fn handle(&mut self, ctx: &mut Context<BbEvent>, ev: BbEvent) {
            self.bb.handle(ctx, ev);
        }
        fn quiesce(&mut self, ctx: &mut Context<BbEvent>) {
            self.bb.settle(ctx.now());
        }
    }

    fn linked_pair(seed: u64) -> Engine<TestWorld> {
        let mut bb = Baseband::new(MediumConfig::default());
        let mut rng = desim::SeedDeriver::new(seed).rng(0);
        let m = bb.add_master(
            MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
                SimDuration::from_millis(100),
                SimDuration::from_secs(60),
            )),
            &mut rng,
        );
        let sl = bb.add_slave(
            SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::alternating()),
            &mut rng,
        );
        let mut e = Engine::new(TestWorld { bb }, seed);
        e.schedule(SimTime::ZERO, BbEvent::start());
        e.schedule(SimTime::ZERO, BbEvent::set_in_range(m, sl, true));
        e.schedule(SimTime::from_secs(1), BbEvent::request_page(m, sl));
        e.run_until(SimTime::from_secs(15));
        assert_eq!(e.world().bb.slave_connection(sl), Some(m), "setup: no link");
        e
    }

    #[test]
    fn brief_range_loss_does_not_drop_the_link() {
        let mut e = linked_pair(41);
        let (m, s) = (MasterId::new(0), SlaveId::new(0));
        // Out for 1 s — less than the 2 s supervision timeout — then back.
        e.schedule(SimTime::from_secs(15), BbEvent::set_in_range(m, s, false));
        e.schedule(SimTime::from_secs(16), BbEvent::set_in_range(m, s, true));
        e.run_until(SimTime::from_secs(25));
        assert_eq!(
            e.world().bb.slave_connection(s),
            Some(m),
            "link must survive a sub-timeout fade"
        );
        let notes = e.world_mut().bb.drain_notifications();
        assert!(
            !notes
                .iter()
                .any(|n| matches!(n, BbNotification::LinkLost { .. })),
            "{notes:?}"
        );
    }

    #[test]
    fn repeated_flaps_each_shorter_than_timeout_never_drop() {
        let mut e = linked_pair(42);
        let (m, s) = (MasterId::new(0), SlaveId::new(0));
        for k in 0..6u64 {
            let t0 = SimTime::from_secs(15 + 3 * k);
            e.schedule(t0, BbEvent::set_in_range(m, s, false));
            e.schedule(
                t0 + SimDuration::from_millis(1500),
                BbEvent::set_in_range(m, s, true),
            );
        }
        e.run_until(SimTime::from_secs(40));
        assert_eq!(e.world().bb.slave_connection(s), Some(m));
        assert_eq!(e.world().bb.stats().links_lost, 0);
    }
}
