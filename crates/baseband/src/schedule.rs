//! Master duty-cycle scheduling: when to inquire, when to serve.
//!
//! The core resource question of the paper (§4.2, §5): a workstation
//! master must split its operational cycle between *device discovery*
//! (inquiry) and *serving enrolled slaves* (paging, polling, data). The
//! paper settles on a 3.84 s inquiry slot inside a 15.4 s cycle — ≈24 %
//! tracking load. [`PhasePlan`] turns a [`DutyCycle`] plus the master's
//! start offset into the phase timeline the medium executes.

use crate::params::DutyCycle;
use desim::{SimDuration, SimTime};

/// What a master is doing at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Transmitting inquiry trains and collecting FHS responses.
    Inquiry,
    /// Connection management: paging discovered devices and serving
    /// slaves.
    Service,
}

/// A master's phase timeline: the duty cycle anchored at a start instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePlan {
    duty: DutyCycle,
    origin: SimTime,
}

impl PhasePlan {
    /// A plan that starts its first inquiry phase at `origin`.
    pub fn new(duty: DutyCycle, origin: SimTime) -> PhasePlan {
        PhasePlan { duty, origin }
    }

    /// The duty cycle being executed.
    pub fn duty(&self) -> DutyCycle {
        self.duty
    }

    /// The phase in force at `t` (times before the origin count as
    /// `Service`: the master hasn't started inquiring yet).
    pub fn phase_at(&self, t: SimTime) -> Phase {
        if self.duty.is_always_inquiry() {
            return if t >= self.origin {
                Phase::Inquiry
            } else {
                Phase::Service
            };
        }
        match t.checked_sub(self.origin) {
            None => Phase::Service,
            Some(since) => {
                let into = since % self.duty.period();
                if into < self.duty.inquiry_len() {
                    Phase::Inquiry
                } else {
                    Phase::Service
                }
            }
        }
    }

    /// The next phase boundary strictly after `t`, together with the phase
    /// that begins there. Returns `None` for an always-inquiry plan that
    /// has already started (it has no boundaries).
    pub fn next_boundary(&self, t: SimTime) -> Option<(SimTime, Phase)> {
        if self.duty.is_always_inquiry() {
            return if t < self.origin {
                Some((self.origin, Phase::Inquiry))
            } else {
                None
            };
        }
        if t < self.origin {
            return Some((self.origin, Phase::Inquiry));
        }
        let since = t - self.origin;
        let period = self.duty.period();
        let into = since % period;
        let cycle_start = t - into;
        if into < self.duty.inquiry_len() {
            Some((cycle_start + self.duty.inquiry_len(), Phase::Service))
        } else {
            Some((cycle_start + period, Phase::Inquiry))
        }
    }

    /// Start of the inquiry phase containing or preceding `t` (`None`
    /// before the origin).
    pub fn current_cycle_start(&self, t: SimTime) -> Option<SimTime> {
        let since = t.checked_sub(self.origin)?;
        if self.duty.is_always_inquiry() {
            return Some(self.origin);
        }
        Some(t - (since % self.duty.period()))
    }

    /// Remaining time in the current inquiry phase at `t`
    /// ([`SimDuration::ZERO`] if not inquiring).
    pub fn inquiry_remaining(&self, t: SimTime) -> SimDuration {
        match self.phase_at(t) {
            Phase::Service => SimDuration::ZERO,
            Phase::Inquiry => {
                if self.duty.is_always_inquiry() {
                    SimDuration::MAX
                } else {
                    let into = (t - self.origin) % self.duty.period();
                    self.duty.inquiry_len() - into
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig2_plan() -> PhasePlan {
        PhasePlan::new(
            DutyCycle::periodic(SimDuration::from_secs(1), SimDuration::from_secs(5)),
            SimTime::ZERO,
        )
    }

    #[test]
    fn fig2_phases() {
        let p = fig2_plan();
        assert_eq!(p.phase_at(SimTime::ZERO), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_millis(999)), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_secs(1)), Phase::Service);
        assert_eq!(p.phase_at(SimTime::from_millis(4999)), Phase::Service);
        assert_eq!(p.phase_at(SimTime::from_secs(5)), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_millis(5500)), Phase::Inquiry);
    }

    #[test]
    fn boundaries_alternate() {
        let p = fig2_plan();
        let (t1, ph1) = p.next_boundary(SimTime::ZERO).unwrap();
        assert_eq!((t1, ph1), (SimTime::from_secs(1), Phase::Service));
        let (t2, ph2) = p.next_boundary(t1).unwrap();
        assert_eq!((t2, ph2), (SimTime::from_secs(5), Phase::Inquiry));
        let (t3, _) = p.next_boundary(t2).unwrap();
        assert_eq!(t3, SimTime::from_secs(6));
    }

    #[test]
    fn always_inquiry_has_no_boundaries() {
        let p = PhasePlan::new(DutyCycle::always_inquiry(), SimTime::from_secs(1));
        assert_eq!(p.phase_at(SimTime::ZERO), Phase::Service);
        assert_eq!(
            p.next_boundary(SimTime::ZERO),
            Some((SimTime::from_secs(1), Phase::Inquiry))
        );
        assert_eq!(p.phase_at(SimTime::from_secs(2)), Phase::Inquiry);
        assert_eq!(p.next_boundary(SimTime::from_secs(2)), None);
        assert_eq!(p.inquiry_remaining(SimTime::from_secs(2)), SimDuration::MAX);
    }

    #[test]
    fn offset_origin_shifts_cycle() {
        let p = PhasePlan::new(
            DutyCycle::periodic(SimDuration::from_secs(1), SimDuration::from_secs(5)),
            SimTime::from_millis(300),
        );
        assert_eq!(p.phase_at(SimTime::ZERO), Phase::Service);
        assert_eq!(p.phase_at(SimTime::from_millis(300)), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_millis(1299)), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_millis(1300)), Phase::Service);
        assert_eq!(
            p.next_boundary(SimTime::ZERO),
            Some((SimTime::from_millis(300), Phase::Inquiry))
        );
    }

    #[test]
    fn inquiry_remaining_counts_down() {
        let p = fig2_plan();
        assert_eq!(
            p.inquiry_remaining(SimTime::from_millis(250)),
            SimDuration::from_millis(750)
        );
        assert_eq!(
            p.inquiry_remaining(SimTime::from_secs(3)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn paper_section5_cycle() {
        // 3.84 s inquiry in a 15.4 s cycle: the ≈24 % tracking load.
        let duty = DutyCycle::periodic(
            SimDuration::from_millis(3840),
            SimDuration::from_millis(15_400),
        );
        let p = PhasePlan::new(duty, SimTime::ZERO);
        assert_eq!(p.phase_at(SimTime::from_millis(3839)), Phase::Inquiry);
        assert_eq!(p.phase_at(SimTime::from_millis(3840)), Phase::Service);
        assert_eq!(p.phase_at(SimTime::from_millis(15_400)), Phase::Inquiry);
        assert!((duty.inquiry_fraction() - 0.2494).abs() < 1e-3);
    }
}
