//! Bluetooth device addresses.
//!
//! A `BD_ADDR` is the 48-bit IEEE address every Bluetooth device carries.
//! BIPS hinges on it: logging in binds a `userid` to a `BD_ADDR`, and the
//! location database is keyed by it. The address splits into three fields
//! (spec Part B §1.2):
//!
//! * **LAP** — lower address part, 24 bits, used in access-code and hop
//!   derivation;
//! * **UAP** — upper address part, 8 bits, also hop-relevant;
//! * **NAP** — non-significant address part, 16 bits.

use std::fmt;
use std::str::FromStr;

/// A 48-bit Bluetooth device address (`BD_ADDR`).
///
/// # Example
///
/// ```
/// use bt_baseband::BdAddr;
/// let a: BdAddr = "00:10:DC:4F:12:AB".parse().unwrap();
/// assert_eq!(a.lap(), 0x4F12AB);
/// assert_eq!(a.uap(), 0xDC);
/// assert_eq!(a.nap(), 0x0010);
/// assert_eq!(a.to_string(), "00:10:DC:4F:12:AB");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BdAddr(u64);

impl BdAddr {
    /// Creates an address from its 48-bit value.
    ///
    /// # Panics
    ///
    /// Panics if `raw` does not fit in 48 bits.
    pub const fn new(raw: u64) -> Self {
        assert!(raw < (1 << 48), "BD_ADDR exceeds 48 bits");
        BdAddr(raw)
    }

    /// The raw 48-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Lower address part (24 bits) — the hop- and access-code-relevant
    /// field.
    pub const fn lap(self) -> u32 {
        (self.0 & 0xFF_FFFF) as u32
    }

    /// Upper address part (8 bits).
    pub const fn uap(self) -> u8 {
        ((self.0 >> 24) & 0xFF) as u8
    }

    /// Non-significant address part (16 bits).
    pub const fn nap(self) -> u16 {
        ((self.0 >> 32) & 0xFFFF) as u16
    }

    /// The 28 bits that feed the hop-selection kernel: `UAP[3:0] ‖ LAP`.
    pub const fn hop_input(self) -> u32 {
        ((self.uap() as u32 & 0x0F) << 24) | self.lap()
    }
}

impl fmt::Debug for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BdAddr({self})")
    }
}

impl fmt::Display for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02X}:{:02X}:{:02X}:{:02X}:{:02X}:{:02X}",
            (b >> 40) & 0xFF,
            (b >> 32) & 0xFF,
            (b >> 24) & 0xFF,
            (b >> 16) & 0xFF,
            (b >> 8) & 0xFF,
            b & 0xFF
        )
    }
}

impl fmt::LowerHex for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for BdAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<BdAddr> for u64 {
    fn from(a: BdAddr) -> u64 {
        a.0
    }
}

impl TryFrom<u64> for BdAddr {
    type Error = ParseBdAddrError;
    fn try_from(raw: u64) -> Result<Self, Self::Error> {
        if raw < (1 << 48) {
            Ok(BdAddr(raw))
        } else {
            Err(ParseBdAddrError::TooLarge)
        }
    }
}

/// Error parsing a [`BdAddr`] from text or integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseBdAddrError {
    /// Input was not six colon-separated hex octets.
    Malformed,
    /// Integer input exceeded 48 bits.
    TooLarge,
}

impl fmt::Display for ParseBdAddrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBdAddrError::Malformed => {
                write!(f, "expected six colon-separated hex octets")
            }
            ParseBdAddrError::TooLarge => write!(f, "value exceeds 48 bits"),
        }
    }
}

impl std::error::Error for ParseBdAddrError {}

impl FromStr for BdAddr {
    type Err = ParseBdAddrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut value: u64 = 0;
        let mut octets = 0;
        for part in s.split(':') {
            if part.len() != 2 {
                return Err(ParseBdAddrError::Malformed);
            }
            let byte = u8::from_str_radix(part, 16).map_err(|_| ParseBdAddrError::Malformed)?;
            value = (value << 8) | byte as u64;
            octets += 1;
        }
        if octets != 6 {
            return Err(ParseBdAddrError::Malformed);
        }
        Ok(BdAddr(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_extraction() {
        let a = BdAddr::new(0x0010_DC4F_12AB);
        assert_eq!(a.lap(), 0x4F12AB);
        assert_eq!(a.uap(), 0xDC);
        assert_eq!(a.nap(), 0x0010);
        assert_eq!(a.hop_input(), 0x0C4F_12AB);
    }

    #[test]
    fn display_round_trip() {
        let a = BdAddr::new(0xABCD_EF01_2345);
        let s = a.to_string();
        assert_eq!(s, "AB:CD:EF:01:23:45");
        assert_eq!(s.parse::<BdAddr>().unwrap(), a);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "00:11:22:33:44",
            "00:11:22:33:44:55:66",
            "0:1:2:3:4:5",
            "GG:00:00:00:00:00",
        ] {
            assert_eq!(
                bad.parse::<BdAddr>(),
                Err(ParseBdAddrError::Malformed),
                "{bad}"
            );
        }
    }

    #[test]
    fn try_from_bounds() {
        assert!(BdAddr::try_from((1u64 << 48) - 1).is_ok());
        assert_eq!(
            BdAddr::try_from(1u64 << 48),
            Err(ParseBdAddrError::TooLarge)
        );
    }

    #[test]
    #[should_panic(expected = "48 bits")]
    fn new_rejects_wide_values() {
        let _ = BdAddr::new(1 << 48);
    }

    #[test]
    fn hex_formatting() {
        let a = BdAddr::new(0xAB);
        assert_eq!(format!("{a:x}"), "ab");
        assert_eq!(format!("{a:X}"), "AB");
    }
}
