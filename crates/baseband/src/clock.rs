//! The Bluetooth native clock.
//!
//! Every Bluetooth device free-runs a 28-bit counter `CLKN` that ticks
//! every 312.5 µs (3.2 kHz — the paper's §3 recites these numbers). Two
//! ticks make one 625 µs slot; `CLKN` wraps roughly once a day. The
//! inquiry/page scan frequencies are driven by bits `CLKN[16:12]`, which
//! advance once every 1.28 s — that is where the famous 1.28 s scan
//! interval comes from.
//!
//! In the simulator each device's clock is an offset from the engine's
//! virtual time: devices are *not* synchronized, which is exactly what
//! makes discovery slow (master and slave start on uncorrelated trains and
//! scan phases).

use desim::{SimDuration, SimTime};

/// Duration of one native clock tick (312.5 µs).
pub const TICK: SimDuration = SimDuration::from_units_0125us(2500);

/// Duration of one slot (625 µs = 2 ticks).
pub const SLOT: SimDuration = SimDuration::from_units_0125us(5000);

/// Duration of a transmit/receive slot pair (1.25 ms).
pub const SLOT_PAIR: SimDuration = SimDuration::from_units_0125us(10_000);

/// The 1.28 s period after which `CLKN[16:12]` advances (4096 slots·2).
pub const CLKN_12_PERIOD: SimDuration = SimDuration::from_millis(1280);

/// Number of CLKN values (28-bit counter).
const CLKN_WRAP: u64 = 1 << 28;

/// A device's free-running native clock, modeled as a phase offset from
/// simulation time.
///
/// # Example
///
/// ```
/// use bt_baseband::clock::{NativeClock, TICK};
/// use desim::{SimTime, SimDuration};
///
/// let clk = NativeClock::with_phase_ticks(5);
/// assert_eq!(clk.clkn(SimTime::ZERO), 5);
/// assert_eq!(clk.clkn(SimTime::ZERO + TICK * 3), 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct NativeClock {
    /// Phase: the CLKN value at simulation time zero.
    phase_ticks: u64,
}

impl NativeClock {
    /// A clock that reads zero at simulation time zero.
    pub const fn new() -> Self {
        NativeClock { phase_ticks: 0 }
    }

    /// A clock whose `CLKN` reads `phase` (mod 2²⁸) at simulation time zero.
    pub const fn with_phase_ticks(phase: u64) -> Self {
        NativeClock {
            phase_ticks: phase % CLKN_WRAP,
        }
    }

    /// A clock with a uniformly random phase drawn from `rng`.
    pub fn random(rng: &mut desim::SimRng) -> Self {
        NativeClock::with_phase_ticks(rng.below(CLKN_WRAP))
    }

    /// The 28-bit `CLKN` value at simulation time `now`.
    pub fn clkn(&self, now: SimTime) -> u64 {
        let ticks = now.elapsed().div_duration(TICK);
        (self.phase_ticks + ticks) % CLKN_WRAP
    }

    /// Bits `CLKN[16:12]` — the scan-frequency phase (advances every
    /// 1.28 s).
    pub fn clkn_16_12(&self, now: SimTime) -> u8 {
        ((self.clkn(now) >> 12) & 0x1F) as u8
    }

    /// `CLKN[1]`: true in the second half of a slot pair (receive slot for
    /// a master).
    pub fn is_odd_slot(&self, now: SimTime) -> bool {
        (self.clkn(now) >> 1) & 1 == 1
    }

    /// The next simulation time at or after `now` at which this clock's
    /// `CLKN[1:0]` is zero, i.e. the start of an even (master-transmit)
    /// slot.
    pub fn next_even_slot(&self, now: SimTime) -> SimTime {
        let clkn = self.clkn(now);
        let into = clkn % 4; // ticks into the current slot pair
        let in_tick = now.elapsed() % TICK;
        if into == 0 && in_tick.is_zero() {
            return now;
        }
        let remaining_ticks = 4 - into;
        now - in_tick + TICK * remaining_ticks
    }

    /// The next simulation time at or after `now` at which `CLKN[16:12]`
    /// changes (a scan-frequency hop boundary).
    pub fn next_scan_hop(&self, now: SimTime) -> SimTime {
        let clkn = self.clkn(now);
        let into = clkn % 4096; // ticks into the current 1.28 s period
        let in_tick = now.elapsed() % TICK;
        let remaining = 4096 - into;
        let base = now - in_tick + TICK * remaining;
        debug_assert!(base > now || (remaining == 4096 && in_tick.is_zero()));
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clkn_advances_one_per_tick() {
        let c = NativeClock::new();
        assert_eq!(c.clkn(SimTime::ZERO), 0);
        assert_eq!(c.clkn(SimTime::ZERO + TICK), 1);
        assert_eq!(c.clkn(SimTime::ZERO + SLOT), 2);
        assert_eq!(c.clkn(SimTime::from_secs(1)), 3200, "3.2 kHz clock");
    }

    #[test]
    fn phase_wraps_at_28_bits() {
        let c = NativeClock::with_phase_ticks(CLKN_WRAP - 1);
        assert_eq!(c.clkn(SimTime::ZERO), CLKN_WRAP - 1);
        assert_eq!(c.clkn(SimTime::ZERO + TICK), 0);
    }

    #[test]
    fn scan_phase_advances_every_1_28s() {
        let c = NativeClock::new();
        assert_eq!(c.clkn_16_12(SimTime::ZERO), 0);
        assert_eq!(c.clkn_16_12(SimTime::from_millis(1279)), 0);
        assert_eq!(c.clkn_16_12(SimTime::from_millis(1280)), 1);
        assert_eq!(c.clkn_16_12(SimTime::from_millis(2560)), 2);
        // 32 hops wrap after 32 * 1.28 s = 40.96 s.
        assert_eq!(c.clkn_16_12(SimTime::from_secs_f64(40.96)), 0);
    }

    #[test]
    fn next_even_slot_alignment() {
        let c = NativeClock::new();
        assert_eq!(c.next_even_slot(SimTime::ZERO), SimTime::ZERO);
        let inside = SimTime::from_micros(100);
        let next = c.next_even_slot(inside);
        assert_eq!(next, SimTime::from_micros(1250));
        // A clock offset by one tick shifts the even-slot grid.
        let c2 = NativeClock::with_phase_ticks(1);
        let next2 = c2.next_even_slot(SimTime::ZERO);
        assert_eq!(next2.as_micros(), 937); // 3 ticks = 937.5 µs
    }

    #[test]
    fn odd_slot_detection() {
        let c = NativeClock::new();
        assert!(!c.is_odd_slot(SimTime::ZERO));
        assert!(c.is_odd_slot(SimTime::ZERO + SLOT));
        assert!(!c.is_odd_slot(SimTime::ZERO + SLOT_PAIR));
    }

    #[test]
    fn next_scan_hop_is_future_boundary() {
        let c = NativeClock::new();
        let hop = c.next_scan_hop(SimTime::from_millis(100));
        assert_eq!(hop, SimTime::from_millis(1280));
        let hop2 = c.next_scan_hop(hop);
        assert_eq!(hop2, SimTime::from_millis(2560));
    }

    #[test]
    fn random_clocks_differ() {
        let mut rng = desim::SimRng::seed_from(7);
        let a = NativeClock::random(&mut rng);
        let b = NativeClock::random(&mut rng);
        assert_ne!(a, b);
    }
}
