//! A standalone [`World`] wrapping one [`Baseband`].
//!
//! For experiments that are purely about the radio layer — everything in
//! §4 of the paper — the medium *is* the whole simulation. The builder
//! collects device configurations; [`BasebandWorld::into_engine`] resolves
//! their per-trial randomness from the seed, puts every slave in every
//! master's range (override by scheduling
//! [`BbEvent::set_in_range`](crate::BbEvent::set_in_range) commands), and
//! arms the bootstrap event.

use desim::{Context, Engine, SeedDeriver, SimTime, World};

use crate::medium::{Baseband, BbEvent, MasterId, SlaveId};
use crate::params::{MasterConfig, MediumConfig, SlaveConfig};

/// A simulation world containing just the Bluetooth medium.
#[derive(Debug)]
pub struct BasebandWorld {
    medium_cfg: MediumConfig,
    masters: Vec<MasterConfig>,
    slaves: Vec<SlaveConfig>,
    all_in_range: bool,
    bb: Option<Baseband>,
}

impl BasebandWorld {
    /// Starts building a world.
    pub fn builder() -> BasebandWorldBuilder {
        BasebandWorldBuilder {
            medium_cfg: MediumConfig::default(),
            masters: Vec::new(),
            slaves: Vec::new(),
            all_in_range: true,
        }
    }

    /// The contained medium.
    ///
    /// # Panics
    ///
    /// Panics if called before [`into_engine`](BasebandWorld::into_engine)
    /// has resolved the devices.
    pub fn baseband(&self) -> &Baseband {
        self.bb
            .as_ref()
            .expect("world not started; call into_engine")
    }

    /// Mutable access to the medium (e.g. to drain notifications or reset
    /// discovery records between measurement phases).
    ///
    /// # Panics
    ///
    /// Panics if called before [`into_engine`](BasebandWorld::into_engine).
    pub fn baseband_mut(&mut self) -> &mut Baseband {
        self.bb
            .as_mut()
            .expect("world not started; call into_engine")
    }

    /// The id of the `i`-th configured master.
    pub fn master(&self, i: usize) -> MasterId {
        assert!(i < self.masters.len(), "master {i} not configured");
        MasterId::new(i)
    }

    /// The id of the `i`-th configured slave.
    pub fn slave(&self, i: usize) -> SlaveId {
        assert!(i < self.slaves.len(), "slave {i} not configured");
        SlaveId::new(i)
    }

    /// Resolves all per-trial randomness from `seed`, builds the engine
    /// and arms the bootstrap event at time zero.
    pub fn into_engine(mut self, seed: u64) -> Engine<BasebandWorld> {
        let deriver = SeedDeriver::new(seed);
        // Device randomness uses a stream distinct from the engine's own.
        let mut cfg_rng = deriver.rng(u64::MAX);
        let mut bb = Baseband::new(self.medium_cfg);
        let masters: Vec<MasterId> = self
            .masters
            .iter()
            .map(|&c| bb.add_master(c, &mut cfg_rng))
            .collect();
        let slaves: Vec<SlaveId> = self
            .slaves
            .iter()
            .map(|&c| bb.add_slave(c, &mut cfg_rng))
            .collect();
        self.bb = Some(bb);
        let all = self.all_in_range;
        let mut engine = Engine::new(self, seed);
        engine.schedule(SimTime::ZERO, BbEvent::start());
        if all {
            for &m in &masters {
                for &s in &slaves {
                    engine.schedule(SimTime::ZERO, BbEvent::set_in_range(m, s, true));
                }
            }
        }
        engine
    }
}

impl World for BasebandWorld {
    type Event = BbEvent;
    fn handle(&mut self, ctx: &mut Context<BbEvent>, event: BbEvent) {
        self.bb
            .as_mut()
            .expect("events before bootstrap")
            .handle(ctx, event);
    }
    fn quiesce(&mut self, ctx: &mut Context<BbEvent>) {
        if let Some(bb) = self.bb.as_mut() {
            bb.settle(ctx.now());
        }
    }
}

/// Builder for [`BasebandWorld`].
#[derive(Debug)]
pub struct BasebandWorldBuilder {
    medium_cfg: MediumConfig,
    masters: Vec<MasterConfig>,
    slaves: Vec<SlaveConfig>,
    all_in_range: bool,
}

impl BasebandWorldBuilder {
    /// Sets the medium configuration.
    pub fn medium(mut self, cfg: MediumConfig) -> Self {
        self.medium_cfg = cfg;
        self
    }

    /// Adds a master.
    pub fn master(mut self, cfg: MasterConfig) -> Self {
        self.masters.push(cfg);
        self
    }

    /// Adds a slave.
    pub fn slave(mut self, cfg: SlaveConfig) -> Self {
        self.slaves.push(cfg);
        self
    }

    /// Adds `n` slaves sharing one configuration template, with addresses
    /// `base_addr + i`.
    pub fn slaves(mut self, n: usize, template: impl Fn(u64) -> SlaveConfig) -> Self {
        for i in 0..n {
            self.slaves.push(template(i as u64));
        }
        self
    }

    /// Whether every slave starts in every master's range (default true).
    pub fn all_in_range(mut self, yes: bool) -> Self {
        self.all_in_range = yes;
        self
    }

    /// Finishes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if no master was configured.
    pub fn build(self) -> BasebandWorld {
        assert!(
            !self.masters.is_empty(),
            "a world needs at least one master"
        );
        BasebandWorld {
            medium_cfg: self.medium_cfg,
            masters: self.masters,
            slaves: self.slaves,
            all_in_range: self.all_in_range,
            bb: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BdAddr;
    use crate::params::{DutyCycle, ScanPattern};
    use desim::SimDuration;

    #[test]
    fn builder_produces_running_world() {
        let world = BasebandWorld::builder()
            .master(MasterConfig::new(BdAddr::new(1)))
            .slaves(3, |i| {
                SlaveConfig::new(BdAddr::new(0x100 + i)).scan(ScanPattern::continuous_inquiry())
            })
            .build();
        let mut engine = world.into_engine(5);
        engine.run_until(SimTime::from_secs(12));
        assert_eq!(engine.world().baseband().discoveries().len(), 3);
    }

    #[test]
    fn range_can_be_scripted_off() {
        let world = BasebandWorld::builder()
            .master(MasterConfig::new(BdAddr::new(1)))
            .slave(SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::continuous_inquiry()))
            .all_in_range(false)
            .build();
        let mut engine = world.into_engine(6);
        engine.run_until(SimTime::from_secs(12));
        assert!(engine.world().baseband().discoveries().is_empty());
    }

    #[test]
    fn full_enrollment_pipeline() {
        // Discovery → page → link, end to end through scripted commands.
        let world = BasebandWorld::builder()
            .master(MasterConfig::new(BdAddr::new(1)).duty(DutyCycle::periodic(
                SimDuration::from_secs(2),
                SimDuration::from_secs(4),
            )))
            .slave(SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::alternating()))
            .build();
        let mut engine = world.into_engine(7);
        let (m, s) = (MasterId::new(0), SlaveId::new(0));
        engine.run_until(SimTime::from_secs(40));
        assert!(
            !engine.world().baseband().discoveries().is_empty(),
            "slave not discovered in 40 s"
        );
        engine.schedule(SimTime::from_secs(40), BbEvent::request_page(m, s));
        engine.run_until(SimTime::from_secs(60));
        assert_eq!(engine.world().baseband().slave_connection(s), Some(m));
    }

    #[test]
    #[should_panic(expected = "at least one master")]
    fn empty_world_rejected() {
        let _ = BasebandWorld::builder().build();
    }
}
