//! Baseband packet types and their on-air durations.
//!
//! Only the packets that matter for BIPS are modeled: the `ID` packet used
//! by inquiry and paging (a bare 68-bit access code), the `FHS` packet a
//! slave answers inquiry with (carrying its `BD_ADDR` and clock), and the
//! single-slot `POLL`/`NULL`/`DM1` packets used once a connection exists.
//! Payload *contents* are carried faithfully; payload *encoding* (FEC,
//! whitening, CRC) is abstracted away, as in BlueHoc.

use crate::addr::BdAddr;
use desim::SimDuration;

/// The General Inquiry Access Code LAP: all discoverable devices answer it.
pub const GIAC_LAP: u32 = 0x9E8B33;

/// An inquiry/page access code, derived from a LAP.
///
/// The [general inquiry access code](AccessCode::GIAC) addresses *any*
/// discoverable device; a device access code (`dac`) addresses one
/// specific device during paging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessCode {
    lap: u32,
}

impl AccessCode {
    /// The general inquiry access code.
    pub const GIAC: AccessCode = AccessCode { lap: GIAC_LAP };

    /// The device access code of `addr`, used to page that device.
    pub fn dac(addr: BdAddr) -> AccessCode {
        AccessCode { lap: addr.lap() }
    }

    /// The LAP this code was derived from.
    pub const fn lap(self) -> u32 {
        self.lap
    }

    /// Whether this is the general inquiry code.
    pub const fn is_giac(self) -> bool {
        self.lap == GIAC_LAP
    }
}

/// The contents of an `FHS` packet: everything a master needs to page the
/// sender (spec Part B §4.4.1.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FhsPayload {
    /// The responding device's address.
    pub addr: BdAddr,
    /// The responding device's native clock (`CLKN`) sampled at
    /// transmission — lets the master predict the page-scan frequency.
    pub clkn: u64,
}

/// A baseband packet on the air.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Bare access code; inquiry/page request and page response.
    Id(AccessCode),
    /// Frequency-hop-synchronization packet; inquiry response and the
    /// master's page reply.
    Fhs(FhsPayload),
    /// Master poll requiring a response; no payload.
    Poll,
    /// Empty response packet.
    Null,
    /// Single-slot data packet, up to 17 bytes of payload after FEC.
    Dm1(Vec<u8>),
}

/// Maximum `DM1` payload in bytes (after 2/3 FEC, spec Part B §4.4.2.1).
pub const DM1_MAX_PAYLOAD: usize = 17;

impl Packet {
    /// On-air duration of the packet.
    ///
    /// `ID` is 68 µs; all single-slot packets occupy at most 366 µs of
    /// their 625 µs slot.
    pub fn air_time(&self) -> SimDuration {
        match self {
            Packet::Id(_) => SimDuration::from_micros(68),
            Packet::Fhs(_) => SimDuration::from_micros(366),
            Packet::Poll | Packet::Null => SimDuration::from_micros(126),
            Packet::Dm1(_) => SimDuration::from_micros(366),
        }
    }

    /// Creates a `DM1` packet.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`DM1_MAX_PAYLOAD`].
    pub fn dm1(payload: Vec<u8>) -> Packet {
        assert!(
            payload.len() <= DM1_MAX_PAYLOAD,
            "DM1 payload {} exceeds {DM1_MAX_PAYLOAD} bytes",
            payload.len()
        );
        Packet::Dm1(payload)
    }

    /// Number of `DM1` packets needed to carry `len` bytes (at least one,
    /// to model an empty message still costing a packet).
    pub fn dm1_count(len: usize) -> usize {
        len.div_ceil(DM1_MAX_PAYLOAD).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn giac_is_special() {
        assert!(AccessCode::GIAC.is_giac());
        let dac = AccessCode::dac(BdAddr::new(0x12_3456));
        assert!(!dac.is_giac());
        assert_eq!(dac.lap(), 0x12_3456);
    }

    #[test]
    fn dac_depends_only_on_lap() {
        let a = BdAddr::new(0xAA00_0012_3456);
        let b = BdAddr::new(0xBB00_0012_3456);
        assert_eq!(AccessCode::dac(a), AccessCode::dac(b));
    }

    #[test]
    fn air_times_fit_in_slots() {
        let slot = SimDuration::from_micros(625);
        for p in [
            Packet::Id(AccessCode::GIAC),
            Packet::Fhs(FhsPayload {
                addr: BdAddr::new(1),
                clkn: 0,
            }),
            Packet::Poll,
            Packet::Null,
            Packet::dm1(vec![0; 17]),
        ] {
            assert!(p.air_time() < slot, "{p:?}");
        }
        // Two ID packets fit in one slot (the even-slot double send).
        assert!(Packet::Id(AccessCode::GIAC).air_time() * 2 < slot);
    }

    #[test]
    fn dm1_packet_count() {
        assert_eq!(Packet::dm1_count(0), 1);
        assert_eq!(Packet::dm1_count(17), 1);
        assert_eq!(Packet::dm1_count(18), 2);
        assert_eq!(Packet::dm1_count(170), 10);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_dm1_panics() {
        let _ = Packet::dm1(vec![0; 18]);
    }
}
