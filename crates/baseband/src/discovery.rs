//! Turn-key discovery experiments (the paper's §4 measurements).
//!
//! A [`DiscoveryScenario`] is a one-master, N-slave inquiry experiment:
//! run it for a horizon and collect per-slave discovery times plus the
//! train alignment needed to classify trials the way Table 1 does
//! (same/different starting train). The Table 1 and Figure 2 benches are
//! thin loops over this type.

use desim::{SimDuration, SimTime};

use crate::hop::Train;
use crate::medium::{MasterId, SlaveId};
use crate::params::{MasterConfig, MediumConfig, SlaveConfig};
use crate::world::BasebandWorld;

/// A single-piconet discovery experiment.
///
/// # Example
///
/// Reproduce one Table 1 trial (master always inquiring, slave
/// alternating inquiry/page scan):
///
/// ```
/// use bt_baseband::{BdAddr, DiscoveryScenario, MasterConfig, SlaveConfig};
/// use bt_baseband::params::ScanPattern;
/// use desim::SimDuration;
///
/// let scenario = DiscoveryScenario::new(
///     MasterConfig::new(BdAddr::new(1)),
///     vec![SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::alternating())],
///     SimDuration::from_secs(30),
/// );
/// let outcome = scenario.run(1234);
/// let t = outcome.times[0].expect("discovered within 30 s");
/// assert!(t.as_secs_f64() < 30.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiscoveryScenario {
    master: MasterConfig,
    slaves: Vec<SlaveConfig>,
    horizon: SimDuration,
    medium: MediumConfig,
}

impl DiscoveryScenario {
    /// A scenario running `master` against `slaves` for `horizon`.
    ///
    /// # Panics
    ///
    /// Panics if `slaves` is empty or `horizon` is zero.
    pub fn new(master: MasterConfig, slaves: Vec<SlaveConfig>, horizon: SimDuration) -> Self {
        assert!(!slaves.is_empty(), "scenario needs slaves");
        assert!(!horizon.is_zero(), "zero horizon");
        DiscoveryScenario {
            master,
            slaves,
            horizon,
            medium: MediumConfig::default(),
        }
    }

    /// Overrides the medium configuration (e.g. to disable collisions for
    /// the BlueHoc-vanilla ablation).
    pub fn medium(mut self, medium: MediumConfig) -> Self {
        self.medium = medium;
        self
    }

    /// Number of slaves in the scenario.
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// The measurement horizon.
    pub fn horizon(&self) -> SimDuration {
        self.horizon
    }

    /// Runs one trial with the given seed; all per-trial randomness
    /// (clock phases, scan phases, start trains, backoffs) derives from
    /// it.
    pub fn run(&self, seed: u64) -> DiscoveryOutcome {
        self.run_trial(seed, None)
    }

    /// Like [`run`](DiscoveryScenario::run), but additionally exports the
    /// medium's counters into `metrics` after the trial (merged with
    /// whatever is already there, so calling this across replications
    /// accumulates totals). The instrumentation reads state only after
    /// the run — outcomes are bit-identical to the plain variant.
    pub fn run_with_metrics(&self, seed: u64, metrics: &mut desim::MetricSet) -> DiscoveryOutcome {
        self.run_trial(seed, Some(metrics))
    }

    /// Runs `n` independent replications, accumulating medium counters
    /// from every trial into `metrics`. Replications run on the ambient
    /// worker count ([`desim::par::default_jobs`]: `BIPS_JOBS` or the
    /// machine width); results are bit-identical for every worker count.
    pub fn run_replications_with_metrics(
        &self,
        master_seed: u64,
        n: u64,
        metrics: &mut desim::MetricSet,
    ) -> Vec<DiscoveryOutcome> {
        self.run_replications_with_metrics_jobs(master_seed, n, metrics, 0)
    }

    /// Like [`run_replications_with_metrics`](Self::run_replications_with_metrics)
    /// with an explicit worker count (`0` = ambient). Per-replication
    /// seeds come from [`desim::SeedDeriver`] keyed by replication index
    /// and per-trial metric sets are merged in replication-index order,
    /// so outcomes **and** accumulated telemetry are bit-identical to
    /// the serial (`jobs = 1`) run.
    pub fn run_replications_with_metrics_jobs(
        &self,
        master_seed: u64,
        n: u64,
        metrics: &mut desim::MetricSet,
        jobs: usize,
    ) -> Vec<DiscoveryOutcome> {
        let deriver = desim::SeedDeriver::new(master_seed);
        let jobs = desim::par::resolve_jobs(jobs);
        desim::par::replicate_with_metrics(n, jobs, metrics, |i| {
            let mut trial = desim::MetricSet::new();
            let outcome = self.run_with_metrics(deriver.derive(i), &mut trial);
            (outcome, trial)
        })
    }

    fn run_trial(&self, seed: u64, metrics: Option<&mut desim::MetricSet>) -> DiscoveryOutcome {
        let mut builder = BasebandWorld::builder()
            .medium(self.medium)
            .master(self.master);
        for &s in &self.slaves {
            builder = builder.slave(s);
        }
        let mut engine = builder.build().into_engine(seed);
        engine.run_until(SimTime::ZERO + self.horizon);

        let bb = engine.world().baseband();
        if let Some(metrics) = metrics {
            let mut trial = desim::MetricSet::new();
            bb.export_metrics(&mut trial);
            metrics.merge(&trial);
        }
        let m = MasterId::new(0);
        let mut times: Vec<Option<SimDuration>> = vec![None; self.slaves.len()];
        for d in bb.discoveries() {
            if d.master == m {
                let slot = &mut times[d.slave.index()];
                if slot.is_none() {
                    *slot = Some(d.at.elapsed());
                }
            }
        }
        let slave_start_trains = (0..self.slaves.len())
            .map(|i| bb.slave_scan_freq(SlaveId::new(i), SimTime::ZERO).train())
            .collect();
        DiscoveryOutcome {
            seed,
            times,
            master_start_train: bb.master_start_train(m),
            slave_start_trains,
            fhs_collided: bb.stats().fhs_collided,
        }
    }

    /// Runs `n` independent replications with seeds derived from
    /// `master_seed`, on the ambient worker count (see
    /// [`run_replications_with_metrics`](Self::run_replications_with_metrics)).
    pub fn run_replications(&self, master_seed: u64, n: u64) -> Vec<DiscoveryOutcome> {
        self.run_replications_jobs(master_seed, n, 0)
    }

    /// Like [`run_replications`](Self::run_replications) with an explicit
    /// worker count (`0` = ambient). The result is index-ordered and
    /// identical for every worker count.
    pub fn run_replications_jobs(
        &self,
        master_seed: u64,
        n: u64,
        jobs: usize,
    ) -> Vec<DiscoveryOutcome> {
        let deriver = desim::SeedDeriver::new(master_seed);
        let jobs = desim::par::resolve_jobs(jobs);
        desim::par::run_indexed(n, jobs, |i| self.run(deriver.derive(i)))
    }
}

/// The result of one [`DiscoveryScenario`] trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiscoveryOutcome {
    /// The trial seed.
    pub seed: u64,
    /// Per-slave first-discovery time (since the master entered inquiry),
    /// `None` if not discovered within the horizon.
    pub times: Vec<Option<SimDuration>>,
    /// The train the master started inquiring on.
    pub master_start_train: Train,
    /// Each slave's starting scan-frequency train.
    pub slave_start_trains: Vec<Train>,
    /// FHS responses destroyed by collisions during the trial.
    pub fhs_collided: u64,
}

impl DiscoveryOutcome {
    /// Whether slave `i` started on the master's starting train — the
    /// Table 1 classification.
    pub fn same_train(&self, i: usize) -> bool {
        self.slave_start_trains[i] == self.master_start_train
    }

    /// Number of slaves discovered within `deadline` of the start.
    pub fn discovered_by(&self, deadline: SimDuration) -> usize {
        self.times
            .iter()
            .filter(|t| matches!(t, Some(d) if *d <= deadline))
            .count()
    }

    /// Fraction of slaves discovered within `deadline`.
    pub fn fraction_discovered_by(&self, deadline: SimDuration) -> f64 {
        self.discovered_by(deadline) as f64 / self.times.len() as f64
    }

    /// True if every slave was discovered within the horizon.
    pub fn all_discovered(&self) -> bool {
        self.times.iter().all(Option::is_some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::BdAddr;
    use crate::params::{DutyCycle, ScanPattern, StartFreq, StartTrain, TrainPolicy};

    fn table1_scenario() -> DiscoveryScenario {
        DiscoveryScenario::new(
            MasterConfig::new(BdAddr::new(1)),
            vec![SlaveConfig::new(BdAddr::new(2)).scan(ScanPattern::alternating())],
            SimDuration::from_secs(30),
        )
    }

    #[test]
    fn table1_trial_discovers_single_slave() {
        let out = table1_scenario().run(42);
        assert!(out.times[0].is_some(), "not discovered in 30 s");
        assert!(out.all_discovered());
    }

    #[test]
    fn same_train_is_faster_than_different_train_on_average() {
        let outs = table1_scenario().run_replications(7, 60);
        let mut same = desim::stats::OnlineStats::new();
        let mut diff = desim::stats::OnlineStats::new();
        for o in &outs {
            let Some(t) = o.times[0] else { continue };
            if o.same_train(0) {
                same.push(t.as_secs_f64());
            } else {
                diff.push(t.as_secs_f64());
            }
        }
        assert!(same.len() >= 10 && diff.len() >= 10, "classes unbalanced");
        assert!(
            same.mean() + 1.0 < diff.mean(),
            "same {:.2}s vs diff {:.2}s",
            same.mean(),
            diff.mean()
        );
    }

    #[test]
    fn replications_are_deterministic_and_distinct() {
        let s = table1_scenario();
        let a = s.run_replications(1, 5);
        let b = s.run_replications(1, 5);
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn figure2_style_scenario_counts_fractions() {
        let master = MasterConfig::new(BdAddr::new(1))
            .duty(DutyCycle::periodic(
                SimDuration::from_secs(1),
                SimDuration::from_secs(5),
            ))
            .trains(TrainPolicy::Single)
            .start_train(StartTrain::Fixed(Train::A));
        let slaves: Vec<SlaveConfig> = (0..10)
            .map(|i| {
                SlaveConfig::new(BdAddr::new(0x100 + i))
                    .scan(ScanPattern::continuous_inquiry())
                    .start_freq(StartFreq::InTrain(Train::A))
            })
            .collect();
        let scenario = DiscoveryScenario::new(master, slaves, SimDuration::from_secs(14));
        let out = scenario.run(3);
        let one_sec = out.fraction_discovered_by(SimDuration::from_secs(1));
        let full = out.fraction_discovered_by(SimDuration::from_secs(14));
        assert!(one_sec > 0.5, "first-second discovery too low: {one_sec}");
        assert!(full >= one_sec);
    }

    /// The deterministic-parallelism contract: outcomes and accumulated
    /// telemetry are bit-identical for every worker count.
    #[test]
    fn parallel_replications_match_serial_bit_for_bit() {
        let s = table1_scenario();
        let mut serial_metrics = desim::MetricSet::new();
        let serial = s.run_replications_with_metrics_jobs(3, 10, &mut serial_metrics, 1);
        for jobs in [2, 8] {
            let mut metrics = desim::MetricSet::new();
            let outs = s.run_replications_with_metrics_jobs(3, 10, &mut metrics, jobs);
            assert_eq!(outs, serial, "outcomes diverged at jobs={jobs}");
            assert_eq!(metrics, serial_metrics, "telemetry diverged at jobs={jobs}");
            assert_eq!(s.run_replications_jobs(3, 10, jobs), serial);
        }
    }

    #[test]
    fn metrics_variant_matches_plain_run_and_accumulates() {
        let s = table1_scenario();
        let mut metrics = desim::MetricSet::new();
        let a = s.run_with_metrics(11, &mut metrics);
        assert_eq!(a, s.run(11), "instrumentation changed the outcome");
        let after_one = metrics
            .counter_value("baseband.inquiry.ids_transmitted")
            .unwrap();
        assert!(after_one > 0);
        let _ = s.run_with_metrics(12, &mut metrics);
        assert!(
            metrics
                .counter_value("baseband.inquiry.ids_transmitted")
                .unwrap()
                > after_one,
            "second trial should accumulate"
        );
    }

    #[test]
    #[should_panic(expected = "needs slaves")]
    fn empty_scenario_rejected() {
        let _ = DiscoveryScenario::new(
            MasterConfig::new(BdAddr::new(1)),
            vec![],
            SimDuration::from_secs(1),
        );
    }
}
