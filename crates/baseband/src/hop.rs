//! Frequency-hop selection: inquiry trains and the 79-channel kernel.
//!
//! ## Inquiry hopping (load-bearing for every experiment)
//!
//! Inquiry uses 32 dedicated frequencies out of the 79. The master splits
//! them into two 16-hop **trains** (A and B), covers one train in 10 ms
//! (two frequencies per even slot), repeats it `N_inquiry = 256` times
//! (2.56 s) and then switches train. A scanning slave listens on a single
//! inquiry frequency that advances by one position every 1.28 s, driven by
//! its own clock bits `CLKN[16:12]` and its address.
//!
//! Whether the slave's current frequency belongs to the master's current
//! train is *the* variable behind Table 1 of the paper: same train →
//! ≈1.6 s mean discovery, different train → the master must first burn a
//! 2.56 s train repetition (≈4.1 s mean).
//!
//! **Simplification (documented in DESIGN.md):** the spec re-partitions
//! train membership gradually over time; we fix train A = positions 0–15
//! and train B = positions 16–31 of the inquiry sequence. On the ≤15 s
//! horizon of the paper's experiments the phenomenology is identical, and
//! the slave's 1.28 s frequency walk is preserved.
//!
//! ## Connection hopping
//!
//! Once connected, master and slave hop over all 79 channels following a
//! pseudo-random sequence derived from the master's address and clock. The
//! [`basic_hop`] kernel reproduces the spec's structure — XOR/add mixing
//! stages, a 14-control-bit butterfly permutation over 5 bits, and the
//! final mod-79 mapping onto the even-first channel list. Constants are
//! property-tested (bijectivity per control word, full channel coverage,
//! even spread) rather than checked against spec test vectors, which is
//! sufficient for simulation purposes and documented as such.

use crate::addr::BdAddr;

/// Number of dedicated inquiry/page frequencies.
pub const NUM_INQUIRY_FREQS: u8 = 32;

/// Frequencies per train (half of the inquiry set).
pub const TRAIN_LEN: u8 = 16;

/// Number of RF channels in the 79-hop system.
pub const NUM_CHANNELS: u8 = 79;

/// One of the two 16-frequency inquiry (or page) trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Train {
    /// The first train (positions 0–15 of the inquiry sequence).
    A,
    /// The second train (positions 16–31).
    B,
}

impl Train {
    /// The other train.
    pub fn other(self) -> Train {
        match self {
            Train::A => Train::B,
            Train::B => Train::A,
        }
    }

    /// The train containing inquiry-sequence position `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn containing(idx: InquiryFreq) -> Train {
        if idx.0 < TRAIN_LEN {
            Train::A
        } else {
            Train::B
        }
    }

    /// The inquiry frequency at offset `k` within this train.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 16`.
    pub fn freq(self, k: u8) -> InquiryFreq {
        assert!(k < TRAIN_LEN, "train offset {k} out of range");
        match self {
            Train::A => InquiryFreq::new(k),
            Train::B => InquiryFreq::new(TRAIN_LEN + k),
        }
    }

    /// Whether this train contains the given frequency.
    pub fn contains(self, f: InquiryFreq) -> bool {
        Train::containing(f) == self
    }

    /// The offset of frequency `f` within this train (inverse of
    /// [`freq`](Train::freq)), or `None` if `f` belongs to the other
    /// train. Used by the skip-ahead scheduler to solve "when does the
    /// master next transmit the frequency a slave listens on" in closed
    /// form.
    pub fn offset_of(self, f: InquiryFreq) -> Option<u8> {
        if self.contains(f) {
            Some(f.index() % TRAIN_LEN)
        } else {
            None
        }
    }
}

/// A position in the 32-frequency inquiry (or page) hopping sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InquiryFreq(u8);

impl InquiryFreq {
    /// Creates a frequency position.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn new(idx: u8) -> Self {
        assert!(idx < NUM_INQUIRY_FREQS, "inquiry freq {idx} out of range");
        InquiryFreq(idx)
    }

    /// The position index (0–31).
    pub fn index(self) -> u8 {
        self.0
    }

    /// The next position, wrapping at 32 — the slave's 1.28 s walk.
    pub fn next(self) -> InquiryFreq {
        InquiryFreq((self.0 + 1) % NUM_INQUIRY_FREQS)
    }

    /// The train this frequency belongs to.
    pub fn train(self) -> Train {
        Train::containing(self)
    }
}

/// The inquiry-scan frequency a device listens on, as a function of its
/// clock phase (`CLKN[16:12]`, advancing every 1.28 s) and its address.
///
/// Different devices map their phase to different frequencies (the spec
/// derives the sequence from the access-code LAP); the per-address rotation
/// models that decorrelation.
pub fn scan_frequency(addr: BdAddr, clkn_16_12: u8) -> InquiryFreq {
    let rot = (addr.hop_input() % NUM_INQUIRY_FREQS as u32) as u8;
    InquiryFreq((clkn_16_12 + rot) % NUM_INQUIRY_FREQS)
}

/// An RF channel of the 79-hop system (0–78).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel(u8);

impl Channel {
    /// Creates a channel.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 79`.
    pub fn new(idx: u8) -> Self {
        assert!(idx < NUM_CHANNELS, "channel {idx} out of range");
        Channel(idx)
    }

    /// The channel index (0–78); channel *k* sits at 2402 + *k* MHz.
    pub fn index(self) -> u8 {
        self.0
    }

    /// Carrier frequency in MHz.
    pub fn mhz(self) -> u32 {
        2402 + self.0 as u32
    }
}

/// The even-first channel list: 0, 2, …, 78, 1, 3, …, 77 (spec Part B
/// §2.6.1). The hop kernel's mod-79 output indexes this list, which
/// guarantees consecutive hops alternate between the lower and upper half
/// of the band.
fn channel_list(i: u8) -> Channel {
    debug_assert!(i < NUM_CHANNELS);
    if i < 40 {
        Channel(2 * i)
    } else {
        Channel(2 * (i - 40) + 1)
    }
}

/// One butterfly stage: conditionally swap two bit positions of a 5-bit
/// value.
fn butterfly(z: u8, ctl: bool, i: u8, j: u8) -> u8 {
    if !ctl {
        return z;
    }
    let bi = (z >> i) & 1;
    let bj = (z >> j) & 1;
    if bi == bj {
        z
    } else {
        z ^ (1 << i) ^ (1 << j)
    }
}

/// The 14-control-bit permutation network over 5 bits (PERM5). Seven
/// stages of two butterflies each; every control word yields a bijection
/// of 0..32 (butterfly networks are involutive per stage).
fn perm5(z: u8, control: u16) -> u8 {
    // (bit-pair swapped per stage) — structure per spec Figure 2.6.3.3.
    const STAGES: [[(u8, u8); 2]; 7] = [
        [(0, 3), (1, 2)],
        [(2, 4), (1, 3)],
        [(1, 4), (0, 3)],
        [(3, 4), (0, 2)],
        [(0, 4), (1, 3)],
        [(0, 1), (2, 3)],
        [(1, 2), (3, 4)],
    ];
    let mut z = z & 0x1F;
    for (s, pairs) in STAGES.iter().enumerate() {
        let c0 = (control >> (2 * s)) & 1 == 1;
        let c1 = (control >> (2 * s + 1)) & 1 == 1;
        z = butterfly(z, c0, pairs[0].0, pairs[0].1);
        z = butterfly(z, c1, pairs[1].0, pairs[1].1);
    }
    z
}

/// The basic (connection-state) hop: channel as a function of the master's
/// 28-bit hop input (`UAP[3:0]‖LAP`) and the 28-bit master clock `CLK`.
///
/// Mirrors the spec kernel's stages: an adder over `CLK[6:2]`, an XOR with
/// address bits, the `perm5` butterfly network controlled by address and
/// clock bits, and a final adder folded mod 79 into the even-first channel
/// list.
pub fn basic_hop(addr: BdAddr, clk: u64) -> Channel {
    let a28 = addr.hop_input();
    let clk = (clk & 0x0FFF_FFFF) as u32;

    // Input stage (X, Y1, Y2 in spec terms).
    let x = ((clk >> 2) & 0x1F) as u8;
    let y1 = ((clk >> 1) & 1) as u8;
    let y2 = 32 * y1 as u32;

    // Address-derived words (A–F in spec terms).
    let a = (((a28 >> 23) & 0x1F) as u8) ^ (((clk >> 21) & 0x1F) as u8);
    let b = ((a28 >> 19) & 0x0F) as u8;
    let c = ((((a28 >> 4) & 0x10)
        | ((a28 >> 3) & 0x08)
        | ((a28 >> 2) & 0x04)
        | ((a28 >> 1) & 0x02)
        | (a28 & 0x01)) as u8)
        ^ (((clk >> 16) & 0x1F) as u8);
    let d = (((a28 >> 10) & 0x1FF) ^ ((clk >> 7) & 0x1FF)) as u16;
    let e = ((a28 >> 13) & 0x40)
        | ((a28 >> 11) & 0x20)
        | ((a28 >> 9) & 0x10)
        | ((a28 >> 7) & 0x08)
        | ((a28 >> 5) & 0x04)
        | ((a28 >> 3) & 0x02)
        | ((a28 >> 1) & 0x01);
    let f = (16u64 * ((clk >> 7) as u64) % 79) as u32;

    // First adder, XOR stage, permutation, final adder.
    let z1 = (x.wrapping_add(a)) & 0x1F;
    let z2 = z1 ^ (b & 0x0F) ^ ((y1) << 4);
    let control = ((c as u16) << 9 | d) & 0x3FFF;
    let z3 = perm5(z2, control);
    let idx = ((z3 as u32 + e + f + y2) % NUM_CHANNELS as u32) as u8;
    channel_list(idx)
}

/// The channel used at clock `clk` by a connection whose master is `addr`
/// (convenience wrapper naming the intent at call sites).
pub fn connection_channel(master: BdAddr, clk: u64) -> Channel {
    basic_hop(master, clk)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_partition_the_inquiry_set() {
        let mut a = 0;
        let mut b = 0;
        for i in 0..NUM_INQUIRY_FREQS {
            match InquiryFreq::new(i).train() {
                Train::A => a += 1,
                Train::B => b += 1,
            }
        }
        assert_eq!((a, b), (16, 16));
    }

    #[test]
    fn train_freq_enumeration_matches_membership() {
        for k in 0..TRAIN_LEN {
            assert!(Train::A.contains(Train::A.freq(k)));
            assert!(Train::B.contains(Train::B.freq(k)));
            assert!(!Train::B.contains(Train::A.freq(k)));
        }
    }

    #[test]
    fn other_train_is_involutive() {
        assert_eq!(Train::A.other(), Train::B);
        assert_eq!(Train::A.other().other(), Train::A);
    }

    #[test]
    fn scan_walk_covers_all_32() {
        let mut f = InquiryFreq::new(0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..32 {
            seen.insert(f.index());
            f = f.next();
        }
        assert_eq!(seen.len(), 32);
        assert_eq!(f.index(), 0, "walk has period 32");
    }

    #[test]
    fn scan_frequency_varies_with_phase_and_address() {
        let a = BdAddr::new(0x1111);
        let b = BdAddr::new(0x2222);
        assert_ne!(scan_frequency(a, 0), scan_frequency(b, 0));
        assert_eq!(scan_frequency(a, 0).next(), scan_frequency(a, 1));
    }

    #[test]
    fn perm5_is_bijective_for_any_control() {
        for control in [0u16, 1, 0x2AAA, 0x3FFF, 0x1357, 0x2468] {
            let mut seen = [false; 32];
            for z in 0..32u8 {
                let out = perm5(z, control);
                assert!(out < 32);
                assert!(!seen[out as usize], "control {control:#x} collides");
                seen[out as usize] = true;
            }
        }
    }

    #[test]
    fn channel_list_is_even_first_permutation() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_CHANNELS {
            seen.insert(channel_list(i).index());
        }
        assert_eq!(seen.len(), 79);
        assert_eq!(channel_list(0).index(), 0);
        assert_eq!(channel_list(39).index(), 78);
        assert_eq!(channel_list(40).index(), 1);
        assert_eq!(channel_list(78).index(), 77);
    }

    #[test]
    fn basic_hop_stays_in_band_and_spreads() {
        let addr = BdAddr::new(0x00A0_1234_5678 & ((1 << 48) - 1));
        let mut counts = [0u32; 79];
        let n = 79 * 64;
        for clk in 0..n {
            let ch = basic_hop(addr, clk as u64 * 4); // even slots
            counts[ch.index() as usize] += 1;
        }
        let used = counts.iter().filter(|&&c| c > 0).count();
        assert!(used >= 70, "poor channel coverage: {used}/79");
        let max = *counts.iter().max().unwrap();
        assert!(max < (n / 79 * 6) as u32, "badly skewed: max={max}");
    }

    #[test]
    fn basic_hop_differs_between_masters() {
        let a = BdAddr::new(0x0000_0000_0001);
        let b = BdAddr::new(0x0000_0000_0002);
        let differs = (0..200u64).any(|clk| basic_hop(a, clk * 4) != basic_hop(b, clk * 4));
        assert!(differs);
    }

    #[test]
    fn channel_mhz() {
        assert_eq!(Channel::new(0).mhz(), 2402);
        assert_eq!(Channel::new(78).mhz(), 2480);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn channel_bounds_checked() {
        let _ = Channel::new(79);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inquiry_freq_bounds_checked() {
        let _ = InquiryFreq::new(32);
    }
}
