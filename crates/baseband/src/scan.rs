//! The slave side of device discovery: scan windows and response backoff.
//!
//! A discoverable slave periodically opens an 11.25 ms scan window and
//! listens on a single inquiry frequency (its position in the 32-frequency
//! sequence advances every 1.28 s with `CLKN[16:12]`). On hearing an ID it
//! does **not** answer at once: it draws a random backoff of up to 1023
//! slots, sleeps, listens again, and answers the *next* ID it hears with
//! an FHS packet 625 µs later (spec 1.1 §10.7.4). The backoff decorrelates
//! the answers of slaves sharing a scan frequency; when it fails, their
//! FHS packets collide — the effect the paper added to BlueHoc.
//!
//! [`ScanMachine`] is the pure state machine; the medium feeds it window
//! boundaries and heard IDs, and executes the actions it returns.

use crate::params::ScanPattern;
use desim::{SimDuration, SimTime};

/// What a scan window listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Inquiry scan: discoverable, answers GIAC IDs.
    Inquiry,
    /// Page scan: connectable, answers its own device access code.
    Page,
}

impl ScanKind {
    /// The kind of the `n`-th window under `pattern` (alternating patterns
    /// flip every window; pure-inquiry patterns always inquiry-scan).
    pub fn of_window(pattern: &ScanPattern, n: u64) -> ScanKind {
        if pattern.interleaves_page_scan() && n % 2 == 1 {
            ScanKind::Page
        } else {
            ScanKind::Inquiry
        }
    }
}

/// Listening status of a scanning slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanPhase {
    /// Between windows, radio parked.
    Sleeping,
    /// In an open window of the given kind; listening until the stored
    /// instant.
    Listening {
        /// What the window listens for.
        kind: ScanKind,
        /// When the window closes.
        until: SimTime,
    },
    /// In response backoff: deaf until the stored instant.
    Backoff {
        /// When the backoff ends.
        until: SimTime,
    },
}

/// Action the medium must take after feeding an event to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanAction {
    /// Nothing to do.
    None,
    /// Start a backoff timer ending at the instant.
    StartBackoff(SimTime),
    /// Transmit an FHS response, then time the post-response backoff.
    Respond {
        /// When to transmit the FHS (625 µs after the heard ID).
        at: SimTime,
        /// When the post-response backoff ends.
        backoff_until: SimTime,
    },
}

/// The inquiry-scan state machine of one slave.
///
/// # Example
///
/// ```
/// use bt_baseband::scan::{ScanMachine, ScanAction, ScanKind};
/// use bt_baseband::params::ScanPattern;
/// use desim::{SimTime, SimDuration, SimRng};
///
/// let mut rng = SimRng::seed_from(1);
/// let mut m = ScanMachine::new(ScanPattern::continuous_inquiry(), 0);
/// m.open_window(SimTime::ZERO, ScanKind::Inquiry, SimTime::from_secs(1));
/// // First ID heard → backoff.
/// let a = m.hear_id(SimTime::from_millis(3), &mut rng);
/// assert!(matches!(a, ScanAction::StartBackoff(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanMachine {
    phase: ScanPhase,
    /// Heard a first ID; the next heard ID triggers the FHS response.
    primed: bool,
    backoff_max_slots: u64,
}

/// Slot length used for backoff arithmetic.
const SLOT: SimDuration = SimDuration::from_units_0125us(5000);

/// FHS response offset after a heard ID.
const RESPONSE_OFFSET: SimDuration = SimDuration::from_units_0125us(5000);

impl ScanMachine {
    /// A machine for a slave with the given pattern and backoff bound.
    pub fn new(_pattern: ScanPattern, backoff_max_slots: u64) -> ScanMachine {
        ScanMachine {
            phase: ScanPhase::Sleeping,
            primed: false,
            backoff_max_slots,
        }
    }

    /// Current listening status.
    pub fn phase(&self) -> ScanPhase {
        self.phase
    }

    /// Whether the machine will respond to the next heard ID.
    pub fn is_primed(&self) -> bool {
        self.primed
    }

    /// True if the slave is listening for inquiry IDs at `now`.
    pub fn hears_inquiry(&self, now: SimTime) -> bool {
        matches!(
            self.phase,
            ScanPhase::Listening { kind: ScanKind::Inquiry, until } if now < until
        )
    }

    /// True if the slave is listening for page IDs at `now`.
    pub fn hears_page(&self, now: SimTime) -> bool {
        matches!(
            self.phase,
            ScanPhase::Listening { kind: ScanKind::Page, until } if now < until
        )
    }

    /// A regular scan window opens. Ignored while in backoff (the backoff
    /// overrides scanning; post-backoff listening is handled by
    /// [`end_backoff`](ScanMachine::end_backoff)).
    pub fn open_window(&mut self, now: SimTime, kind: ScanKind, until: SimTime) {
        debug_assert!(until > now);
        if matches!(self.phase, ScanPhase::Backoff { until } if now < until) {
            return;
        }
        self.phase = ScanPhase::Listening { kind, until };
    }

    /// A scan window closes (no-op if the machine left the window early,
    /// e.g. for a backoff). A *primed* slave is in the inquiry-response
    /// substate: it keeps listening for the next ID instead of sleeping.
    pub fn close_window(&mut self, now: SimTime) {
        if let ScanPhase::Listening { until, .. } = self.phase {
            if now >= until {
                self.phase = if self.primed {
                    ScanPhase::Listening {
                        kind: ScanKind::Inquiry,
                        until: SimTime::MAX,
                    }
                } else {
                    ScanPhase::Sleeping
                };
            }
        }
    }

    /// An inquiry ID was heard on the slave's scan frequency at `now`.
    ///
    /// First hearing → prime and back off a random number of slots.
    /// Primed hearing → respond 625 µs later, then back off again with a
    /// fresh random draw (the spec's post-response behaviour).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the machine was not listening for inquiry IDs.
    pub fn hear_id(&mut self, now: SimTime, rng: &mut desim::SimRng) -> ScanAction {
        debug_assert!(self.hears_inquiry(now), "heard an ID while deaf");
        if self.primed {
            let respond_at = now + RESPONSE_OFFSET;
            // Post-response: new backoff before becoming responsive again;
            // the machine stays primed (the master may have missed the
            // FHS, so the slave answers again after the next hearing).
            let until = respond_at + self.draw_backoff(rng);
            self.phase = ScanPhase::Backoff { until };
            ScanAction::Respond {
                at: respond_at,
                backoff_until: until,
            }
        } else {
            self.primed = true;
            let until = now + self.draw_backoff(rng);
            self.phase = ScanPhase::Backoff { until };
            ScanAction::StartBackoff(until)
        }
    }

    /// The backoff timer fired: re-enter inquiry scan immediately for up
    /// to one window (`post_window_close` = now + Tw), per spec.
    pub fn end_backoff(&mut self, now: SimTime, post_window_close: SimTime) {
        if let ScanPhase::Backoff { until } = self.phase {
            if now >= until {
                self.phase = ScanPhase::Listening {
                    kind: ScanKind::Inquiry,
                    until: post_window_close,
                };
            }
        }
    }

    /// Stops all scanning (device connected or switched off).
    pub fn stop(&mut self) {
        self.phase = ScanPhase::Sleeping;
        self.primed = false;
    }

    /// A conservative lower bound on the first instant at or after `now`
    /// when the machine could hear an inquiry ID, given that `windows`
    /// drives its window openings.
    ///
    /// "Conservative" means *never late*: the machine is provably deaf
    /// strictly before the returned instant, but may still be deaf at it
    /// (a wake-up that finds the slave deaf is harmless — the caller
    /// re-checks the real gates). This is the closed-form query behind
    /// the skip-ahead inquiry scheduler: scan windows, primed listening
    /// and backoff sleeps are all deterministic, so the medium can jump
    /// the inquiry chain over the deaf span instead of probing it slot
    /// pair by slot pair.
    ///
    /// The caller is responsible for knowing whether the window chain is
    /// still armed; a stopped machine whose schedule will never reopen
    /// (halted or connected slave) is deaf forever, which this method
    /// cannot see. `armed_from` is the start of the earliest window the
    /// chain will actually open: a sleeping machine cannot become
    /// receptive inside an earlier on-paper window, because no event will
    /// fire to open it (a chain re-armed mid-window starts at the *next*
    /// window).
    pub fn next_receptive_after(
        &self,
        now: SimTime,
        windows: &WindowSchedule,
        armed_from: SimTime,
    ) -> SimTime {
        // Earliest inquiry-listening instant at or after `t` assuming the
        // window chain executes the schedule from `t` onwards: inside an
        // inquiry window it is `t` itself, otherwise the next inquiry
        // window's start.
        let live = |t: SimTime| match windows.open_window_at(t) {
            Some((ScanKind::Inquiry, _)) => t,
            _ => windows.next_window_of_kind(t, ScanKind::Inquiry),
        };
        match self.phase {
            ScanPhase::Listening {
                kind: ScanKind::Inquiry,
                until,
            } => {
                if now < until {
                    now
                } else if self.primed {
                    // The pending close transitions a primed slave into
                    // the open-ended inquiry-response listen.
                    now
                } else {
                    live(now)
                }
            }
            ScanPhase::Listening {
                kind: ScanKind::Page,
                until,
            } => {
                if self.primed {
                    // Closing a page window while primed also re-enters
                    // the open-ended inquiry listen.
                    now.max(until)
                } else {
                    live(now.max(until))
                }
            }
            // end_backoff re-enters an open-ended inquiry listen the
            // moment the timer fires.
            ScanPhase::Backoff { until } => now.max(until),
            ScanPhase::Sleeping => live(now.max(armed_from)),
        }
    }

    fn draw_backoff(&self, rng: &mut desim::SimRng) -> SimDuration {
        let slots = if self.backoff_max_slots == 0 {
            0
        } else {
            rng.range_inclusive(0, self.backoff_max_slots)
        };
        // At least one slot so the response never lands in the same
        // receive window as the priming ID.
        SLOT * slots.max(1)
    }
}

/// A slave's window timetable: windows of `pattern.window()` length start
/// at `origin + n · pattern.interval()`, with kinds alternating from a
/// random parity when the pattern interleaves page scan.
///
/// The random `origin` and `kind_parity` are the per-trial randomness of
/// the paper's Table 1: they decide where the slave's scan opportunities
/// fall relative to the master's inquiry start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSchedule {
    pattern: ScanPattern,
    origin: SimTime,
    kind_parity: u64,
}

impl WindowSchedule {
    /// A timetable anchored at `origin` with the given alternation parity
    /// (only meaningful for interleaving patterns).
    pub fn new(pattern: ScanPattern, origin: SimTime, kind_parity: u64) -> WindowSchedule {
        WindowSchedule {
            pattern,
            origin,
            kind_parity: kind_parity % 2,
        }
    }

    /// A timetable with random phase and parity. A continuous pattern has
    /// no real window boundaries, so its timetable starts at time zero —
    /// the device is simply always listening.
    pub fn random(pattern: ScanPattern, rng: &mut desim::SimRng) -> WindowSchedule {
        if pattern.is_continuous() {
            return WindowSchedule::new(pattern, SimTime::ZERO, 0);
        }
        let us = rng.below(pattern.interval().as_micros().max(1));
        WindowSchedule::new(pattern, SimTime::from_micros(us), rng.below(2))
    }

    /// The pattern this timetable executes.
    pub fn pattern(&self) -> ScanPattern {
        self.pattern
    }

    /// Start time of window `n`.
    pub fn window_start(&self, n: u64) -> SimTime {
        self.origin + self.pattern.interval() * n
    }

    /// Kind of window `n`.
    pub fn window_kind(&self, n: u64) -> ScanKind {
        ScanKind::of_window(&self.pattern, n + self.kind_parity)
    }

    /// Index of the first window starting at or after `t`.
    pub fn first_window_at_or_after(&self, t: SimTime) -> u64 {
        match t.checked_sub(self.origin) {
            None => 0,
            Some(since) => {
                let interval = self.pattern.interval();
                let n = since.div_duration(interval);
                if (since % interval).is_zero() {
                    n
                } else {
                    n + 1
                }
            }
        }
    }

    /// Start of the next window of `kind` at or after `t` — used by the
    /// paging model to predict when a slave is page-reachable.
    pub fn next_window_of_kind(&self, t: SimTime, kind: ScanKind) -> SimTime {
        let first = self.first_window_at_or_after(t);
        // With interleaving, at most one extra step reaches the right
        // parity; without, every window matches Inquiry and none matches
        // Page unless kinds always Inquiry.
        (first..first + 2)
            .find(|&n| self.window_kind(n) == kind)
            .map(|n| self.window_start(n))
            .unwrap_or(SimTime::MAX)
    }

    /// If a window is open at `t`, its kind and close time.
    pub fn open_window_at(&self, t: SimTime) -> Option<(ScanKind, SimTime)> {
        let since = t.checked_sub(self.origin)?;
        let interval = self.pattern.interval();
        let n = since.div_duration(interval);
        let into = since % interval;
        if into < self.pattern.window() {
            Some((
                self.window_kind(n),
                self.window_start(n) + self.pattern.window(),
            ))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{BACKOFF_MAX_SLOTS, TW_SCAN};

    fn rng() -> desim::SimRng {
        desim::SimRng::seed_from(99)
    }

    fn listening_machine() -> ScanMachine {
        let mut m = ScanMachine::new(ScanPattern::spec_inquiry(), BACKOFF_MAX_SLOTS);
        m.open_window(SimTime::ZERO, ScanKind::Inquiry, SimTime::ZERO + TW_SCAN);
        m
    }

    #[test]
    fn window_kinds_alternate_only_when_configured() {
        let alt = ScanPattern::alternating();
        assert_eq!(ScanKind::of_window(&alt, 0), ScanKind::Inquiry);
        assert_eq!(ScanKind::of_window(&alt, 1), ScanKind::Page);
        assert_eq!(ScanKind::of_window(&alt, 2), ScanKind::Inquiry);
        let pure = ScanPattern::spec_inquiry();
        assert_eq!(ScanKind::of_window(&pure, 1), ScanKind::Inquiry);
    }

    #[test]
    fn first_hearing_primes_and_backs_off() {
        let mut m = listening_machine();
        let t = SimTime::from_millis(1);
        match m.hear_id(t, &mut rng()) {
            ScanAction::StartBackoff(until) => {
                assert!(until > t);
                assert!(until <= t + SimDuration::from_micros(625) * (BACKOFF_MAX_SLOTS));
            }
            other => panic!("expected backoff, got {other:?}"),
        }
        assert!(m.is_primed());
        assert!(!m.hears_inquiry(t));
    }

    #[test]
    fn primed_hearing_responds_625us_later() {
        let mut m = listening_machine();
        let mut r = rng();
        let t1 = SimTime::from_millis(1);
        let ScanAction::StartBackoff(until) = m.hear_id(t1, &mut r) else {
            panic!()
        };
        m.end_backoff(until, until + TW_SCAN);
        assert!(m.hears_inquiry(until));
        let t2 = until + SimDuration::from_micros(100);
        match m.hear_id(t2, &mut r) {
            ScanAction::Respond { at, backoff_until } => {
                assert_eq!(at, t2 + SimDuration::from_micros(625));
                assert!(backoff_until > at);
            }
            other => panic!("expected response, got {other:?}"),
        }
        // After responding the machine is backing off again but remains
        // primed, so a later hearing responds again.
        assert!(m.is_primed());
        assert!(!m.hears_inquiry(t2));
    }

    #[test]
    fn backoff_is_deaf() {
        let mut m = listening_machine();
        let mut r = rng();
        let _ = m.hear_id(SimTime::from_millis(1), &mut r);
        assert!(!m.hears_inquiry(SimTime::from_millis(2)));
        // Regular window openings during backoff are ignored.
        m.open_window(
            SimTime::from_millis(3),
            ScanKind::Inquiry,
            SimTime::from_millis(3) + TW_SCAN,
        );
        assert!(!m.hears_inquiry(SimTime::from_millis(4)));
    }

    #[test]
    fn window_close_respects_early_exit() {
        let mut m = listening_machine();
        let close = SimTime::ZERO + TW_SCAN;
        m.close_window(close);
        assert_eq!(m.phase(), ScanPhase::Sleeping);
        // Reopen, then hear an ID (leaves window), then the stale close
        // arrives: must not clobber the backoff.
        m.open_window(close, ScanKind::Inquiry, close + TW_SCAN);
        let _ = m.hear_id(close + SimDuration::from_micros(10), &mut rng());
        let phase_before = m.phase();
        m.close_window(close + TW_SCAN);
        assert_eq!(m.phase(), phase_before);
    }

    #[test]
    fn page_windows_do_not_hear_inquiry() {
        let mut m = ScanMachine::new(ScanPattern::alternating(), BACKOFF_MAX_SLOTS);
        m.open_window(SimTime::ZERO, ScanKind::Page, SimTime::ZERO + TW_SCAN);
        assert!(!m.hears_inquiry(SimTime::from_micros(10)));
        assert!(m.hears_page(SimTime::from_micros(10)));
    }

    #[test]
    fn stop_clears_state() {
        let mut m = listening_machine();
        let _ = m.hear_id(SimTime::from_millis(1), &mut rng());
        m.stop();
        assert_eq!(m.phase(), ScanPhase::Sleeping);
        assert!(!m.is_primed());
    }

    #[test]
    fn backoff_draw_within_configured_bound() {
        let mut m = ScanMachine::new(ScanPattern::spec_inquiry(), 7);
        m.open_window(SimTime::ZERO, ScanKind::Inquiry, SimTime::ZERO + TW_SCAN);
        let mut r = rng();
        for _ in 0..100 {
            let mut fresh = m;
            let ScanAction::StartBackoff(until) = fresh.hear_id(SimTime::from_millis(1), &mut r)
            else {
                panic!()
            };
            let slots =
                (until - SimTime::from_millis(1)).div_duration(SimDuration::from_micros(625));
            assert!((1..=7).contains(&slots), "slots={slots}");
        }
    }

    #[test]
    fn window_schedule_enumerates_starts_and_kinds() {
        let ws = WindowSchedule::new(ScanPattern::alternating(), SimTime::from_millis(100), 1);
        assert_eq!(ws.window_start(0), SimTime::from_millis(100));
        assert_eq!(ws.window_start(2), SimTime::from_millis(100 + 2560));
        // Parity 1 flips the alternation.
        assert_eq!(ws.window_kind(0), ScanKind::Page);
        assert_eq!(ws.window_kind(1), ScanKind::Inquiry);
    }

    #[test]
    fn first_window_at_or_after_boundaries() {
        let ws = WindowSchedule::new(ScanPattern::spec_inquiry(), SimTime::from_millis(100), 0);
        assert_eq!(ws.first_window_at_or_after(SimTime::ZERO), 0);
        assert_eq!(ws.first_window_at_or_after(SimTime::from_millis(100)), 0);
        assert_eq!(ws.first_window_at_or_after(SimTime::from_millis(101)), 1);
        assert_eq!(ws.first_window_at_or_after(SimTime::from_millis(1380)), 1);
        assert_eq!(ws.first_window_at_or_after(SimTime::from_millis(1381)), 2);
    }

    #[test]
    fn next_window_of_kind_respects_parity() {
        let ws = WindowSchedule::new(ScanPattern::alternating(), SimTime::ZERO, 0);
        // Window 0 is Inquiry, window 1 is Page.
        assert_eq!(
            ws.next_window_of_kind(SimTime::ZERO, ScanKind::Inquiry),
            SimTime::ZERO
        );
        assert_eq!(
            ws.next_window_of_kind(SimTime::from_millis(1), ScanKind::Page),
            SimTime::from_millis(1280)
        );
        // A pure-inquiry slave is never page-reachable.
        let pure = WindowSchedule::new(ScanPattern::continuous_inquiry(), SimTime::ZERO, 0);
        assert_eq!(
            pure.next_window_of_kind(SimTime::ZERO, ScanKind::Page),
            SimTime::MAX
        );
    }

    #[test]
    fn open_window_detection() {
        let ws = WindowSchedule::new(ScanPattern::spec_inquiry(), SimTime::from_millis(10), 0);
        assert_eq!(ws.open_window_at(SimTime::from_millis(5)), None);
        let (kind, close) = ws.open_window_at(SimTime::from_millis(15)).unwrap();
        assert_eq!(kind, ScanKind::Inquiry);
        assert_eq!(close, SimTime::from_millis(10) + TW_SCAN);
        assert_eq!(ws.open_window_at(SimTime::from_millis(50)), None);
        // Continuous pattern: always open.
        let cont = WindowSchedule::new(ScanPattern::continuous_inquiry(), SimTime::ZERO, 0);
        assert!(cont.open_window_at(SimTime::from_secs(3)).is_some());
    }

    #[test]
    fn random_schedule_phase_within_interval() {
        let mut r = rng();
        for _ in 0..32 {
            let ws = WindowSchedule::random(ScanPattern::spec_inquiry(), &mut r);
            assert!(ws.window_start(0) < SimTime::ZERO + ScanPattern::spec_inquiry().interval());
        }
    }

    #[test]
    fn next_receptive_bounds_are_never_late() {
        let ws = WindowSchedule::new(ScanPattern::spec_inquiry(), SimTime::from_millis(100), 0);
        // Listening: receptive immediately while the window is open.
        let m = listening_machine();
        let t = SimTime::from_millis(1);
        assert_eq!(m.next_receptive_after(t, &ws, SimTime::ZERO), t);
        // Past the window close (unprimed): the next scheduled window.
        let past = SimTime::ZERO + TW_SCAN;
        assert_eq!(
            m.next_receptive_after(past, &ws, SimTime::ZERO),
            SimTime::from_millis(100)
        );
        // Backoff: deaf until the timer, receptive right at it.
        let mut backed = listening_machine();
        let ScanAction::StartBackoff(until) = backed.hear_id(t, &mut rng()) else {
            panic!()
        };
        assert_eq!(backed.next_receptive_after(t, &ws, SimTime::ZERO), until);
        assert_eq!(
            backed.next_receptive_after(until, &ws, SimTime::ZERO),
            until
        );
        // Primed machine at window close: keeps listening (open-ended
        // inquiry-response substate), so it is receptive immediately.
        backed.end_backoff(until, until + TW_SCAN);
        let close = until + TW_SCAN;
        assert_eq!(
            backed.next_receptive_after(close, &ws, SimTime::ZERO),
            close
        );
        // Sleeping: the next scheduled window.
        let fresh = ScanMachine::new(ScanPattern::spec_inquiry(), BACKOFF_MAX_SLOTS);
        assert_eq!(
            fresh.next_receptive_after(SimTime::ZERO, &ws, SimTime::ZERO),
            SimTime::from_millis(100)
        );
        // A sleeping machine whose chain is only armed from a later window
        // cannot be woken by an earlier on-paper window: no event opens it.
        assert_eq!(
            fresh.next_receptive_after(SimTime::ZERO, &ws, SimTime::from_millis(200)),
            SimTime::from_millis(100 + 1280)
        );
    }

    #[test]
    fn zero_bound_still_delays_one_slot() {
        let mut m = ScanMachine::new(ScanPattern::spec_inquiry(), 0);
        m.open_window(SimTime::ZERO, ScanKind::Inquiry, SimTime::ZERO + TW_SCAN);
        let ScanAction::StartBackoff(until) = m.hear_id(SimTime::ZERO, &mut rng()) else {
            panic!()
        };
        assert_eq!(until, SimTime::ZERO + SimDuration::from_micros(625));
    }
}
