//! Spec constants and device configuration.
//!
//! Defaults are the Bluetooth 1.1 values the paper recites in §3:
//! `T_inquiry_scan` = 1.28 s, `T_w_inquiry_scan` = 11.25 ms,
//! `N_inquiry` = 256 train repetitions (2.56 s per train), response
//! backoff uniform in [0, 1023] slots. Every one of them is a knob so the
//! ablation benches can sweep them.

use crate::addr::BdAddr;
use crate::hop::{InquiryFreq, Train, NUM_INQUIRY_FREQS, TRAIN_LEN};
use desim::SimDuration;

/// Default scan interval `T_inquiry_scan` / `T_page_scan` (1.28 s).
pub const T_SCAN: SimDuration = SimDuration::from_millis(1280);

/// Default scan window `T_w_inquiry_scan` / `T_w_page_scan` (11.25 ms).
pub const TW_SCAN: SimDuration = SimDuration::from_units_0125us(90_000);

/// Spec train-repetition count before switching trains.
pub const N_INQUIRY: u32 = 256;

/// Duration of one 16-frequency train (16 slots = 10 ms).
pub const TRAIN_DURATION: SimDuration = SimDuration::from_millis(10);

/// Time spent repeating one train before switching (2.56 s).
pub const TRAIN_REPEAT: SimDuration = SimDuration::from_millis(2560);

/// Maximum inquiry length for error-free collection (10.24 s = 4 trains).
pub const MAX_INQUIRY: SimDuration = SimDuration::from_millis(10_240);

/// Maximum inquiry-response backoff, in slots (RAND ∈ [0, 1023]).
pub const BACKOFF_MAX_SLOTS: u64 = 1023;

/// Default page timeout (`pageTO`, 5.12 s).
pub const PAGE_TIMEOUT: SimDuration = SimDuration::from_millis(5120);

/// Default link supervision timeout used when a slave walks out of range.
pub const SUPERVISION_TIMEOUT: SimDuration = SimDuration::from_secs(2);

/// How a master alternates inquiry and connection-management time.
///
/// The paper's Figure 2 uses `periodic(1 s, 5 s)`; its §5 sizing argument
/// uses `periodic(3.84 s, 15.4 s)`. [`DutyCycle::always_inquiry`] is the
/// §4.1 upper-bound configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyCycle {
    inquiry: SimDuration,
    period: SimDuration,
}

impl DutyCycle {
    /// A master that never leaves the inquiry state (the paper's
    /// "most advantageous policy of device discovery").
    pub fn always_inquiry() -> DutyCycle {
        DutyCycle {
            inquiry: SimDuration::from_secs(1),
            period: SimDuration::from_secs(1),
        }
    }

    /// Inquiry for `inquiry` out of every `period`.
    ///
    /// # Panics
    ///
    /// Panics if `inquiry` is zero or exceeds `period`.
    pub fn periodic(inquiry: SimDuration, period: SimDuration) -> DutyCycle {
        assert!(!inquiry.is_zero(), "zero inquiry phase");
        assert!(inquiry <= period, "inquiry phase longer than period");
        DutyCycle { inquiry, period }
    }

    /// The inquiry-phase length.
    pub fn inquiry_len(&self) -> SimDuration {
        self.inquiry
    }

    /// The full cycle length.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    /// The connection-management (service) share of the cycle.
    pub fn service_len(&self) -> SimDuration {
        self.period - self.inquiry
    }

    /// True if the master never leaves inquiry.
    pub fn is_always_inquiry(&self) -> bool {
        self.inquiry == self.period
    }

    /// Fraction of the cycle spent in inquiry — the paper's "average load
    /// of tracking service" (≈24 % for 3.84 s / 15.4 s).
    pub fn inquiry_fraction(&self) -> f64 {
        self.inquiry.as_secs_f64() / self.period.as_secs_f64()
    }
}

impl Default for DutyCycle {
    fn default() -> Self {
        DutyCycle::always_inquiry()
    }
}

/// Which train an inquiring master begins with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartTrain {
    /// Determined by the (random) clock — 50 % A, 50 % B, like real
    /// hardware.
    #[default]
    Random,
    /// Always the given train (Figure 2 pins train A).
    Fixed(Train),
}

/// How the master walks its trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainPolicy {
    /// Spec behaviour: repeat a train `n_inquiry` times (2.56 s), then
    /// switch.
    Alternate {
        /// Repetitions per train before switching (spec: 256).
        n_inquiry: u32,
    },
    /// Transmit a single train only — the Figure 2 simulation setup.
    Single,
}

impl TrainPolicy {
    /// The spec default: alternate every [`N_INQUIRY`] repetitions.
    pub fn spec() -> TrainPolicy {
        TrainPolicy::Alternate {
            n_inquiry: N_INQUIRY,
        }
    }
}

impl Default for TrainPolicy {
    fn default() -> Self {
        TrainPolicy::spec()
    }
}

/// A slave's scan schedule.
///
/// Windows of `window` length open every `interval`. With
/// `interleave_page_scan`, consecutive windows alternate between inquiry
/// scan and page scan — the configuration of the paper's Table 1 slave
/// ("the slave alternates the periods of inquiry scan and page scan").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPattern {
    interval: SimDuration,
    window: SimDuration,
    interleave_page_scan: bool,
}

impl ScanPattern {
    /// Spec-default inquiry scanning: 11.25 ms window every 1.28 s, no
    /// page scan.
    pub fn spec_inquiry() -> ScanPattern {
        ScanPattern {
            interval: T_SCAN,
            window: TW_SCAN,
            interleave_page_scan: false,
        }
    }

    /// The Table 1 slave: alternating inquiry-scan and page-scan windows
    /// of 11.25 ms, one window per 1.28 s.
    pub fn alternating() -> ScanPattern {
        ScanPattern {
            interval: T_SCAN,
            window: TW_SCAN,
            interleave_page_scan: true,
        }
    }

    /// The Figure 2 slave: continuously in inquiry scan.
    pub fn continuous_inquiry() -> ScanPattern {
        ScanPattern {
            interval: T_SCAN,
            window: T_SCAN,
            interleave_page_scan: false,
        }
    }

    /// A custom schedule.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or longer than `interval`.
    pub fn custom(
        interval: SimDuration,
        window: SimDuration,
        interleave_page_scan: bool,
    ) -> ScanPattern {
        assert!(!window.is_zero(), "zero scan window");
        assert!(window <= interval, "scan window longer than interval");
        ScanPattern {
            interval,
            window,
            interleave_page_scan,
        }
    }

    /// Interval between window starts.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Window length.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Whether windows alternate inquiry/page scan.
    pub fn interleaves_page_scan(&self) -> bool {
        self.interleave_page_scan
    }

    /// True if the device listens without gaps (window == interval).
    pub fn is_continuous(&self) -> bool {
        self.window == self.interval && !self.interleave_page_scan
    }
}

impl Default for ScanPattern {
    fn default() -> Self {
        ScanPattern::spec_inquiry()
    }
}

/// Where a slave's scan-frequency walk starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StartFreq {
    /// Uniform over all 32 inquiry frequencies (real hardware — drives the
    /// ≈50/50 same/different-train split of Table 1).
    #[default]
    Random,
    /// Uniform over the frequencies of one train (Figure 2 pins train A).
    InTrain(Train),
    /// A fixed start position.
    Fixed(InquiryFreq),
}

impl StartFreq {
    /// Resolves the start position using `rng` where randomness is called
    /// for.
    pub fn resolve(self, rng: &mut desim::SimRng) -> InquiryFreq {
        match self {
            StartFreq::Random => InquiryFreq::new(rng.below(NUM_INQUIRY_FREQS as u64) as u8),
            StartFreq::InTrain(t) => t.freq(rng.below(TRAIN_LEN as u64) as u8),
            StartFreq::Fixed(f) => f,
        }
    }
}

/// Configuration of one master (a BIPS workstation radio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterConfig {
    /// Device address.
    pub addr: BdAddr,
    /// Inquiry/service alternation.
    duty: DutyCycle,
    /// Train walk policy.
    trains: TrainPolicy,
    /// Starting train.
    start_train: StartTrain,
}

impl MasterConfig {
    /// A master with spec-default behaviour (always inquiring, alternating
    /// trains, random start train).
    pub fn new(addr: BdAddr) -> MasterConfig {
        MasterConfig {
            addr,
            duty: DutyCycle::default(),
            trains: TrainPolicy::default(),
            start_train: StartTrain::default(),
        }
    }

    /// Sets the duty cycle.
    pub fn duty(mut self, duty: DutyCycle) -> MasterConfig {
        self.duty = duty;
        self
    }

    /// Sets the train policy.
    pub fn trains(mut self, trains: TrainPolicy) -> MasterConfig {
        self.trains = trains;
        self
    }

    /// Sets the starting train.
    pub fn start_train(mut self, start: StartTrain) -> MasterConfig {
        self.start_train = start;
        self
    }

    /// The configured duty cycle.
    pub fn duty_cycle(&self) -> DutyCycle {
        self.duty
    }

    /// The configured train policy.
    pub fn train_policy(&self) -> TrainPolicy {
        self.trains
    }

    /// The configured start train.
    pub fn start_train_policy(&self) -> StartTrain {
        self.start_train
    }
}

/// Configuration of one slave (a BIPS handheld radio).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaveConfig {
    /// Device address.
    pub addr: BdAddr,
    scan: ScanPattern,
    start_freq: StartFreq,
    backoff_max_slots: u64,
    halt_when_discovered: bool,
}

impl SlaveConfig {
    /// A slave with spec-default scanning.
    pub fn new(addr: BdAddr) -> SlaveConfig {
        SlaveConfig {
            addr,
            scan: ScanPattern::default(),
            start_freq: StartFreq::default(),
            backoff_max_slots: BACKOFF_MAX_SLOTS,
            halt_when_discovered: false,
        }
    }

    /// Sets the scan pattern.
    pub fn scan(mut self, scan: ScanPattern) -> SlaveConfig {
        self.scan = scan;
        self
    }

    /// Sets the scan-frequency start policy.
    pub fn start_freq(mut self, start: StartFreq) -> SlaveConfig {
        self.start_freq = start;
        self
    }

    /// Sets the maximum response backoff in slots (spec: 1023). The
    /// ablation benches sweep this.
    pub fn backoff_max_slots(mut self, slots: u64) -> SlaveConfig {
        self.backoff_max_slots = slots;
        self
    }

    /// The configured scan pattern.
    pub fn scan_pattern(&self) -> ScanPattern {
        self.scan
    }

    /// The configured start-frequency policy.
    pub fn start_freq_policy(&self) -> StartFreq {
        self.start_freq
    }

    /// The configured backoff bound.
    pub fn backoff_bound(&self) -> u64 {
        self.backoff_max_slots
    }

    /// Makes the slave leave inquiry scan once its FHS has been received —
    /// modeling a BIPS handheld that proceeds to page scan / enrollment
    /// after discovery instead of answering inquiries forever. Figure 2's
    /// "inquiry and connection management" scenario behaves this way.
    pub fn halt_when_discovered(mut self, halt: bool) -> SlaveConfig {
        self.halt_when_discovered = halt;
        self
    }

    /// Whether the slave stops inquiry-scanning after discovery.
    pub fn halts_when_discovered(&self) -> bool {
        self.halt_when_discovered
    }
}

/// How slaves' inquiry-scan frequencies relate to each other.
///
/// The spec derives the inquiry-scan hopping sequence from the **GIAC**,
/// so every device follows the *same* 32-frequency sequence; what differs
/// is the phase input, `CLKN[16:12]` of each device's own clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanFreqModel {
    /// Each slave's clock phase decorrelates its scan position (devices
    /// rarely share a frequency). Collisions are rare.
    #[default]
    PerDevice,
    /// All slaves sit at the same sequence position at any instant — the
    /// BlueHoc modeling the paper's Figure 2 exhibits (every undiscovered
    /// slave answers the same ID packet, so response collisions are the
    /// dominant loss). Use this to regenerate Figure 2.
    SharedSequence,
}

/// How paging is simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageModel {
    /// Analytic: the page lands at the slave's next page-scan window plus
    /// a fixed handshake (the master knows the slave's clock from the
    /// FHS). Cheap and accurate to first order.
    #[default]
    Analytic,
    /// Slot-accurate: the master transmits page ID packets every even
    /// slot on the slave's page frequency; the slave must actually be
    /// listening (page-scan window, not deafened by a response backoff),
    /// and channel errors apply per attempt.
    SlotAccurate,
}

/// Medium-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediumConfig {
    /// Whether simultaneous FHS responses destroy each other — the
    /// mechanism the paper added to BlueHoc. Disable to reproduce
    /// vanilla-BlueHoc optimism in the ablation bench.
    pub fhs_collisions: bool,
    /// How slave scan frequencies relate across devices.
    pub scan_freq_model: ScanFreqModel,
    /// Probability that a transmitted packet (ID or FHS) survives the
    /// channel. The paper's experiments assume an "error-free
    /// environment" (1.0, the default); lower it to study error-prone
    /// cells (ablation A5).
    pub packet_success: f64,
    /// Paging simulation model.
    pub page_model: PageModel,
    /// Page timeout before the master gives up on a slave.
    pub page_timeout: SimDuration,
    /// How long a link survives out-of-range before it is declared lost.
    pub supervision_timeout: SimDuration,
    /// Drive the inquiry chain with the skip-ahead scheduler: instead of
    /// one event per slot pair, the medium computes the next pair any
    /// in-range scanning slave could hear and accounts the silent span in
    /// closed form. Bit-identical to the slot-ticking path (the default);
    /// disable to run the naive chain, e.g. for differential testing.
    pub skip_ahead: bool,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            fhs_collisions: true,
            scan_freq_model: ScanFreqModel::default(),
            packet_success: 1.0,
            page_model: PageModel::default(),
            page_timeout: PAGE_TIMEOUT,
            supervision_timeout: SUPERVISION_TIMEOUT,
            skip_ahead: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_constants_line_up() {
        // 16 slots of 625 µs = one 10 ms train.
        assert_eq!(TRAIN_DURATION.as_micros(), 16 * 625);
        // 256 repetitions of 10 ms = 2.56 s.
        assert_eq!(
            TRAIN_REPEAT.as_micros(),
            N_INQUIRY as u64 * TRAIN_DURATION.as_micros()
        );
        // Four train periods = 10.24 s.
        assert_eq!(MAX_INQUIRY, TRAIN_REPEAT * 4);
        assert_eq!(TW_SCAN.as_secs_f64(), 11.25e-3);
    }

    #[test]
    fn duty_cycle_fractions() {
        let fig2 = DutyCycle::periodic(SimDuration::from_secs(1), SimDuration::from_secs(5));
        assert_eq!(fig2.inquiry_fraction(), 0.2);
        assert_eq!(fig2.service_len(), SimDuration::from_secs(4));
        let sec5 = DutyCycle::periodic(
            SimDuration::from_millis(3840),
            SimDuration::from_millis(15400),
        );
        assert!((sec5.inquiry_fraction() - 0.249).abs() < 0.01, "≈24 % load");
        assert!(DutyCycle::always_inquiry().is_always_inquiry());
    }

    #[test]
    #[should_panic(expected = "longer than period")]
    fn duty_cycle_validates() {
        let _ = DutyCycle::periodic(SimDuration::from_secs(2), SimDuration::from_secs(1));
    }

    #[test]
    fn scan_pattern_shapes() {
        assert!(ScanPattern::continuous_inquiry().is_continuous());
        assert!(!ScanPattern::spec_inquiry().is_continuous());
        assert!(ScanPattern::alternating().interleaves_page_scan());
        let c = ScanPattern::custom(T_SCAN, TW_SCAN, false);
        assert_eq!(c, ScanPattern::spec_inquiry());
    }

    #[test]
    #[should_panic(expected = "longer than interval")]
    fn scan_pattern_validates() {
        let _ = ScanPattern::custom(TW_SCAN, T_SCAN, false);
    }

    #[test]
    fn start_freq_resolution_respects_train() {
        let mut rng = desim::SimRng::seed_from(3);
        for _ in 0..64 {
            let f = StartFreq::InTrain(Train::B).resolve(&mut rng);
            assert_eq!(f.train(), Train::B);
        }
        let fixed = StartFreq::Fixed(InquiryFreq::new(7)).resolve(&mut rng);
        assert_eq!(fixed.index(), 7);
    }

    #[test]
    fn start_freq_random_spans_both_trains() {
        let mut rng = desim::SimRng::seed_from(4);
        let mut a = false;
        let mut b = false;
        for _ in 0..128 {
            match StartFreq::Random.resolve(&mut rng).train() {
                Train::A => a = true,
                Train::B => b = true,
            }
        }
        assert!(a && b);
    }

    #[test]
    fn builders_chain() {
        let m = MasterConfig::new(BdAddr::new(1))
            .duty(DutyCycle::periodic(
                SimDuration::from_secs(1),
                SimDuration::from_secs(5),
            ))
            .trains(TrainPolicy::Single)
            .start_train(StartTrain::Fixed(Train::A));
        assert_eq!(m.train_policy(), TrainPolicy::Single);
        assert_eq!(m.duty_cycle().inquiry_fraction(), 0.2);

        let s = SlaveConfig::new(BdAddr::new(2))
            .scan(ScanPattern::continuous_inquiry())
            .backoff_max_slots(511);
        assert_eq!(s.backoff_bound(), 511);
        assert!(s.scan_pattern().is_continuous());
    }
}
