//! Established master–slave links and the minimal data service.
//!
//! Once paging completes, master and slave share the master's channel-hop
//! sequence and exchange packets in polled slot pairs. BIPS only needs a
//! thin data service on top: the login exchange (a few tens of bytes each
//! way) and presence polls. Data transfer time is modeled as the number of
//! `DM1` packets times the slot-pair duration; link loss is detected by a
//! supervision timeout after the slave leaves radio range.

use crate::packet::Packet;
use crate::{MasterId, SlaveId};
use desim::{SimDuration, SimTime};

/// Duration of one polled exchange (master TX slot + slave RX slot).
pub const POLL_PERIOD: SimDuration = SimDuration::from_micros(1250);

/// An established baseband connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// The piconet master.
    pub master: MasterId,
    /// The connected slave.
    pub slave: SlaveId,
    /// When the connection completed.
    pub established_at: SimTime,
    /// Set while the slave is out of radio range; cleared on return.
    out_of_range_since: Option<SimTime>,
}

impl Link {
    /// A link established at `now`.
    pub fn new(master: MasterId, slave: SlaveId, now: SimTime) -> Link {
        Link {
            master,
            slave,
            established_at: now,
            out_of_range_since: None,
        }
    }

    /// Marks the slave out of range (starts the supervision clock).
    pub fn mark_out_of_range(&mut self, now: SimTime) {
        if self.out_of_range_since.is_none() {
            self.out_of_range_since = Some(now);
        }
    }

    /// Marks the slave back in range (stops the supervision clock).
    pub fn mark_in_range(&mut self) {
        self.out_of_range_since = None;
    }

    /// When the slave went out of range, if it still is.
    pub fn out_of_range_since(&self) -> Option<SimTime> {
        self.out_of_range_since
    }

    /// True if the link must be declared lost at `now` under the given
    /// supervision timeout.
    pub fn supervision_expired(&self, now: SimTime, timeout: SimDuration) -> bool {
        match self.out_of_range_since {
            Some(since) => now.saturating_since(since) >= timeout,
            None => false,
        }
    }

    /// Time to deliver a `len`-byte message over this link: one slot pair
    /// per DM1 packet.
    pub fn transfer_time(len: usize) -> SimDuration {
        POLL_PERIOD * Packet::dm1_count(len) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link() -> Link {
        Link::new(MasterId::new(0), SlaveId::new(3), SimTime::from_secs(1))
    }

    #[test]
    fn transfer_time_scales_with_payload() {
        assert_eq!(Link::transfer_time(0), POLL_PERIOD);
        assert_eq!(Link::transfer_time(17), POLL_PERIOD);
        assert_eq!(Link::transfer_time(18), POLL_PERIOD * 2);
        assert_eq!(Link::transfer_time(100), POLL_PERIOD * 6);
    }

    #[test]
    fn supervision_requires_continuous_absence() {
        let mut l = link();
        let timeout = SimDuration::from_secs(2);
        assert!(!l.supervision_expired(SimTime::from_secs(10), timeout));
        l.mark_out_of_range(SimTime::from_secs(10));
        assert!(!l.supervision_expired(SimTime::from_secs(11), timeout));
        assert!(l.supervision_expired(SimTime::from_secs(12), timeout));
        l.mark_in_range();
        assert!(!l.supervision_expired(SimTime::from_secs(20), timeout));
    }

    #[test]
    fn first_out_of_range_mark_wins() {
        let mut l = link();
        l.mark_out_of_range(SimTime::from_secs(5));
        l.mark_out_of_range(SimTime::from_secs(9));
        assert_eq!(l.out_of_range_since(), Some(SimTime::from_secs(5)));
    }
}
