//! Paging: turning a discovered device into a connected slave.
//!
//! After inquiry, the master holds the slave's `BD_ADDR` and a snapshot of
//! its clock (from the FHS packet), so it can predict the slave's page-scan
//! frequency and window. Paging in this situation completes at the slave's
//! next page-scan window plus a short handshake (page ID → slave ID
//! response → master FHS → slave ack → first POLL/NULL), rather than
//! requiring a blind 2×2.56 s train sweep.
//!
//! The model is therefore *analytic*: [`completion_time`] computes when the
//! page lands from the slave's [`WindowSchedule`]; the medium re-checks
//! reachability (range, radio state, master phase) at that instant and
//! retries until [`PageAttempt::deadline`].

use crate::scan::{ScanKind, WindowSchedule};
use crate::{MasterId, SlaveId};
use desim::{SimDuration, SimTime};

/// Handshake time once master and slave meet on the page frequency:
/// page ID + slave response + FHS + ack + POLL/NULL ≈ 8 slots.
pub const PAGE_HANDSHAKE: SimDuration = SimDuration::from_micros(8 * 625);

/// An in-flight page attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageAttempt {
    /// The paging master.
    pub master: MasterId,
    /// The paged slave.
    pub slave: SlaveId,
    /// When the attempt started.
    pub started: SimTime,
    /// When the master gives up (`started + pageTO`).
    pub deadline: SimTime,
}

impl PageAttempt {
    /// Starts an attempt with the given timeout.
    pub fn new(master: MasterId, slave: SlaveId, now: SimTime, timeout: SimDuration) -> Self {
        PageAttempt {
            master,
            slave,
            started: now,
            deadline: now + timeout,
        }
    }

    /// True if the attempt has exceeded its timeout at `now`.
    pub fn expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }
}

/// When a page started (or retried) at `now` reaches the slave: the end of
/// the handshake beginning at the slave's next page-scan opportunity.
///
/// Returns [`SimTime::MAX`] if the slave never page-scans (its pattern has
/// no page windows), in which case the attempt can only time out.
pub fn completion_time(now: SimTime, slave_windows: &WindowSchedule) -> SimTime {
    // Already inside an open page window? The handshake starts right away.
    if let Some((ScanKind::Page, _close)) = slave_windows.open_window_at(now) {
        return now + PAGE_HANDSHAKE;
    }
    let next = slave_windows.next_window_of_kind(now, ScanKind::Page);
    if next == SimTime::MAX {
        SimTime::MAX
    } else {
        next + PAGE_HANDSHAKE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ScanPattern;

    #[test]
    fn completes_at_next_page_window() {
        // Alternating windows from t=0, parity 0: window 0 (t=0) inquiry,
        // window 1 (t=1.28 s) page.
        let ws = WindowSchedule::new(ScanPattern::alternating(), SimTime::ZERO, 0);
        let done = completion_time(SimTime::from_millis(100), &ws);
        assert_eq!(done, SimTime::from_millis(1280) + PAGE_HANDSHAKE);
    }

    #[test]
    fn completes_immediately_inside_open_page_window() {
        let ws = WindowSchedule::new(ScanPattern::alternating(), SimTime::ZERO, 1);
        // Parity 1: window 0 at t=0 is a page window (11.25 ms long).
        let t = SimTime::from_millis(5);
        assert_eq!(completion_time(t, &ws), t + PAGE_HANDSHAKE);
    }

    #[test]
    fn unreachable_without_page_windows() {
        let ws = WindowSchedule::new(ScanPattern::continuous_inquiry(), SimTime::ZERO, 0);
        assert_eq!(completion_time(SimTime::ZERO, &ws), SimTime::MAX);
    }

    #[test]
    fn attempt_expiry() {
        let a = PageAttempt::new(
            MasterId::new(0),
            SlaveId::new(1),
            SimTime::from_secs(1),
            SimDuration::from_millis(5120),
        );
        assert!(!a.expired(SimTime::from_secs(6)));
        assert!(a.expired(SimTime::from_millis(6120)));
    }

    #[test]
    fn handshake_is_a_few_slots() {
        assert_eq!(PAGE_HANDSHAKE.as_micros(), 5000);
    }
}
