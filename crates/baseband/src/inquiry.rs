//! The master side of device discovery: the inquiry train walker.
//!
//! In the inquiry state a master transmits two ID packets per even slot,
//! stepping through the 16 frequencies of its current train (10 ms per
//! pass), and listens for FHS responses in the odd slots. After
//! `N_inquiry` passes (2.56 s at the spec value) it switches trains — the
//! source of the ≈2.56 s penalty when master and slave start on different
//! trains (Table 1 of the paper).
//!
//! [`InquiryState`] is a pure state machine: the medium drives it one slot
//! pair at a time and transmits the two frequencies it yields.

use crate::hop::{InquiryFreq, Train, TRAIN_LEN};
use crate::params::TrainPolicy;

/// The frequencies a master transmits in one even slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPairPlan {
    /// Frequency of the first half-slot ID packet.
    pub first: InquiryFreq,
    /// Frequency of the second half-slot ID packet (312.5 µs later).
    pub second: InquiryFreq,
}

/// What happened when the walker advanced past a slot pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Advance {
    /// The walker completed a 16-frequency pass over the train.
    pub train_completed: bool,
    /// The walker switched to the other train (implies `train_completed`).
    pub train_switched: bool,
}

/// Master inquiry progress: current train, position, and repetition count.
///
/// # Example
///
/// ```
/// use bt_baseband::inquiry::InquiryState;
/// use bt_baseband::hop::Train;
/// use bt_baseband::params::TrainPolicy;
///
/// let mut inq = InquiryState::new(Train::A, TrainPolicy::Alternate { n_inquiry: 2 });
/// // 8 slot pairs cover one train; after 2 passes the train switches.
/// for _ in 0..16 {
///     let _ = inq.plan();
///     inq.advance();
/// }
/// assert_eq!(inq.train(), Train::B);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InquiryState {
    train: Train,
    /// Offset of the next frequency within the train (0, 2, 4, … 14).
    k: u8,
    /// Completed passes over the current train.
    reps: u32,
    policy: TrainPolicy,
}

impl InquiryState {
    /// Starts an inquiry on `train` under `policy`.
    pub fn new(train: Train, policy: TrainPolicy) -> InquiryState {
        InquiryState {
            train,
            k: 0,
            reps: 0,
            policy,
        }
    }

    /// The current train.
    pub fn train(&self) -> Train {
        self.train
    }

    /// Completed passes over the current train since the last switch.
    pub fn reps(&self) -> u32 {
        self.reps
    }

    /// The two frequencies of the upcoming even slot.
    pub fn plan(&self) -> SlotPairPlan {
        SlotPairPlan {
            first: self.train.freq(self.k),
            second: self.train.freq(self.k + 1),
        }
    }

    /// Advances past one slot pair, handling train wrap and switching.
    pub fn advance(&mut self) -> Advance {
        let mut out = Advance::default();
        self.k += 2;
        if self.k >= TRAIN_LEN {
            self.k = 0;
            self.reps += 1;
            out.train_completed = true;
            if let TrainPolicy::Alternate { n_inquiry } = self.policy {
                if self.reps >= n_inquiry {
                    self.train = self.train.other();
                    self.reps = 0;
                    out.train_switched = true;
                }
            }
        }
        out
    }

    /// Restarts the walker on `train` (e.g. at the start of a new inquiry
    /// phase).
    pub fn restart(&mut self, train: Train) {
        self.train = train;
        self.k = 0;
        self.reps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn one_pass_covers_all_16_frequencies() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::spec());
        let mut seen = HashSet::new();
        for _ in 0..8 {
            let p = inq.plan();
            seen.insert(p.first.index());
            seen.insert(p.second.index());
            let adv = inq.advance();
            assert!(!adv.train_switched);
        }
        assert_eq!(seen.len(), 16);
        assert!(seen
            .iter()
            .all(|&f| Train::A.contains(crate::hop::InquiryFreq::new(f))));
    }

    #[test]
    fn pass_completion_is_flagged_every_8_pairs() {
        let mut inq = InquiryState::new(Train::B, TrainPolicy::spec());
        let mut completions = 0;
        for i in 1..=24 {
            if inq.advance().train_completed {
                completions += 1;
                assert_eq!(i % 8, 0);
            }
        }
        assert_eq!(completions, 3);
        assert_eq!(inq.reps(), 3);
    }

    #[test]
    fn switch_after_n_inquiry_passes() {
        let n = 4;
        let mut inq = InquiryState::new(Train::A, TrainPolicy::Alternate { n_inquiry: n });
        let mut switched_at = None;
        for pair in 1..=(8 * n + 8) {
            if inq.advance().train_switched {
                switched_at = Some(pair);
                break;
            }
        }
        assert_eq!(switched_at, Some(8 * n));
        assert_eq!(inq.train(), Train::B);
        assert_eq!(inq.reps(), 0);
    }

    #[test]
    fn single_policy_never_switches() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::Single);
        for _ in 0..8 * 300 {
            assert!(!inq.advance().train_switched);
        }
        assert_eq!(inq.train(), Train::A);
        assert_eq!(inq.reps(), 300);
    }

    #[test]
    fn spec_timing_2_56s_per_train() {
        // 256 passes × 8 slot pairs × 1.25 ms = 2.56 s.
        let pairs_to_switch = 8 * crate::params::N_INQUIRY as u64;
        let t = desim::SimDuration::from_units_0125us(10_000) * pairs_to_switch;
        assert_eq!(t, crate::params::TRAIN_REPEAT);
    }

    #[test]
    fn restart_resets_progress() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::spec());
        for _ in 0..20 {
            inq.advance();
        }
        inq.restart(Train::B);
        assert_eq!(inq.train(), Train::B);
        assert_eq!(inq.reps(), 0);
        assert_eq!(inq.plan().first, Train::B.freq(0));
    }
}
