//! The master side of device discovery: the inquiry train walker.
//!
//! In the inquiry state a master transmits two ID packets per even slot,
//! stepping through the 16 frequencies of its current train (10 ms per
//! pass), and listens for FHS responses in the odd slots. After
//! `N_inquiry` passes (2.56 s at the spec value) it switches trains — the
//! source of the ≈2.56 s penalty when master and slave start on different
//! trains (Table 1 of the paper).
//!
//! [`InquiryState`] is a pure state machine: the medium drives it one slot
//! pair at a time and transmits the two frequencies it yields.

use crate::hop::{InquiryFreq, Train, TRAIN_LEN};
use crate::params::TrainPolicy;

/// The frequencies a master transmits in one even slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotPairPlan {
    /// Frequency of the first half-slot ID packet.
    pub first: InquiryFreq,
    /// Frequency of the second half-slot ID packet (312.5 µs later).
    pub second: InquiryFreq,
}

/// What happened when the walker advanced past a slot pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Advance {
    /// The walker completed a 16-frequency pass over the train.
    pub train_completed: bool,
    /// The walker switched to the other train (implies `train_completed`).
    pub train_switched: bool,
}

/// Master inquiry progress: current train, position, and repetition count.
///
/// # Example
///
/// ```
/// use bt_baseband::inquiry::InquiryState;
/// use bt_baseband::hop::Train;
/// use bt_baseband::params::TrainPolicy;
///
/// let mut inq = InquiryState::new(Train::A, TrainPolicy::Alternate { n_inquiry: 2 });
/// // 8 slot pairs cover one train; after 2 passes the train switches.
/// for _ in 0..16 {
///     let _ = inq.plan();
///     inq.advance();
/// }
/// assert_eq!(inq.train(), Train::B);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InquiryState {
    train: Train,
    /// Offset of the next frequency within the train (0, 2, 4, … 14).
    k: u8,
    /// Completed passes over the current train.
    reps: u32,
    policy: TrainPolicy,
}

impl InquiryState {
    /// Starts an inquiry on `train` under `policy`.
    pub fn new(train: Train, policy: TrainPolicy) -> InquiryState {
        InquiryState {
            train,
            k: 0,
            reps: 0,
            policy,
        }
    }

    /// The current train.
    pub fn train(&self) -> Train {
        self.train
    }

    /// Completed passes over the current train since the last switch.
    pub fn reps(&self) -> u32 {
        self.reps
    }

    /// The two frequencies of the upcoming even slot.
    pub fn plan(&self) -> SlotPairPlan {
        SlotPairPlan {
            first: self.train.freq(self.k),
            second: self.train.freq(self.k + 1),
        }
    }

    /// Advances past one slot pair, handling train wrap and switching.
    pub fn advance(&mut self) -> Advance {
        let mut out = Advance::default();
        self.k += 2;
        if self.k >= TRAIN_LEN {
            self.k = 0;
            self.reps += 1;
            out.train_completed = true;
            if let TrainPolicy::Alternate { n_inquiry } = self.policy {
                if self.reps >= n_inquiry {
                    self.train = self.train.other();
                    self.reps = 0;
                    out.train_switched = true;
                }
            }
        }
        out
    }

    /// Advances past `n` slot pairs in closed form — equivalent to calling
    /// [`advance`](InquiryState::advance) `n` times, in O(1).
    ///
    /// This is the train-walker half of the skip-ahead scheduler: when the
    /// medium proves a span of slot pairs deaf, it accounts the walker's
    /// progress over the span without dispatching the intervening events.
    pub fn advance_by(&mut self, n: u64) {
        let total = self.k as u64 / 2 + n;
        self.k = ((total % 8) * 2) as u8;
        let wraps = (total / 8) as u32;
        match self.policy {
            TrainPolicy::Single => self.reps += wraps,
            TrainPolicy::Alternate { n_inquiry } => {
                let passes = self.reps + wraps;
                let flips = passes / n_inquiry;
                self.reps = passes % n_inquiry;
                if flips % 2 == 1 {
                    self.train = self.train.other();
                }
            }
        }
    }

    /// Smallest `j ≥ 0` such that the slot pair reached after
    /// [`advance_by(j)`](InquiryState::advance_by) transmits frequency `f`
    /// in one of its two half-slots (`j = 0` is the upcoming pair).
    /// `None` if the walker never visits `f` (Single policy on the other
    /// train). O(1).
    pub fn pairs_until_freq(&self, f: InquiryFreq) -> Option<u64> {
        let want_train = Train::containing(f);
        // The pair whose first half-slot sits at even offset `off & !1`
        // covers `f` (second half-slot when `off` is odd).
        let target_pos = (f.index() % TRAIN_LEN) as u64 / 2;
        let base_pos = self.k as u64 / 2;
        // Candidate pairs hit the right train position every 8 pairs.
        let c0 = (target_pos + 8 - base_pos) % 8;
        match self.policy {
            TrainPolicy::Single => (self.train == want_train).then_some(c0),
            TrainPolicy::Alternate { n_inquiry } => {
                // Train at candidate i: completed passes grow by exactly
                // one per candidate step; the train flips each time the
                // pass count crosses a multiple of `n_inquiry`.
                let w0 = (base_pos + c0) / 8;
                let p0 = self.reps as u64 + w0;
                let want_flips_odd = self.train != want_train;
                let q = p0 / n_inquiry as u64;
                let i = if (q % 2 == 1) == want_flips_odd {
                    0
                } else {
                    (q + 1) * n_inquiry as u64 - p0
                };
                Some(c0 + 8 * i)
            }
        }
    }

    /// Restarts the walker on `train` (e.g. at the start of a new inquiry
    /// phase).
    pub fn restart(&mut self, train: Train) {
        self.train = train;
        self.k = 0;
        self.reps = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn one_pass_covers_all_16_frequencies() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::spec());
        let mut seen = HashSet::new();
        for _ in 0..8 {
            let p = inq.plan();
            seen.insert(p.first.index());
            seen.insert(p.second.index());
            let adv = inq.advance();
            assert!(!adv.train_switched);
        }
        assert_eq!(seen.len(), 16);
        assert!(seen
            .iter()
            .all(|&f| Train::A.contains(crate::hop::InquiryFreq::new(f))));
    }

    #[test]
    fn pass_completion_is_flagged_every_8_pairs() {
        let mut inq = InquiryState::new(Train::B, TrainPolicy::spec());
        let mut completions = 0;
        for i in 1..=24 {
            if inq.advance().train_completed {
                completions += 1;
                assert_eq!(i % 8, 0);
            }
        }
        assert_eq!(completions, 3);
        assert_eq!(inq.reps(), 3);
    }

    #[test]
    fn switch_after_n_inquiry_passes() {
        let n = 4;
        let mut inq = InquiryState::new(Train::A, TrainPolicy::Alternate { n_inquiry: n });
        let mut switched_at = None;
        for pair in 1..=(8 * n + 8) {
            if inq.advance().train_switched {
                switched_at = Some(pair);
                break;
            }
        }
        assert_eq!(switched_at, Some(8 * n));
        assert_eq!(inq.train(), Train::B);
        assert_eq!(inq.reps(), 0);
    }

    #[test]
    fn single_policy_never_switches() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::Single);
        for _ in 0..8 * 300 {
            assert!(!inq.advance().train_switched);
        }
        assert_eq!(inq.train(), Train::A);
        assert_eq!(inq.reps(), 300);
    }

    #[test]
    fn spec_timing_2_56s_per_train() {
        // 256 passes × 8 slot pairs × 1.25 ms = 2.56 s.
        let pairs_to_switch = 8 * crate::params::N_INQUIRY as u64;
        let t = desim::SimDuration::from_units_0125us(10_000) * pairs_to_switch;
        assert_eq!(t, crate::params::TRAIN_REPEAT);
    }

    #[test]
    fn advance_by_matches_repeated_advance() {
        // Closed form ≡ iteration, across policies, positions and spans
        // (including spans crossing multiple train switches).
        let policies = [
            TrainPolicy::Single,
            TrainPolicy::Alternate { n_inquiry: 1 },
            TrainPolicy::Alternate { n_inquiry: 3 },
            TrainPolicy::spec(),
        ];
        let mut rng = desim::SimRng::seed_from(7);
        for policy in policies {
            for train in [Train::A, Train::B] {
                let mut reference = InquiryState::new(train, policy);
                // Desynchronize the starting position.
                for _ in 0..rng.below(40) {
                    reference.advance();
                }
                let mut walked = 0u64;
                for _ in 0..64 {
                    let n = rng.below(5000);
                    let mut jumped = reference;
                    jumped.advance_by(n);
                    for _ in 0..n {
                        reference.advance();
                    }
                    walked += n;
                    assert_eq!(jumped, reference, "policy {policy:?} after {walked} pairs");
                }
            }
        }
    }

    #[test]
    fn advance_by_zero_is_identity() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::spec());
        inq.advance();
        let before = inq;
        inq.advance_by(0);
        assert_eq!(inq, before);
    }

    #[test]
    fn pairs_until_freq_matches_walking_search() {
        let policies = [
            TrainPolicy::Single,
            TrainPolicy::Alternate { n_inquiry: 1 },
            TrainPolicy::Alternate { n_inquiry: 3 },
            TrainPolicy::spec(),
        ];
        let mut rng = desim::SimRng::seed_from(21);
        for policy in policies {
            for train in [Train::A, Train::B] {
                let mut state = InquiryState::new(train, policy);
                for _ in 0..rng.below(30) {
                    state.advance();
                }
                for raw in 0..crate::hop::NUM_INQUIRY_FREQS {
                    let f = InquiryFreq::new(raw);
                    // Brute force: walk until a pair covers `f`.
                    let mut walker = state;
                    let mut expect = None;
                    for j in 0..8 * 4 * crate::params::N_INQUIRY as u64 {
                        let p = walker.plan();
                        if p.first == f || p.second == f {
                            expect = Some(j);
                            break;
                        }
                        walker.advance();
                    }
                    assert_eq!(
                        state.pairs_until_freq(f),
                        expect,
                        "policy {policy:?} start {train:?} freq {raw}"
                    );
                }
            }
        }
    }

    #[test]
    fn restart_resets_progress() {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::spec());
        for _ in 0..20 {
            inq.advance();
        }
        inq.restart(Train::B);
        assert_eq!(inq.train(), Train::B);
        assert_eq!(inq.reps(), 0);
        assert_eq!(inq.plan().first, Train::B.freq(0));
    }
}
