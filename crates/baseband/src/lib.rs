//! # bt-baseband — a slot-accurate Bluetooth 1.1 baseband simulator
//!
//! This crate stands in for the Bluetooth hardware (TI PCI–PCMCIA adapter +
//! 3COM cards under BlueZ) and for the ns-2/BlueHoc simulator used by the
//! BIPS paper (*Experimenting an Indoor Bluetooth-based Positioning
//! Service*, ICDCSW'03). It models the parts of the baseband that determine
//! device-discovery behaviour, at their real timescales:
//!
//! * the 312.5 µs native clock and 625 µs slots ([`clock`]);
//! * the **inquiry** procedure: 32 inquiry frequencies split into two
//!   16-hop trains, two ID packets per even slot, trains repeated
//!   `N_inquiry = 256` times (2.56 s) before switching ([`inquiry`]);
//! * the **inquiry scan** procedure: scan windows of 11.25 ms every
//!   1.28 s, the CLKN-driven scan-frequency hop, and the random response
//!   backoff of up to 1023 slots ([`scan`]);
//! * **FHS response collisions** between slaves answering the same ID
//!   packet — the mechanism the paper added to BlueHoc ([`medium`]);
//! * **paging** and **connection** establishment, plus a minimal data link
//!   used by the BIPS login exchange ([`page`], [`link`]);
//! * the master **duty cycle** that alternates inquiry and connection
//!   management, the knob the paper's evaluation turns ([`schedule`]).
//!
//! The model plugs into the [`desim`] engine either standalone (via
//! [`world::BasebandWorld`]) or embedded in a larger simulation (via
//! [`Baseband::handle`](medium::Baseband::handle) and
//! [`desim::compose::SubScheduler`]).
//!
//! ## Quick start: measure one discovery
//!
//! ```
//! use bt_baseband::{world::BasebandWorld, BdAddr, MasterConfig, SlaveConfig};
//! use bt_baseband::params::{DutyCycle, ScanPattern};
//! use desim::SimTime;
//!
//! let world = BasebandWorld::builder()
//!     .master(MasterConfig::new(BdAddr::new(0x0001)).duty(DutyCycle::always_inquiry()))
//!     .slave(SlaveConfig::new(BdAddr::new(0x1001)).scan(ScanPattern::continuous_inquiry()))
//!     .build();
//! let mut engine = world.into_engine(42);
//! engine.run_until(SimTime::from_secs(11));
//! let found: Vec<_> = engine.world().baseband().discoveries().to_vec();
//! assert_eq!(found.len(), 1);
//! assert!(found[0].at < SimTime::from_secs(11));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod clock;
pub mod discovery;
pub mod hop;
pub mod inquiry;
pub mod link;
pub mod medium;
pub mod packet;
pub mod page;
pub mod params;
pub mod scan;
pub mod schedule;
pub mod world;

pub use addr::BdAddr;
pub use discovery::{DiscoveryOutcome, DiscoveryScenario};
pub use medium::{Baseband, BbEvent, BbNotification, Discovery, MasterId, SlaveId};
pub use params::{MasterConfig, MediumConfig, SlaveConfig};
