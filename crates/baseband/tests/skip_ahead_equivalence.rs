//! Differential equivalence: the skip-ahead inquiry scheduler against
//! the naive slot-ticking chain (`MediumConfig::skip_ahead = false`).
//!
//! Skip-ahead is a pure event-count optimisation — it jumps the `InqTx`
//! chain over slot pairs no slave can hear and accounts them in closed
//! form. Those pairs perform no RNG draws (the `chance()`/`hear_id()`
//! draws in `transmit_id` sit behind the `hears_inquiry`/`scan_freq`
//! gates), so every observable — discovery traces, medium counters and
//! the engine's RNG stream position — must be *bitwise identical*
//! between the two modes, for any topology, duty cycle, scan pattern,
//! scripted range flap or activity toggle.

use bt_baseband::hop::Train;
use bt_baseband::medium::BbStats;
use bt_baseband::params::{
    DutyCycle, MediumConfig, ScanFreqModel, ScanPattern, StartFreq, StartTrain, TrainPolicy,
};
use bt_baseband::world::BasebandWorld;
use bt_baseband::{BbEvent, BdAddr, Discovery, MasterConfig, SlaveConfig};
use desim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// A fully scripted scenario: everything the two runs share.
#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    n_masters: usize,
    n_slaves: usize,
    /// Per-master duty cycle: `None` = always-inquiry, else
    /// `(inquiry_ms, period_ms)`.
    duties: Vec<Option<(u64, u64)>>,
    /// Per-master train policy: `true` = single train A (Figure 2 style).
    single_train: Vec<bool>,
    /// Per-slave scan pattern selector (0 = continuous, 1 = alternating,
    /// 2 = spec 11.25 ms / 1.28 s windows).
    scans: Vec<u8>,
    /// Per-slave halt-on-discovery flag.
    halts: Vec<bool>,
    shared_freq: bool,
    collisions: bool,
    lossy: bool,
    /// Scripted `(at_ms, master, slave, in_range)` toggles.
    flaps: Vec<(u64, usize, usize, bool)>,
    /// Scripted `(at_ms, slave, active)` toggles.
    toggles: Vec<(u64, usize, bool)>,
    horizon_ms: u64,
}

impl Scenario {
    /// Expands one 64-bit generator seed into a random scenario. The
    /// vendored proptest shim only composes range strategies, so the
    /// structured sampling lives here, on a dedicated `SimRng` stream.
    fn from_generator_seed(gen_seed: u64) -> Scenario {
        let mut rng = SimRng::seed_from(gen_seed);
        let n_masters = 1 + rng.below(2) as usize;
        let n_slaves = 1 + rng.below(6) as usize;
        let duties = (0..n_masters)
            .map(|_| {
                rng.chance(0.5)
                    .then(|| (200 + rng.below(1800), 2000 + rng.below(4000)))
            })
            .collect();
        let single_train = (0..n_masters).map(|_| rng.chance(0.5)).collect();
        let scans = (0..n_slaves).map(|_| rng.below(3) as u8).collect();
        let halts = (0..n_slaves).map(|_| rng.chance(0.5)).collect();
        let flaps = (0..rng.below(6))
            .map(|_| {
                (
                    rng.below(8000),
                    rng.below(n_masters as u64) as usize,
                    rng.below(n_slaves as u64) as usize,
                    rng.chance(0.5),
                )
            })
            .collect();
        let toggles = (0..rng.below(4))
            .map(|_| {
                (
                    rng.below(8000),
                    rng.below(n_slaves as u64) as usize,
                    rng.chance(0.5),
                )
            })
            .collect();
        Scenario {
            seed: rng.next_u64(),
            n_masters,
            n_slaves,
            duties,
            single_train,
            scans,
            halts,
            shared_freq: rng.chance(0.5),
            collisions: rng.chance(0.5),
            lossy: rng.chance(0.3),
            flaps,
            toggles,
            horizon_ms: 3000 + rng.below(6000),
        }
    }
}

/// The full observable state of one finished run.
#[derive(Debug, PartialEq)]
struct Observed {
    discoveries: Vec<Discovery>,
    stats: BbStats,
    now: SimTime,
    /// Three draws taken from the engine RNG after the run: equal draws
    /// mean the two runs consumed exactly the same stream prefix.
    rng_tail: [u64; 3],
}

fn run_mode(sc: &Scenario, skip_ahead: bool) -> (Observed, u64) {
    let mut builder = BasebandWorld::builder().medium(MediumConfig {
        fhs_collisions: sc.collisions,
        scan_freq_model: if sc.shared_freq {
            ScanFreqModel::SharedSequence
        } else {
            ScanFreqModel::PerDevice
        },
        packet_success: if sc.lossy { 0.9 } else { 1.0 },
        skip_ahead,
        ..MediumConfig::default()
    });
    for m in 0..sc.n_masters {
        let mut cfg = MasterConfig::new(BdAddr::new(0xA0_0000 + m as u64));
        if let Some((inq, per)) = sc.duties[m] {
            cfg = cfg.duty(DutyCycle::periodic(
                SimDuration::from_millis(inq),
                SimDuration::from_millis(per),
            ));
        }
        if sc.single_train[m] {
            cfg = cfg
                .trains(TrainPolicy::Single)
                .start_train(StartTrain::Fixed(Train::A));
        }
        builder = builder.master(cfg);
    }
    for s in 0..sc.n_slaves {
        let scan = match sc.scans[s] % 3 {
            0 => ScanPattern::continuous_inquiry(),
            1 => ScanPattern::alternating(),
            _ => ScanPattern::spec_inquiry(),
        };
        let mut cfg = SlaveConfig::new(BdAddr::new(0x10_0000 + s as u64))
            .scan(scan)
            .halt_when_discovered(sc.halts[s]);
        if sc.single_train[0] {
            cfg = cfg.start_freq(StartFreq::InTrain(Train::A));
        }
        builder = builder.slave(cfg);
    }
    let world = builder.build();
    let masters: Vec<_> = (0..sc.n_masters).map(|m| world.master(m)).collect();
    let slaves: Vec<_> = (0..sc.n_slaves).map(|s| world.slave(s)).collect();
    let mut engine = world.into_engine(sc.seed);
    for &(at, m, s, on) in &sc.flaps {
        engine.schedule(
            SimTime::from_millis(at),
            BbEvent::set_in_range(masters[m], slaves[s], on),
        );
    }
    for &(at, s, on) in &sc.toggles {
        engine.schedule(
            SimTime::from_millis(at),
            BbEvent::set_slave_active(slaves[s], on),
        );
    }
    engine.run_until(SimTime::from_millis(sc.horizon_ms));
    let steps = engine.steps();
    let now = engine.now();
    let bb = engine.world().baseband();
    let discoveries = bb.discoveries().to_vec();
    let stats = bb.stats();
    let rng = engine.context_mut().rng();
    let observed = Observed {
        discoveries,
        stats,
        now,
        rng_tail: [rng.next_u64(), rng.next_u64(), rng.next_u64()],
    };
    (observed, steps)
}

fn assert_equivalent(sc: &Scenario) {
    let (naive, naive_steps) = run_mode(sc, false);
    let (skip, skip_steps) = run_mode(sc, true);
    assert_eq!(
        naive, skip,
        "naive and skip-ahead runs diverged for {sc:?} \
         (naive {naive_steps} events, skip-ahead {skip_steps})"
    );
    assert!(
        skip_steps <= naive_steps,
        "skip-ahead dispatched more events ({skip_steps}) than the naive \
         chain ({naive_steps}) for {sc:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized masters/slaves/duty-cycles/scan-patterns/range-flaps:
    /// both modes must agree on every observable, and skip-ahead must
    /// never dispatch more events.
    #[test]
    fn skip_ahead_matches_naive(gen_seed in 0u64..u64::MAX) {
        assert_equivalent(&Scenario::from_generator_seed(gen_seed));
    }
}

/// The Table 1 configuration (spec trains, random start frequencies,
/// alternating scan) stays bit-identical across modes and replications.
#[test]
fn table1_style_replications_match() {
    let sc = Scenario {
        seed: 0,
        n_masters: 1,
        n_slaves: 1,
        duties: vec![None],
        single_train: vec![false],
        scans: vec![1],
        halts: vec![false],
        shared_freq: false,
        collisions: true,
        lossy: false,
        flaps: vec![],
        toggles: vec![],
        horizon_ms: 11_000,
    };
    let deriver = desim::SeedDeriver::new(2003);
    for i in 0..40 {
        let mut sc = sc.clone();
        sc.seed = deriver.derive(i);
        assert_equivalent(&sc);
    }
}

/// The Figure 2 configuration (1 s / 5 s duty cycle, single train A,
/// shared scan sequence, FHS collisions, halting slaves) stays
/// bit-identical across modes and replications — the regime where the
/// skip-ahead savings are largest.
#[test]
fn figure2_style_replications_match() {
    let deriver = desim::SeedDeriver::new(1967);
    for &n in &[2usize, 6] {
        let per_curve = desim::SeedDeriver::new(deriver.derive(n as u64));
        for i in 0..20 {
            let sc = Scenario {
                seed: per_curve.derive(i),
                n_masters: 1,
                n_slaves: n,
                duties: vec![Some((1000, 5000))],
                single_train: vec![true],
                scans: vec![0; n],
                halts: vec![true; n],
                shared_freq: true,
                collisions: true,
                lossy: false,
                flaps: vec![],
                toggles: vec![],
                horizon_ms: 14_000,
            };
            assert_equivalent(&sc);
        }
    }
}
