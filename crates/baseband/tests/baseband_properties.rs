//! Property tests for the baseband building blocks.

use bt_baseband::clock::{NativeClock, TICK};
use bt_baseband::hop::{basic_hop, scan_frequency, InquiryFreq, Train};
use bt_baseband::inquiry::InquiryState;
use bt_baseband::params::{ScanPattern, TrainPolicy};
use bt_baseband::scan::{ScanAction, ScanKind, ScanMachine, WindowSchedule};
use bt_baseband::BdAddr;
use desim::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// The inquiry walker covers exactly its train's 16 frequencies per
    /// pass, for any repetition policy.
    #[test]
    fn inquiry_pass_covers_train(n_inquiry in 1u32..16, passes in 1u32..8) {
        let mut inq = InquiryState::new(Train::A, TrainPolicy::Alternate { n_inquiry });
        for _ in 0..passes {
            let train = inq.train();
            let mut seen = HashSet::new();
            for _ in 0..8 {
                let p = inq.plan();
                prop_assert!(train.contains(p.first));
                prop_assert!(train.contains(p.second));
                seen.insert(p.first.index());
                seen.insert(p.second.index());
                inq.advance();
            }
            prop_assert_eq!(seen.len(), 16);
        }
    }

    /// Scan frequencies stay in range and walk one step per 1.28 s phase.
    #[test]
    fn scan_frequency_walks(raw in 0u64..(1 << 48), phase in 0u8..32) {
        let addr = BdAddr::new(raw);
        let f0 = scan_frequency(addr, phase);
        let f1 = scan_frequency(addr, (phase + 1) % 32);
        prop_assert!(f0.index() < 32);
        prop_assert_eq!(f0.next(), f1);
    }

    /// The 79-channel kernel always outputs a legal channel, and the
    /// output depends on the clock.
    #[test]
    fn basic_hop_in_band(raw in 0u64..(1 << 48), clk in 0u64..(1 << 28)) {
        let addr = BdAddr::new(raw);
        let ch = basic_hop(addr, clk);
        prop_assert!(ch.index() < 79);
    }

    /// The native clock's even-slot finder returns an aligned instant no
    /// earlier than `now`.
    #[test]
    fn next_even_slot_is_aligned(phase in 0u64..(1 << 28), now_us in 0u64..10_000_000) {
        let clk = NativeClock::with_phase_ticks(phase);
        let now = SimTime::from_micros(now_us);
        let t = clk.next_even_slot(now);
        prop_assert!(t >= now);
        prop_assert!(t - now < TICK * 4, "more than one slot pair away");
        prop_assert_eq!(clk.clkn(t) % 4, 0, "not an even-slot boundary");
    }

    /// A scan machine never draws a backoff outside its configured bound,
    /// and a respond action is always exactly one slot after the hearing.
    #[test]
    fn scan_machine_backoff_bounded(bound in 0u64..2048, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let mut m = ScanMachine::new(ScanPattern::continuous_inquiry(), bound);
        let t0 = SimTime::from_millis(1);
        m.open_window(t0, ScanKind::Inquiry, SimTime::MAX);
        match m.hear_id(t0, &mut rng) {
            ScanAction::StartBackoff(until) => {
                let slots = (until - t0).div_duration(SimDuration::from_micros(625));
                prop_assert!(slots >= 1 && slots <= bound.max(1));
            }
            other => prop_assert!(false, "unexpected action {:?}", other),
        }
        // After the backoff ends, the primed machine responds to the next
        // hearing exactly one slot later.
        let mut m2 = ScanMachine::new(ScanPattern::continuous_inquiry(), bound);
        m2.open_window(t0, ScanKind::Inquiry, SimTime::MAX);
        let ScanAction::StartBackoff(until) = m2.hear_id(t0, &mut rng) else {
            unreachable!("first hearing always backs off")
        };
        m2.end_backoff(until, SimTime::MAX);
        let t2 = until + SimDuration::from_micros(100);
        match m2.hear_id(t2, &mut rng) {
            ScanAction::Respond { at, backoff_until } => {
                prop_assert_eq!(at, t2 + SimDuration::from_micros(625));
                prop_assert!(backoff_until > at);
            }
            other => prop_assert!(false, "expected respond, got {:?}", other),
        }
    }

    /// Window schedules enumerate consistent windows: `open_window_at`
    /// agrees with `window_start`/`window_kind`.
    #[test]
    fn window_schedule_consistency(origin_ms in 0u64..1280, parity in 0u64..2, n in 0u64..50) {
        let ws = WindowSchedule::new(
            ScanPattern::alternating(),
            SimTime::from_millis(origin_ms),
            parity,
        );
        let start = ws.window_start(n);
        let mid = start + SimDuration::from_micros(100);
        let (kind, close) = ws.open_window_at(mid).expect("window open at its own start");
        prop_assert_eq!(kind, ws.window_kind(n));
        prop_assert_eq!(close, start + ScanPattern::alternating().window());
        // Just after close, nothing is open.
        prop_assert!(ws.open_window_at(close + SimDuration::from_micros(1)).is_none());
        // The next window of the same kind is two intervals away.
        let next_same = ws.next_window_of_kind(start + SimDuration::from_micros(1), kind);
        prop_assert_eq!(next_same, ws.window_start(n + 2));
    }

    /// Inquiry frequencies partition into trains.
    #[test]
    fn freq_train_partition(idx in 0u8..32) {
        let f = InquiryFreq::new(idx);
        let t = f.train();
        prop_assert!(t.contains(f));
        prop_assert!(!t.other().contains(f));
    }
}
