//! CLI for `bips-lint`. Usage:
//!
//! ```console
//! $ cargo run -p bips-lint -- --check
//! $ cargo run -p bips-lint -- --check --format json
//! $ cargo run -p bips-lint -- --check --format sarif
//! $ cargo run -p bips-lint -- --check --sarif-out report.sarif
//! $ cargo run -p bips-lint -- --list-rules
//! $ cargo run -p bips-lint -- --explain serve-panic-reach
//! ```
//!
//! `--check` lints the workspace against the committed baseline and
//! exits 1 if any finding survives — the CI `lint` job gate.
//! `--sarif-out FILE` writes a SARIF 2.1.0 report alongside the
//! primary format in the same scan (CI uploads it as an artifact).

use std::path::PathBuf;
use std::process::ExitCode;

use bips_lint::{apply_baseline, check_workspace, rules, Finding};

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    format: Format,
    sarif_out: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

const USAGE: &str = "usage: bips-lint --check [--root DIR] [--baseline FILE] \
                     [--format text|json|sarif] [--sarif-out FILE] \
                     | --list-rules | --explain RULE";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: PathBuf::from("."),
        baseline: None,
        format: Format::Text,
        sarif_out: None,
        list_rules: false,
        explain: None,
    };
    let mut saw_check = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => saw_check = true,
            "--list-rules" => out.list_rules = true,
            "--explain" => {
                out.explain = Some(argv.next().ok_or("--explain needs a rule id")?);
            }
            "--root" => {
                out.root = PathBuf::from(argv.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                out.baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a file")?));
            }
            "--format" => match argv.next().as_deref() {
                Some("text") => out.format = Format::Text,
                Some("json") => out.format = Format::Json,
                Some("sarif") => out.format = Format::Sarif,
                _ => return Err("--format needs `text`, `json`, or `sarif`".to_string()),
            },
            "--sarif-out" => {
                out.sarif_out = Some(PathBuf::from(
                    argv.next().ok_or("--sarif-out needs a file")?,
                ));
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !saw_check && !out.list_rules && out.explain.is_none() {
        return Err(USAGE.to_string());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in rules::RULES {
            println!("{:18} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &args.explain {
        let Some(r) = rules::RULES.iter().find(|r| r.id == *rule) else {
            eprintln!("bips-lint: unknown rule `{rule}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{}\n  {}\n", r.id, r.summary);
        println!("rationale:\n  {}\n", reflow(r.rationale));
        if r.roots.is_empty() {
            println!("roots:\n  (lexical per-file rule — no call-graph roots)");
        } else {
            println!("roots:\n  {}", reflow(r.roots));
        }
        return ExitCode::SUCCESS;
    }

    // Default baseline location; a missing default file means "empty".
    // An explicitly named baseline must exist.
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("crates/lint/baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) if args.baseline.is_none() && e.kind() == std::io::ErrorKind::NotFound => {
            String::new()
        }
        Err(e) => {
            eprintln!("bips-lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let findings = match check_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bips-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = apply_baseline(findings, &baseline);

    if let Some(path) = &args.sarif_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, to_sarif(&findings)) {
            eprintln!("bips-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match args.format {
        Format::Json => println!("{}", to_json(&findings)),
        Format::Sarif => println!("{}", to_sarif(&findings)),
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            if findings.is_empty() {
                println!("bips-lint: clean ({} rules)", rules::RULES.len());
            } else {
                println!("bips-lint: {} finding(s)", findings.len());
            }
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Collapses the multi-line continuation whitespace of the rule-table
/// string literals for terminal output.
fn reflow(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

/// SARIF 2.1.0, hand-rolled with the same escaping discipline as
/// [`to_json`]: one run, one rule descriptor per catalog entry, one
/// result per finding.
fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \
         \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \
         \"runs\": [{\n    \"tool\": {\"driver\": {\n      \"name\": \"bips-lint\",\n      \
         \"informationUri\": \"docs/LINTS.md\",\n      \"rules\": [",
    );
    for (i, r) in rules::RULES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(r.id),
            json_str(r.summary)
        ));
    }
    out.push_str("\n      ]\n    }},\n    \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n      {{\"ruleId\": {}, \"level\": \"error\", \
             \"message\": {{\"text\": {}}}, \"locations\": [{{\
             \"physicalLocation\": {{\
             \"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}, \"snippet\": {{\"text\": {}}}}}}}}}]}}",
            json_str(f.rule),
            json_str(&f.message),
            json_str(&f.path),
            f.line,
            json_str(&f.snippet)
        ));
    }
    out.push_str(if findings.is_empty() {
        "]\n  }]\n}"
    } else {
        "\n    ]\n  }]\n}"
    });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
