//! CLI for `bips-lint`. Usage:
//!
//! ```console
//! $ cargo run -p bips-lint -- --check
//! $ cargo run -p bips-lint -- --check --format json
//! $ cargo run -p bips-lint -- --list-rules
//! ```
//!
//! `--check` lints the workspace against the committed baseline and
//! exits 1 if any finding survives — the CI `lint` job gate.

use std::path::PathBuf;
use std::process::ExitCode;

use bips_lint::{apply_baseline, check_workspace, rules, Finding};

struct Args {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: bool,
    list_rules: bool,
}

const USAGE: &str = "usage: bips-lint --check [--root DIR] [--baseline FILE] \
                     [--format text|json] | --list-rules";

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        root: PathBuf::from("."),
        baseline: None,
        json: false,
        list_rules: false,
    };
    let mut saw_check = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--check" => saw_check = true,
            "--list-rules" => out.list_rules = true,
            "--root" => {
                out.root = PathBuf::from(argv.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                out.baseline = Some(PathBuf::from(argv.next().ok_or("--baseline needs a file")?));
            }
            "--format" => match argv.next().as_deref() {
                Some("text") => out.json = false,
                Some("json") => out.json = true,
                _ => return Err("--format needs `text` or `json`".to_string()),
            },
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    if !saw_check && !out.list_rules {
        return Err(USAGE.to_string());
    }
    Ok(out)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for (id, desc) in rules::RULES {
            println!("{id:16} {desc}");
        }
        return ExitCode::SUCCESS;
    }

    // Default baseline location; a missing default file means "empty".
    // An explicitly named baseline must exist.
    let baseline_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| args.root.join("crates/lint/baseline.txt"));
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(s) => s,
        Err(e) if args.baseline.is_none() && e.kind() == std::io::ErrorKind::NotFound => {
            String::new()
        }
        Err(e) => {
            eprintln!("bips-lint: cannot read {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
    };

    let findings = match check_workspace(&args.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bips-lint: workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let findings = apply_baseline(findings, &baseline);

    if args.json {
        println!("{}", to_json(&findings));
    } else {
        for f in &findings {
            println!("{f}");
        }
        if findings.is_empty() {
            println!("bips-lint: clean ({} rules)", rules::RULES.len());
        } else {
            println!("bips-lint: {} finding(s)", findings.len());
        }
    }

    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.message),
            json_str(&f.snippet)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
