//! `bips-lint` — workspace determinism & safety analyzer.
//!
//! The simulator's headline guarantee is *bitwise determinism*: the
//! same seed produces the same report on any machine at any worker
//! count (`docs/OBSERVABILITY.md`). That property is one stray
//! `Instant::now()` or one `HashMap` iteration away from silently
//! breaking, and no unit test catches the breakage at the moment it is
//! introduced — only a flaky differential run much later. This crate
//! is the compile-time-adjacent guard: a dependency-free static
//! analyzer over the workspace source tree, run as
//! `cargo run -p bips-lint -- --check` (and as the CI `lint` job).
//!
//! See `docs/LINTS.md` for the rule catalog and the suppression /
//! baseline workflow. The scanner is token-level ([`lexer`]) — no
//! `syn`, no registry access, same hermeticity bar as the rest of the
//! workspace.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod reach;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use lexer::{is_ident, is_punct, Lexed, Tok, TokKind};

/// One lint finding, machine-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`wall-clock`, `hash-iter`, …; see [`rules::RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.path, self.line, self.rule, self.message, self.snippet
        )
    }
}

impl Finding {
    /// The committed-baseline representation: line numbers are omitted
    /// so that unrelated edits above a grandfathered finding do not
    /// invalidate the entry.
    pub fn baseline_entry(&self) -> String {
        format!("{}\t{}\t{}", self.rule, self.path, self.snippet)
    }
}

/// Everything the per-file rules need, computed once per file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    pub source: &'a str,
    pub lexed: Lexed,
    /// Source lines (0-indexed storage for 1-based lines).
    pub lines: Vec<&'a str>,
    /// Half-open line ranges covered by `#[cfg(test)]` items.
    pub test_regions: Vec<(u32, u32)>,
    /// `true` when the whole file is test/bench collateral
    /// (`tests/`, `benches/` directories).
    pub is_test_file: bool,
}

impl FileCtx<'_> {
    /// The trimmed source line (1-based), capped for report output.
    pub fn snippet(&self, line: u32) -> String {
        let raw = self
            .lines
            .get(line.saturating_sub(1) as usize)
            .copied()
            .unwrap_or("")
            .trim();
        let mut s: String = raw.chars().take(120).collect();
        if s.len() < raw.len() {
            s.push('…');
        }
        s
    }

    /// Is this line inside a `#[cfg(test)]` item (or a test file)?
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(lo, hi)| line >= lo && line < hi)
    }
}

/// An inline suppression: `// lint:allow(<rule>): <reason>`.
#[derive(Debug)]
struct Suppression {
    rule: String,
    line: u32,
    reason_ok: bool,
    known_rule: bool,
    used: bool,
}

/// Builds a file's analysis context. `rel_path` decides rule scoping
/// (see `docs/LINTS.md`); it need not exist on disk, which is what the
/// golden-fixture tests rely on.
pub fn make_ctx<'a>(rel_path: &'a str, source: &'a str) -> FileCtx<'a> {
    let lexed = lexer::lex(source);
    let test_regions = test_regions(&lexed.toks);
    FileCtx {
        path: rel_path,
        source,
        lexed,
        lines: source.lines().collect(),
        test_regions,
        is_test_file: is_test_path(rel_path),
    }
}

/// Lints a set of sources as one analysis universe: per-file rules on
/// each file, the interprocedural reachability rules ([`reach`]) over
/// the call graph of the whole set, then each file's inline
/// suppressions applied to the findings that landed in it. Cross-file
/// doc-drift rules (`metric-doc`, `trace-doc`) and the baseline are
/// not run here — see [`check_workspace`] / [`apply_baseline`].
pub fn check_sources(files: &[(String, String)]) -> Vec<Finding> {
    let ctxs: Vec<FileCtx<'_>> = files.iter().map(|(p, s)| make_ctx(p, s)).collect();
    let mut findings = Vec::new();
    for ctx in &ctxs {
        findings.extend(rules::run_all(ctx));
    }
    let parsed: Vec<parser::ParsedFile> = ctxs.iter().map(|c| parser::parse(&c.lexed)).collect();
    let units: Vec<callgraph::Unit<'_>> = ctxs
        .iter()
        .zip(&parsed)
        .map(|(ctx, parsed)| callgraph::Unit { ctx, parsed })
        .collect();
    findings.extend(reach::run(&units));
    for ctx in &ctxs {
        apply_suppressions(ctx, &mut findings);
    }
    findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    findings
}

/// Lints one file's source in a single-file universe (the reach rules
/// see only this file's call graph — exactly what fixtures want).
pub fn check_source(rel_path: &str, source: &str) -> Vec<Finding> {
    check_sources(&[(rel_path.to_string(), source.to_string())])
}

/// Parses suppressions from comments, drops suppressed findings, and
/// appends `bad-suppression` findings for malformed/unknown/unused
/// ones.
fn apply_suppressions(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let mut sups: Vec<Suppression> = Vec::new();
    for (&line, text) in &ctx.lexed.comments {
        // A suppression is a dedicated comment: `// lint:allow(r): why`.
        // Prose that merely *mentions* the syntax (like this file's own
        // docs) must not parse as one, so require it at the start of
        // the comment text (after the `//`/`//!`/`///` marker).
        let body = text.trim_start_matches(['/', '!']).trim_start();
        let mut rest = body;
        while let Some(stripped) = rest.strip_prefix("lint:allow(") {
            let after = stripped;
            let Some(close) = after.find(')') else {
                sups.push(Suppression {
                    rule: String::new(),
                    line,
                    reason_ok: false,
                    known_rule: false,
                    used: false,
                });
                break;
            };
            let rule = after[..close].trim().to_string();
            let tail = &after[close + 1..];
            // Reason: a `:` followed by non-empty text.
            let reason_ok = tail.strip_prefix(':').is_some_and(|r| !r.trim().is_empty());
            let known_rule = rules::RULES.iter().any(|r| r.id == rule);
            sups.push(Suppression {
                rule,
                line,
                reason_ok,
                known_rule,
                used: false,
            });
            rest = tail;
        }
    }

    // A suppression covers its own line (trailing comment) and the
    // next line (comment above the statement) — for findings that
    // landed in this file (reach rules place findings across files).
    findings.retain(|f| {
        if f.path != ctx.path {
            return true;
        }
        for s in &mut sups {
            if s.known_rule
                && s.reason_ok
                && s.rule == f.rule
                && (s.line == f.line || s.line + 1 == f.line)
            {
                s.used = true;
                return false;
            }
        }
        true
    });

    for s in &sups {
        let (problem, fine) = if s.rule.is_empty() {
            ("unterminated `lint:allow(` comment".to_string(), false)
        } else if !s.known_rule {
            (format!("unknown rule `{}` in lint:allow", s.rule), false)
        } else if !s.reason_ok {
            (
                format!(
                    "lint:allow({}) needs a reason: `// lint:allow({}): why`",
                    s.rule, s.rule
                ),
                false,
            )
        } else if !s.used {
            (
                format!(
                    "unused lint:allow({}) — the code no longer trips the rule",
                    s.rule
                ),
                false,
            )
        } else {
            (String::new(), true)
        };
        if !fine {
            findings.push(Finding {
                rule: "bad-suppression",
                path: ctx.path.to_string(),
                line: s.line,
                message: problem,
                snippet: ctx.snippet(s.line),
            });
        }
    }
}

/// Line ranges (half-open, 1-based) of items annotated
/// `#[cfg(test)]` (or any `cfg(...)` mentioning `test`, e.g.
/// `#[cfg(all(test, unix))]`).
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` cfg `(` … test … `)` `]`
        if is_punct(&toks[i], '#')
            && toks.get(i + 1).is_some_and(|t| is_punct(t, '['))
            && toks.get(i + 2).is_some_and(|t| is_ident(t, "cfg"))
            && toks.get(i + 3).is_some_and(|t| is_punct(t, '('))
        {
            // Scan the attribute's argument for the `test` ident.
            let mut j = i + 4;
            let mut depth = 1;
            let mut mentions_test = false;
            let mut mentions_not = false;
            while j < toks.len() && depth > 0 {
                if is_punct(&toks[j], '(') {
                    depth += 1;
                } else if is_punct(&toks[j], ')') {
                    depth -= 1;
                } else if is_ident(&toks[j], "test") {
                    mentions_test = true;
                } else if is_ident(&toks[j], "not") {
                    // `cfg(not(test))` is live code: be conservative and
                    // treat any negated cfg as non-test (stricter side).
                    mentions_not = true;
                }
                j += 1;
            }
            let mentions_test = mentions_test && !mentions_not;
            // Closing `]` of the attribute.
            while j < toks.len() && !is_punct(&toks[j], ']') {
                j += 1;
            }
            j += 1;
            if mentions_test {
                if let Some(span) = item_span(toks, j) {
                    regions.push((toks[i].line, span));
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    regions
}

/// End line (exclusive) of the item starting at token `start`:
/// skips further attributes, then runs to the matching `}` of the
/// item's first brace block, or to a terminating `;`.
fn item_span(toks: &[Tok], mut start: usize) -> Option<u32> {
    // Skip stacked attributes (`#[test] #[should_panic] fn …`).
    while start < toks.len() && is_punct(&toks[start], '#') {
        start += 1; // '#'
        if start < toks.len() && is_punct(&toks[start], '[') {
            let mut depth = 0;
            while start < toks.len() {
                if is_punct(&toks[start], '[') {
                    depth += 1;
                } else if is_punct(&toks[start], ']') {
                    depth -= 1;
                    if depth == 0 {
                        start += 1;
                        break;
                    }
                }
                start += 1;
            }
        }
    }
    let mut i = start;
    while i < toks.len() {
        if is_punct(&toks[i], ';') {
            return Some(toks[i].line + 1);
        }
        if is_punct(&toks[i], '{') {
            let mut depth = 0;
            while i < toks.len() {
                if is_punct(&toks[i], '{') {
                    depth += 1;
                } else if is_punct(&toks[i], '}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(toks[i].line + 1);
                    }
                }
                i += 1;
            }
            return Some(u32::MAX); // unterminated: treat rest as test
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------

/// Test/bench collateral: integration tests, benches, examples.
pub fn is_test_path(rel: &str) -> bool {
    rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/")
}

/// Files the walker skips entirely.
fn is_excluded(rel: &str) -> bool {
    rel.starts_with("target/")
        || rel.starts_with("vendor/")
        || rel.starts_with(".git")
        || rel.contains("/fixtures/")
}

/// Paths where wall-clock reads are legitimate: the engine's opt-in
/// host-time probe, the bench harness, and operator-facing binaries.
pub fn wall_clock_allowed(rel: &str) -> bool {
    rel == "crates/desim/src/probe.rs"
        || rel.starts_with("crates/bench/")
        || rel.starts_with("src/bin/")
}

/// Simulation-path crates where hash-order iteration is forbidden.
pub fn hash_iter_scope(rel: &str) -> bool {
    [
        "crates/desim/src/",
        "crates/baseband/src/",
        "crates/mobility/src/",
        "crates/core/src/",
    ]
    .iter()
    .any(|p| rel.starts_with(p))
}

/// The serving path: panic-freedom is load-bearing here (a poisoned
/// lock would otherwise cascade across every query thread). The graph
/// path walk is included because every `WhereIs` answer runs it.
pub fn serve_panic_scope(rel: &str) -> bool {
    rel == "crates/core/src/service.rs"
        || rel == "crates/core/src/server.rs"
        || rel == "crates/core/src/graph/walk.rs"
}

/// Where metric registrations are checked for name discipline.
pub fn metric_scope(rel: &str) -> bool {
    !rel.starts_with("crates/lint/") && (rel.starts_with("crates/") || rel.starts_with("src/"))
}

// ---------------------------------------------------------------------
// Workspace walk + cross-file rules
// ---------------------------------------------------------------------

/// Lints the whole workspace rooted at `root`: per-file rules on every
/// `.rs` file plus the `metric-doc` drift check against
/// `docs/OBSERVABILITY.md`. Baseline application is the caller's job
/// ([`apply_baseline`]).
pub fn check_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let sources = workspace_sources(root)?;
    let mut findings = check_sources(&sources);
    let mut registrations: Vec<(String, String, u32)> = Vec::new(); // (name, path, line)
    let mut trace_kinds: Vec<(String, u32)> = Vec::new();
    for (rel, source) in &sources {
        if metric_scope(rel) {
            registrations.extend(
                collect_metric_registrations(rel, source)
                    .into_iter()
                    .map(|(name, line)| (name, rel.clone(), line)),
            );
        }
        if rel == TRACE_KIND_FILE {
            trace_kinds = collect_trace_kinds(source);
        }
    }

    let doc_path = root.join("docs/OBSERVABILITY.md");
    if let Ok(doc) = fs::read_to_string(&doc_path) {
        findings.extend(metric_doc_drift(&doc, &registrations));
        findings.extend(trace_doc_drift(&doc, &trace_kinds));
    }

    findings
        .sort_by(|a, b| (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule)));
    Ok(findings)
}

/// Every analyzable `.rs` source under `root` — the same walk and
/// ordering [`check_workspace`] uses — as (workspace-relative path,
/// contents) pairs. Public so the self-parse test can cover exactly
/// the file set the analyzer sees.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::with_capacity(files.len());
    for path in &files {
        out.push((rel_path(root, path), fs::read_to_string(path)?));
    }
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = rel_path(root, &path);
        if is_excluded(&rel) {
            continue;
        }
        if entry.file_type()?.is_dir() {
            walk(root, &path, out)?;
        } else if rel.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Metric names registered in `source` (outside test regions), with
/// `format!` placeholders normalized to `*`. Shared by the
/// `metric-name` rule and the workspace-level `metric-doc` check.
pub fn collect_metric_registrations(rel_path: &str, source: &str) -> Vec<(String, u32)> {
    let lexed = lexer::lex(source);
    let regions = test_regions(&lexed.toks);
    let in_test = |line: u32| {
        is_test_path(rel_path) || regions.iter().any(|&(lo, hi)| line >= lo && line < hi)
    };
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 2 < toks.len() {
        if is_punct(&toks[i], '.')
            && toks[i + 1].kind == TokKind::Ident
            && rules::METRIC_METHODS.contains(&toks[i + 1].text.as_str())
            && is_punct(&toks[i + 2], '(')
            && !in_test(toks[i + 1].line)
        {
            // First argument: an optional `&`, then either a string
            // literal or `format!("…", …)`. Anything else is dynamic
            // and out of reach for a static check.
            let mut j = i + 3;
            if j < toks.len() && is_punct(&toks[j], '&') {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Str {
                out.push((toks[j].text.clone(), toks[j].line));
            } else if j + 3 < toks.len()
                && is_ident(&toks[j], "format")
                && is_punct(&toks[j + 1], '!')
                && is_punct(&toks[j + 2], '(')
                && toks[j + 3].kind == TokKind::Str
            {
                out.push((normalize_wildcards(&toks[j + 3].text), toks[j + 3].line));
            }
            i = j;
            continue;
        }
        i += 1;
    }
    out
}

/// `shard{i}` / `shard<i>` → `shard*`.
pub fn normalize_wildcards(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut depth = 0;
    for c in name.chars() {
        match c {
            '{' | '<' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' | '>' => depth = (depth as i32 - 1).max(0) as usize,
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Names documented in the `## Metric catalog` section: table rows
/// only, first cell only, with the `` `x.y.z` / `.suffix` ``
/// shorthand expanded. Returns (normalized name, doc line).
pub fn doc_metric_names(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_catalog = false;
    let mut prev_full: Option<String> = None;
    for (idx, raw) in doc.lines().enumerate() {
        let line = raw.trim();
        if let Some(h) = line.strip_prefix("## ") {
            in_catalog = h.trim() == "Metric catalog";
            continue;
        }
        if !in_catalog || !line.starts_with('|') {
            continue;
        }
        // First cell: between the first two unescaped '|'.
        let Some(cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        for span in backtick_spans(cell) {
            let name = if let Some(suffix) = span.strip_prefix('.') {
                // `baseband.page.started` / `.completed` shorthand:
                // replace the previous name's last segment.
                let Some(prev) = &prev_full else { continue };
                let Some(stem) = prev.rsplit_once('.').map(|(s, _)| s) else {
                    continue;
                };
                format!("{stem}.{suffix}")
            } else if span.contains('.') {
                prev_full = Some(normalize_wildcards(&span));
                normalize_wildcards(&span)
            } else {
                continue;
            };
            out.push((normalize_wildcards(&name), idx as u32 + 1));
        }
    }
    out
}

fn backtick_spans(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(after[..close].to_string());
        rest = &after[close + 1..];
    }
    out
}

/// Both-direction drift between the doc catalog and live
/// registrations.
pub fn metric_doc_drift(doc: &str, registrations: &[(String, String, u32)]) -> Vec<Finding> {
    let doc_names = doc_metric_names(doc);
    let mut findings = Vec::new();

    // Registration with no catalog entry.
    for (name, path, line) in registrations {
        let norm = normalize_wildcards(name);
        if !doc_names.iter().any(|(d, _)| *d == norm) {
            findings.push(Finding {
                rule: "metric-doc",
                path: path.clone(),
                line: *line,
                message: format!(
                    "metric `{norm}` is registered here but missing from \
                     docs/OBSERVABILITY.md's catalog"
                ),
                snippet: format!("`{norm}`"),
            });
        }
    }

    // Catalog entry with no registration.
    let reg_names: Vec<String> = registrations
        .iter()
        .map(|(n, _, _)| normalize_wildcards(n))
        .collect();
    for (name, line) in &doc_names {
        if !reg_names.iter().any(|r| r == name) {
            findings.push(Finding {
                rule: "metric-doc",
                path: "docs/OBSERVABILITY.md".to_string(),
                line: *line,
                message: format!("documented metric `{name}` is not registered anywhere"),
                snippet: format!("`{name}`"),
            });
        }
    }
    findings
}

/// Where the workspace's trace-event registry lives: the `TraceKind`
/// enum. The `trace-doc` rule cross-checks its variants against the
/// doc catalog.
pub const TRACE_KIND_FILE: &str = "crates/desim/src/tracing.rs";

/// `FrameDecode` → `frame_decode`: the stable snake_case names
/// `TraceKind::name()` uses in JSONL artifacts and the doc catalog.
pub fn trace_kind_snake(variant: &str) -> String {
    let mut out = String::with_capacity(variant.len() + 4);
    for c in variant.chars() {
        if c.is_ascii_uppercase() {
            if !out.is_empty() {
                out.push('_');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

/// Variants of the `TraceKind` enum in `source`, as snake_case names
/// with the declaration line. Token-level: an uppercase identifier at
/// brace depth 1 inside `enum TraceKind { … }` is a variant.
pub fn collect_trace_kinds(source: &str) -> Vec<(String, u32)> {
    let lexed = lexer::lex(source);
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(is_ident(&toks[i], "enum") && is_ident(&toks[i + 1], "TraceKind")) {
            i += 1;
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !is_punct(&toks[j], '{') {
            j += 1;
        }
        let mut depth = 0u32;
        while let Some(t) = toks.get(j) {
            if is_punct(t, '{') {
                depth += 1;
            } else if is_punct(t, '}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if depth == 1
                && t.kind == TokKind::Ident
                && t.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_uppercase())
            {
                out.push((trace_kind_snake(&t.text), t.line));
            }
            j += 1;
        }
        break;
    }
    out
}

/// Names documented in the `## Trace event catalog` section: table
/// rows only, first cell only, backticked snake_case idents.
pub fn doc_trace_kinds(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_catalog = false;
    for (idx, raw) in doc.lines().enumerate() {
        let line = raw.trim();
        if let Some(h) = line.strip_prefix("## ") {
            in_catalog = h.trim() == "Trace event catalog";
            continue;
        }
        if !in_catalog || !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        for span in backtick_spans(cell) {
            if !span.is_empty()
                && span
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                out.push((span, idx as u32 + 1));
            }
        }
    }
    out
}

/// Both-direction drift between the `TraceKind` registry and the doc
/// catalog: every variant needs a catalog row, every row a variant.
pub fn trace_doc_drift(doc: &str, kinds: &[(String, u32)]) -> Vec<Finding> {
    let doc_names = doc_trace_kinds(doc);
    let mut findings = Vec::new();

    for (name, line) in kinds {
        if !doc_names.iter().any(|(d, _)| d == name) {
            findings.push(Finding {
                rule: "trace-doc",
                path: TRACE_KIND_FILE.to_string(),
                line: *line,
                message: format!(
                    "trace event kind `{name}` is registered here but missing from \
                     docs/OBSERVABILITY.md's trace event catalog"
                ),
                snippet: format!("`{name}`"),
            });
        }
    }

    for (name, line) in &doc_names {
        if !kinds.iter().any(|(k, _)| k == name) {
            findings.push(Finding {
                rule: "trace-doc",
                path: "docs/OBSERVABILITY.md".to_string(),
                line: *line,
                message: format!("documented trace event kind `{name}` has no `TraceKind` variant"),
                snippet: format!("`{name}`"),
            });
        }
    }
    findings
}

// ---------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------

/// Applies a committed baseline: findings matching an entry are
/// dropped; entries matching nothing become `stale-baseline` findings
/// (the grandfathered problem was fixed — delete the entry).
pub fn apply_baseline(findings: Vec<Finding>, baseline: &str) -> Vec<Finding> {
    let mut entries: BTreeMap<(String, String, String), (u32, bool)> = BTreeMap::new();
    for (idx, raw) in baseline.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(path), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        entries.insert(
            (rule.to_string(), path.to_string(), snippet.to_string()),
            (idx as u32 + 1, false),
        );
    }

    let mut remaining = Vec::new();
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone(), f.snippet.clone());
        if let Some((_, used)) = entries.get_mut(&key) {
            *used = true;
        } else {
            remaining.push(f);
        }
    }
    for ((rule, path, snippet), (line, used)) in entries {
        if !used {
            remaining.push(Finding {
                rule: "stale-baseline",
                path: "crates/lint/baseline.txt".to_string(),
                line,
                message: format!(
                    "baseline entry for [{rule}] {path} no longer matches any finding — delete it"
                ),
                snippet,
            });
        }
    }
    remaining
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_modules() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lexer::lex(src);
        let regions = test_regions(&lexed.toks);
        assert_eq!(regions, vec![(2, 6)]);
    }

    #[test]
    fn test_regions_handle_cfg_all_and_stacked_attrs() {
        let src = "#[cfg(all(test, unix))]\n#[allow(dead_code)]\nfn t() {\n}\nfn live() {}\n";
        let regions = test_regions(&lexer::lex(src).toks);
        assert_eq!(regions, vec![(1, 5)]);
        let src2 = "#[cfg(feature = \"test\")]\nfn not_test_cfg() {}\n";
        assert!(test_regions(&lexer::lex(src2).toks).is_empty());
    }

    #[test]
    fn wildcard_normalization() {
        assert_eq!(
            normalize_wildcards("core.service.shard{i}.queries"),
            "core.service.shard*.queries"
        );
        assert_eq!(
            normalize_wildcards("engine.events.<type>"),
            "engine.events.*"
        );
        assert_eq!(normalize_wildcards("plain.name"), "plain.name");
    }

    #[test]
    fn doc_parser_expands_suffix_shorthand() {
        let doc = "## Metric catalog\n\n| name | kind |\n|---|---|\n\
                   | `baseband.page.started` / `.completed` | counter |\n\
                   | `engine.events.<type>` | counter |\n\
                   ## Run reports\n\n| `config.jobs` | not a metric |\n";
        let names: Vec<String> = doc_metric_names(doc).into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "baseband.page.started",
                "baseband.page.completed",
                "engine.events.*"
            ]
        );
    }

    #[test]
    fn baseline_round_trip_and_staleness() {
        let f = Finding {
            rule: "entropy",
            path: "crates/x/src/a.rs".into(),
            line: 10,
            message: "no".into(),
            snippet: "let r = thread_rng();".into(),
        };
        let baseline = format!(
            "# comment\n\n{}\nentropy\tgone.rs\told line\n",
            f.baseline_entry()
        );
        let out = apply_baseline(vec![f.clone()], &baseline);
        // The live finding is absorbed; the dangling entry surfaces.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "stale-baseline");
        assert!(out[0].message.contains("gone.rs"));
        // Without the baseline the finding passes through.
        assert_eq!(apply_baseline(vec![f], "").len(), 1);
    }
}
