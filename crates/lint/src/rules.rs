//! The rule set. Each rule walks the token stream of one file; scoping
//! (which paths, whether test regions count) lives with the rule.
//! `docs/LINTS.md` is the user-facing catalog — keep the two in sync.

use crate::lexer::{is_ident, is_punct, Tok, TokKind};
use crate::{FileCtx, Finding};

/// One rule's catalog entry: id and one-line summary (`--list-rules`,
/// and the validity check for `lint:allow(<rule>)`), plus the longer
/// rationale and root declaration that `--explain <rule>` prints — a
/// single table so docs and code can't drift.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub rationale: &'static str,
    /// Call-graph roots for interprocedural rules; empty for lexical
    /// per-file rules.
    pub roots: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "wall-clock",
        summary: "no Instant::now/SystemTime outside desim::probe and bench/operator binaries",
        rationale: "Simulated runs replay from a seed; any host-time observation makes two \
                    replications diverge. Virtual time comes from the engine clock \
                    (desim::SimTime); host time is quarantined in desim::probe and the \
                    bench/operator binaries.",
        roots: "",
    },
    RuleInfo {
        id: "hash-iter",
        summary: "no HashMap/HashSet iteration in simulation crates (hash order is per-process random)",
        rationale: "std's hasher is seeded per process, so HashMap/HashSet iteration order \
                    differs across runs. Lookups are fine; iteration must go through \
                    BTreeMap/BTreeSet or an explicit sort.",
        roots: "",
    },
    RuleInfo {
        id: "entropy",
        summary: "no thread_rng/from_entropy/OsRng — all randomness flows from the run seed",
        rationale: "Every random draw must derive from the run seed (desim::SeedDeriver) or \
                    replications stop being reproducible.",
        roots: "",
    },
    RuleInfo {
        id: "nan-cmp",
        summary: "no partial_cmp().unwrap() or sort_by(partial_cmp) on floats — use total_cmp",
        rationale: "partial_cmp is None on NaN, and NaN reaches a comparator exactly when an \
                    upstream invariant broke — the worst time to panic (or, since Rust 1.81, \
                    to hand sort an inconsistent order). f64::total_cmp is total and free.",
        roots: "",
    },
    RuleInfo {
        id: "serve-panic-reach",
        summary: "no unwrap/expect/panic!/indexing/unchecked div reachable from a serve entry point",
        rationale: "One panic poisons shard locks and cascades into every later query, so the \
                    serve path must be total across the whole call chain, not just within a \
                    file list. Sinks: .unwrap()/.expect(), panic!/unreachable!/todo!/\
                    unimplemented!, slice indexing without .get(), and / or % with a \
                    non-literal non-constant divisor. Externals are opaque-safe (an \
                    unresolved call is not a finding). Subsumes the legacy file-scoped \
                    serve-panic rule via scan-only file roots.",
        roots: "transitive: serve_payload, where_is*, BipsServer::handle; scan-only (body \
                scanned, calls not followed): every fn in crates/core/src/service.rs, \
                crates/core/src/server.rs, crates/core/src/graph/walk.rs",
    },
    RuleInfo {
        id: "serve-lock-reach",
        summary: "no RwLock/Mutex acquisition reachable from the where_is*/serve_payload read path",
        rationale: "The seqlock read path is wait-free by contract: a reader blocking behind \
                    a flush is a tail-latency cliff. Lock helpers \
                    (read_lock/write_lock/lock_mutex) and direct .read()/.write()/.lock() \
                    acquisitions are opaque-unsafe leaf sinks — flagged where they appear, \
                    bodies never traversed. Writer-side arms reached via serve_payload \
                    suppress at the sink with a documented reason. Generalizes the legacy \
                    single-file serve-reader-lock rule to the whole workspace.",
        roots: "transitive: serve_payload, where_is*",
    },
    RuleInfo {
        id: "serve-alloc-reach",
        summary: "no Box::new/vec!/format!/to_string/collect/String::from reachable from the query path",
        rationale: "The WhereIs query path is pinned zero-alloc at runtime (query_alloc \
                    counter); this is its static twin, catching an allocation before a \
                    runtime test happens to hit it. Allocating names are opaque-unsafe \
                    sinks; everything else external is opaque-safe.",
        roots: "transitive: where_is*",
    },
    RuleInfo {
        id: "seqlock-ordering",
        summary: "seqlock seq words: Acquire read-validate, fenced re-check, seq+1/fence/payload/seq+2 publish",
        rationale: "DESIGN.md §7 fixes the seqlock shape: readers enter with a seq.load(\
                    Acquire) and may only re-check with Relaxed behind an atomic::fence(\
                    Acquire); writers bracket payload stores between an odd store (fenced \
                    with Release if the store itself is Relaxed) and a final \
                    seq.store(Release). Any fn touching a `seq` atomic is checked; \
                    RMW-only fns (sequence allocators) are out of scope.",
        roots: "every non-test fn with a `seq.load/seq.store` atomic access (no call-graph \
                traversal — the shape check is per-fn)",
    },
    RuleInfo {
        id: "unsafe-safety",
        summary: "every `unsafe` needs a `// SAFETY:` comment on or just above it",
        rationale: "An unsafe block is a proof obligation; the comment states the invariant \
                    that discharges it, where the next editor will see it.",
        roots: "",
    },
    RuleInfo {
        id: "metric-name",
        summary: "metric names follow `crate.section.name` (2–4 lowercase dotted segments)",
        rationale: "Keeps the catalog in docs/OBSERVABILITY.md greppable and the per-crate \
                    prefixes unambiguous.",
        roots: "",
    },
    RuleInfo {
        id: "metric-doc",
        summary: "metric registrations and docs/OBSERVABILITY.md's catalog must agree",
        rationale: "The observability doc is the operator contract; a metric that exists in \
                    code but not the doc (or vice versa) is a silent drift.",
        roots: "",
    },
    RuleInfo {
        id: "trace-doc",
        summary: "TraceKind variants and docs/OBSERVABILITY.md's trace event catalog must agree",
        rationale: "Same drift guard as metric-doc, for the trace event taxonomy.",
        roots: "",
    },
    RuleInfo {
        id: "bad-suppression",
        summary: "lint:allow must name a real rule, give a reason, and suppress something",
        rationale: "A suppression that names no real rule, carries no reason, or suppresses \
                    nothing is debt pretending to be documentation.",
        roots: "",
    },
    RuleInfo {
        id: "stale-baseline",
        summary: "baseline entries must still match a finding — delete fixed ones",
        rationale: "The baseline is a ratchet: once a finding is fixed its entry must go, or \
                    the entry will silently excuse a future regression at the same site.",
        roots: "",
    },
];

/// Methods on `desim::metrics::MetricSet` that register a metric name.
pub const METRIC_METHODS: &[&str] = &[
    "inc",
    "add",
    "set_counter",
    "gauge",
    "observe",
    "observe_stats",
    "histogram",
];

/// Runs all per-file rules (suppressions are applied by the caller).
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    wall_clock(ctx, &mut out);
    hash_iter(ctx, &mut out);
    entropy(ctx, &mut out);
    nan_cmp(ctx, &mut out);
    unsafe_safety(ctx, &mut out);
    metric_name(ctx, &mut out);
    out
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line,
        message,
        snippet: ctx.snippet(line),
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// `Instant::now()` / `SystemTime` outside the sanctioned host-time
/// islands. Test code may time itself; simulation code may not.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if crate::wall_clock_allowed(ctx.path) || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        if is_ident(t, "Instant")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 3).is_some_and(|t| is_ident(t, "now"))
        {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                "Instant::now() on a simulation path — virtual time comes from the \
                 engine clock (desim::SimTime); host time only via desim::probe"
                    .to_string(),
            ));
        }
        if is_ident(t, "SystemTime") || is_ident(t, "UNIX_EPOCH") {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                format!(
                    "{} on a simulation path — runs must not observe host time",
                    t.text
                ),
            ));
        }
    }
}

/// Iteration methods whose order leaks the hasher state.
const ORDER_LEAKING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// HashMap/HashSet iteration in the simulation crates. Two passes:
/// find identifiers bound to hash collections (type annotations and
/// `= HashMap::new()`-style initializers), then flag order-dependent
/// uses of those identifiers. Lookups (`get`, `insert`, `contains_key`)
/// stay legal — only iteration order is the hazard.
fn hash_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::hash_iter_scope(ctx.path) || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;

    // Pass 1: names bound to HashMap/HashSet.
    let mut bound: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(is_ident(t, "HashMap") || is_ident(t, "HashSet")) || ctx.in_test(t.line) {
            continue;
        }
        // Walk back over a `std::collections::`-style path.
        let mut k = i;
        while k >= 3
            && is_punct(&toks[k - 1], ':')
            && is_punct(&toks[k - 2], ':')
            && toks[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        // `name: path::HashMap<…>` or `name = path::HashMap::new()`.
        if k >= 2
            && (is_punct(&toks[k - 1], ':') || is_punct(&toks[k - 1], '='))
            && toks[k - 2].kind == TokKind::Ident
        {
            let name = toks[k - 2].text.clone();
            if !bound.contains(&name) {
                bound.push(name);
            }
        }
    }
    if bound.is_empty() {
        return;
    }

    // Pass 2: order-dependent uses.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bound.contains(&t.text) || ctx.in_test(t.line) {
            continue;
        }
        // map.iter() / map.drain(..) / …
        if toks.get(i + 1).is_some_and(|n| is_punct(n, '.'))
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ORDER_LEAKING.contains(&m.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|p| is_punct(p, '('))
        {
            out.push(finding(
                ctx,
                "hash-iter",
                t.line,
                format!(
                    "iterating hash-ordered `{}` via `.{}()` — order depends on the \
                     per-process hasher seed; use BTreeMap/BTreeSet or sort first",
                    t.text,
                    toks[i + 2].text
                ),
            ));
            continue;
        }
        // `for x in map {` / `for (k, v) in &map {` — the identifier is
        // the last token before the loop-body `{`.
        if toks.get(i + 1).is_some_and(|n| is_punct(n, '{')) && in_for_header(toks, i) {
            out.push(finding(
                ctx,
                "hash-iter",
                t.line,
                format!(
                    "for-loop over hash-ordered `{}` — order depends on the per-process \
                     hasher seed; use BTreeMap/BTreeSet or sort first",
                    t.text
                ),
            ));
        }
    }
}

/// Does a `for … in` header (same statement, no intervening `{` or
/// `;`) precede token `i`?
fn in_for_header(toks: &[Tok], i: usize) -> bool {
    let mut saw_in = false;
    for j in (0..i).rev() {
        let t = &toks[j];
        if is_punct(t, '{') || is_punct(t, ';') || is_punct(t, '}') {
            return false;
        }
        if is_ident(t, "in") {
            saw_in = true;
        }
        if is_ident(t, "for") {
            return saw_in;
        }
    }
    false
}

/// Ambient randomness: every random draw must derive from the run
/// seed (`SeedDeriver`), or replications stop being reproducible.
fn entropy(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.toks {
        if ["thread_rng", "from_entropy", "OsRng", "getrandom"]
            .iter()
            .any(|b| is_ident(t, b))
        {
            out.push(finding(
                ctx,
                "entropy",
                t.line,
                format!(
                    "`{}` draws ambient entropy — all randomness must flow from the \
                     run seed (desim::SeedDeriver)",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// NaN safety
// ---------------------------------------------------------------------

/// `partial_cmp(..).unwrap()/.expect(..)` and comparator closures
/// built on `partial_cmp`: both panic (or misbehave) on NaN, and NaN
/// reaches them exactly when an upstream invariant broke — the worst
/// time to panic. `f64::total_cmp` is total and free.
fn nan_cmp(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if is_ident(t, "partial_cmp") {
            // Skip trait-impl definitions (`fn partial_cmp(...)`).
            if i > 0 && is_ident(&toks[i - 1], "fn") {
                continue;
            }
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|d| is_punct(d, '.'))
                    && toks
                        .get(close + 2)
                        .is_some_and(|m| is_ident(m, "unwrap") || is_ident(m, "expect"))
                {
                    out.push(finding(
                        ctx,
                        "nan-cmp",
                        t.line,
                        "partial_cmp().unwrap/expect panics on NaN — use f64::total_cmp"
                            .to_string(),
                    ));
                }
            }
        }
        // sort_by(|a, b| a.partial_cmp(b) …) and friends.
        if [
            "sort_by",
            "sort_unstable_by",
            "min_by",
            "max_by",
            "binary_search_by",
        ]
        .iter()
        .any(|m| is_ident(t, m))
            && toks.get(i + 1).is_some_and(|p| is_punct(p, '('))
        {
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks[i + 2..close]
                    .iter()
                    .any(|x| is_ident(x, "partial_cmp"))
                {
                    out.push(finding(
                        ctx,
                        "nan-cmp",
                        t.line,
                        format!(
                            "`{}` with a partial_cmp comparator — NaN makes the order \
                             inconsistent (UB for sort since Rust 1.81); use total_cmp",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open` (which must be a `(`).
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    if !toks.get(open).is_some_and(|t| is_punct(t, '(')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, '(') {
            depth += 1;
        } else if is_punct(t, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Unsafe hygiene
// ---------------------------------------------------------------------

/// Every `unsafe` keyword needs a `// SAFETY:` comment on its line or
/// within the three lines above (rustdoc `# Safety` sections on the
/// preceding doc comment also count).
fn unsafe_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let mut flagged_lines = Vec::new();
    for t in &ctx.lexed.toks {
        if !is_ident(t, "unsafe") || flagged_lines.contains(&t.line) {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let justified = (lo..=t.line).any(|l| {
            ctx.lexed
                .comments
                .get(&l)
                .is_some_and(|c| c.contains("SAFETY:") || c.contains("# Safety"))
        });
        if !justified {
            flagged_lines.push(t.line);
            out.push(finding(
                ctx,
                "unsafe-safety",
                t.line,
                "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                 makes this sound"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Metric naming
// ---------------------------------------------------------------------

/// Registered metric names must follow `crate.section.name`: 2–4
/// dot-separated segments of `[a-z0-9_]` (with `format!` placeholders
/// as `*`). Keeps the catalog in `docs/OBSERVABILITY.md` greppable and
/// the per-crate prefixes unambiguous.
fn metric_name(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::metric_scope(ctx.path) || ctx.is_test_file {
        return;
    }
    for (name, line) in crate::collect_metric_registrations(ctx.path, ctx.source) {
        if ctx.in_test(line) {
            continue;
        }
        let norm = crate::normalize_wildcards(&name);
        if !well_formed_metric(&norm) {
            out.push(finding(
                ctx,
                "metric-name",
                line,
                format!(
                    "metric name `{name}` does not follow `crate.section.name` \
                     (2–4 lowercase dotted segments)"
                ),
            ));
        }
    }
}

fn well_formed_metric(norm: &str) -> bool {
    let segs: Vec<&str> = norm.split('.').collect();
    if !(2..=4).contains(&segs.len()) {
        return false;
    }
    let seg_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '*')
    };
    segs.iter().all(|s| seg_ok(s))
        && segs[0]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase())
}
