//! The rule set. Each rule walks the token stream of one file; scoping
//! (which paths, whether test regions count) lives with the rule.
//! `docs/LINTS.md` is the user-facing catalog — keep the two in sync.

use crate::lexer::{is_ident, is_punct, Tok, TokKind};
use crate::{FileCtx, Finding};

/// Every rule id with a one-line description (`--list-rules`, and the
/// validity check for `lint:allow(<rule>)`).
pub const RULES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "no Instant::now/SystemTime outside desim::probe and bench/operator binaries",
    ),
    (
        "hash-iter",
        "no HashMap/HashSet iteration in simulation crates (hash order is per-process random)",
    ),
    (
        "entropy",
        "no thread_rng/from_entropy/OsRng — all randomness flows from the run seed",
    ),
    (
        "nan-cmp",
        "no partial_cmp().unwrap() or sort_by(partial_cmp) on floats — use total_cmp",
    ),
    (
        "serve-panic",
        "no unwrap/expect/panic!/indexing on the serving path (core service/server)",
    ),
    (
        "serve-reader-lock",
        "no RwLock/Mutex acquisition reachable from the where_is*/serve_payload read path",
    ),
    (
        "unsafe-safety",
        "every `unsafe` needs a `// SAFETY:` comment on or just above it",
    ),
    (
        "metric-name",
        "metric names follow `crate.section.name` (2–4 lowercase dotted segments)",
    ),
    (
        "metric-doc",
        "metric registrations and docs/OBSERVABILITY.md's catalog must agree",
    ),
    (
        "trace-doc",
        "TraceKind variants and docs/OBSERVABILITY.md's trace event catalog must agree",
    ),
    (
        "bad-suppression",
        "lint:allow must name a real rule, give a reason, and suppress something",
    ),
    (
        "stale-baseline",
        "baseline entries must still match a finding — delete fixed ones",
    ),
];

/// Methods on `desim::metrics::MetricSet` that register a metric name.
pub const METRIC_METHODS: &[&str] = &[
    "inc",
    "add",
    "set_counter",
    "gauge",
    "observe",
    "observe_stats",
    "histogram",
];

/// Runs all per-file rules (suppressions are applied by the caller).
pub fn run_all(ctx: &FileCtx<'_>) -> Vec<Finding> {
    let mut out = Vec::new();
    wall_clock(ctx, &mut out);
    hash_iter(ctx, &mut out);
    entropy(ctx, &mut out);
    nan_cmp(ctx, &mut out);
    serve_panic(ctx, &mut out);
    serve_reader_lock(ctx, &mut out);
    unsafe_safety(ctx, &mut out);
    metric_name(ctx, &mut out);
    out
}

fn finding(ctx: &FileCtx<'_>, rule: &'static str, line: u32, message: String) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line,
        message,
        snippet: ctx.snippet(line),
    }
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

/// `Instant::now()` / `SystemTime` outside the sanctioned host-time
/// islands. Test code may time itself; simulation code may not.
fn wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if crate::wall_clock_allowed(ctx.path) || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        if is_ident(t, "Instant")
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 2).is_some_and(|t| is_punct(t, ':'))
            && toks.get(i + 3).is_some_and(|t| is_ident(t, "now"))
        {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                "Instant::now() on a simulation path — virtual time comes from the \
                 engine clock (desim::SimTime); host time only via desim::probe"
                    .to_string(),
            ));
        }
        if is_ident(t, "SystemTime") || is_ident(t, "UNIX_EPOCH") {
            out.push(finding(
                ctx,
                "wall-clock",
                t.line,
                format!(
                    "{} on a simulation path — runs must not observe host time",
                    t.text
                ),
            ));
        }
    }
}

/// Iteration methods whose order leaks the hasher state.
const ORDER_LEAKING: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "retain_mut",
];

/// HashMap/HashSet iteration in the simulation crates. Two passes:
/// find identifiers bound to hash collections (type annotations and
/// `= HashMap::new()`-style initializers), then flag order-dependent
/// uses of those identifiers. Lookups (`get`, `insert`, `contains_key`)
/// stay legal — only iteration order is the hazard.
fn hash_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::hash_iter_scope(ctx.path) || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;

    // Pass 1: names bound to HashMap/HashSet.
    let mut bound: Vec<String> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(is_ident(t, "HashMap") || is_ident(t, "HashSet")) || ctx.in_test(t.line) {
            continue;
        }
        // Walk back over a `std::collections::`-style path.
        let mut k = i;
        while k >= 3
            && is_punct(&toks[k - 1], ':')
            && is_punct(&toks[k - 2], ':')
            && toks[k - 3].kind == TokKind::Ident
        {
            k -= 3;
        }
        // `name: path::HashMap<…>` or `name = path::HashMap::new()`.
        if k >= 2
            && (is_punct(&toks[k - 1], ':') || is_punct(&toks[k - 1], '='))
            && toks[k - 2].kind == TokKind::Ident
        {
            let name = toks[k - 2].text.clone();
            if !bound.contains(&name) {
                bound.push(name);
            }
        }
    }
    if bound.is_empty() {
        return;
    }

    // Pass 2: order-dependent uses.
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !bound.contains(&t.text) || ctx.in_test(t.line) {
            continue;
        }
        // map.iter() / map.drain(..) / …
        if toks.get(i + 1).is_some_and(|n| is_punct(n, '.'))
            && toks.get(i + 2).is_some_and(|m| {
                m.kind == TokKind::Ident && ORDER_LEAKING.contains(&m.text.as_str())
            })
            && toks.get(i + 3).is_some_and(|p| is_punct(p, '('))
        {
            out.push(finding(
                ctx,
                "hash-iter",
                t.line,
                format!(
                    "iterating hash-ordered `{}` via `.{}()` — order depends on the \
                     per-process hasher seed; use BTreeMap/BTreeSet or sort first",
                    t.text,
                    toks[i + 2].text
                ),
            ));
            continue;
        }
        // `for x in map {` / `for (k, v) in &map {` — the identifier is
        // the last token before the loop-body `{`.
        if toks.get(i + 1).is_some_and(|n| is_punct(n, '{')) && in_for_header(toks, i) {
            out.push(finding(
                ctx,
                "hash-iter",
                t.line,
                format!(
                    "for-loop over hash-ordered `{}` — order depends on the per-process \
                     hasher seed; use BTreeMap/BTreeSet or sort first",
                    t.text
                ),
            ));
        }
    }
}

/// Does a `for … in` header (same statement, no intervening `{` or
/// `;`) precede token `i`?
fn in_for_header(toks: &[Tok], i: usize) -> bool {
    let mut saw_in = false;
    for j in (0..i).rev() {
        let t = &toks[j];
        if is_punct(t, '{') || is_punct(t, ';') || is_punct(t, '}') {
            return false;
        }
        if is_ident(t, "in") {
            saw_in = true;
        }
        if is_ident(t, "for") {
            return saw_in;
        }
    }
    false
}

/// Ambient randomness: every random draw must derive from the run
/// seed (`SeedDeriver`), or replications stop being reproducible.
fn entropy(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for t in &ctx.lexed.toks {
        if ["thread_rng", "from_entropy", "OsRng", "getrandom"]
            .iter()
            .any(|b| is_ident(t, b))
        {
            out.push(finding(
                ctx,
                "entropy",
                t.line,
                format!(
                    "`{}` draws ambient entropy — all randomness must flow from the \
                     run seed (desim::SeedDeriver)",
                    t.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// NaN safety
// ---------------------------------------------------------------------

/// `partial_cmp(..).unwrap()/.expect(..)` and comparator closures
/// built on `partial_cmp`: both panic (or misbehave) on NaN, and NaN
/// reaches them exactly when an upstream invariant broke — the worst
/// time to panic. `f64::total_cmp` is total and free.
fn nan_cmp(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let toks = &ctx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if is_ident(t, "partial_cmp") {
            // Skip trait-impl definitions (`fn partial_cmp(...)`).
            if i > 0 && is_ident(&toks[i - 1], "fn") {
                continue;
            }
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks.get(close + 1).is_some_and(|d| is_punct(d, '.'))
                    && toks
                        .get(close + 2)
                        .is_some_and(|m| is_ident(m, "unwrap") || is_ident(m, "expect"))
                {
                    out.push(finding(
                        ctx,
                        "nan-cmp",
                        t.line,
                        "partial_cmp().unwrap/expect panics on NaN — use f64::total_cmp"
                            .to_string(),
                    ));
                }
            }
        }
        // sort_by(|a, b| a.partial_cmp(b) …) and friends.
        if [
            "sort_by",
            "sort_unstable_by",
            "min_by",
            "max_by",
            "binary_search_by",
        ]
        .iter()
        .any(|m| is_ident(t, m))
            && toks.get(i + 1).is_some_and(|p| is_punct(p, '('))
        {
            if let Some(close) = matching_paren(toks, i + 1) {
                if toks[i + 2..close]
                    .iter()
                    .any(|x| is_ident(x, "partial_cmp"))
                {
                    out.push(finding(
                        ctx,
                        "nan-cmp",
                        t.line,
                        format!(
                            "`{}` with a partial_cmp comparator — NaN makes the order \
                             inconsistent (UB for sort since Rust 1.81); use total_cmp",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
}

/// Index of the `)` matching the `(` at `open` (which must be a `(`).
fn matching_paren(toks: &[Tok], open: usize) -> Option<usize> {
    if !toks.get(open).is_some_and(|t| is_punct(t, '(')) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, '(') {
            depth += 1;
        } else if is_punct(t, ')') {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------
// Serving-path panic freedom
// ---------------------------------------------------------------------

/// The sharded service answers queries from many threads over shared
/// `RwLock`s: one panic poisons a lock and cascades into every later
/// query. The serving path must therefore be total — no unwrap/expect,
/// no panicking macros, no unchecked indexing.
fn serve_panic(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::serve_panic_scope(ctx.path) {
        return;
    }
    let toks = &ctx.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        // .unwrap() / .expect(…)
        if (is_ident(t, "unwrap") || is_ident(t, "expect"))
            && i > 0
            && is_punct(&toks[i - 1], '.')
            && toks.get(i + 1).is_some_and(|p| is_punct(p, '('))
        {
            out.push(finding(
                ctx,
                "serve-panic",
                t.line,
                format!(
                    "`.{}()` on the serving path — a panic here poisons shard locks; \
                     handle the None/Err arm explicitly",
                    t.text
                ),
            ));
        }
        // panic!/unreachable!/todo!/unimplemented!
        if ["panic", "unreachable", "todo", "unimplemented"]
            .iter()
            .any(|m| is_ident(t, m))
            && toks.get(i + 1).is_some_and(|b| is_punct(b, '!'))
        {
            out.push(finding(
                ctx,
                "serve-panic",
                t.line,
                format!(
                    "`{}!` on the serving path — return a typed outcome instead",
                    t.text
                ),
            ));
        }
        // Unchecked indexing: `expr[` where expr ends in an identifier,
        // `)`, or `]`. Attributes (`#[…]`) and types (`&[u8]`) don't
        // match because their `[` follows `#`, `&`, `<`, `(`, …; a
        // keyword before `[` (`for c in [a, b]`, `return [x]`) starts
        // an array literal, not an index.
        const KEYWORDS: &[&str] = &[
            "in", "return", "break", "continue", "else", "match", "if", "while", "loop", "move",
            "mut", "ref", "let", "const", "static",
        ];
        if is_punct(t, '[')
            && i > 0
            && ((toks[i - 1].kind == TokKind::Ident
                && !KEYWORDS.contains(&toks[i - 1].text.as_str()))
                || is_punct(&toks[i - 1], ')')
                || is_punct(&toks[i - 1], ']'))
        {
            out.push(finding(
                ctx,
                "serve-panic",
                t.line,
                "unchecked indexing on the serving path — use .get()/.get_mut() and \
                 handle the miss"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Serving-path wait-freedom
// ---------------------------------------------------------------------

/// The workspace's poison-recovering lock-helper functions. Calls to
/// them are treated as leaf acquisitions: flagged directly where they
/// appear, and their bodies never traversed — so the helpers themselves
/// need no suppressions and any future read-path misuse is caught at
/// the callsite.
const LOCK_HELPERS: &[&str] = &["read_lock", "write_lock", "lock_mutex"];

/// Methods that acquire a std `RwLock`/`Mutex` directly.
const LOCK_METHODS: &[&str] = &["read", "write", "lock"];

/// One function item: name plus its body's token range (exclusive end).
struct FnItem {
    name: String,
    body: std::ops::Range<usize>,
}

/// Function items of the file (non-test), with brace-matched bodies.
fn collect_fns(ctx: &FileCtx<'_>) -> Vec<FnItem> {
    let toks = &ctx.lexed.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "fn") || ctx.in_test(t.line) {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Parameter list: the first `(` after the name (generic
        // parameters contain no parentheses in this workspace).
        let Some(open) = (i + 2..toks.len()).find(|&j| is_punct(&toks[j], '(')) else {
            continue;
        };
        let Some(close) = matching_paren(toks, open) else {
            continue;
        };
        // Body: the first `{` after the signature (return types and
        // `where` clauses contain no braces); a `;` first means a
        // bodiless declaration.
        let mut j = close + 1;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if is_punct(t, ';') {
                break;
            }
            if is_punct(t, '{') {
                body_open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(body_open) = body_open else { continue };
        let mut depth = 0usize;
        let mut body_end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(body_open) {
            if is_punct(t, '{') {
                depth += 1;
            } else if is_punct(t, '}') {
                depth -= 1;
                if depth == 0 {
                    body_end = k;
                    break;
                }
            }
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            body: body_open..body_end,
        });
    }
    out
}

/// The seqlock read path's contract is *no reader-visible lock
/// acquisition*: `where_is`/`where_is_inner`/`serve_payload` must never
/// block behind a flush. This rule enforces it structurally — a
/// one-level-call-edge reachability walk from every `where_is*` /
/// `serve_payload` function, flagging lock-helper calls
/// (`read_lock`/`write_lock`/`lock_mutex`) and direct
/// `.read()`/`.write()`/`.lock()` acquisitions in reachable bodies.
/// Writer-side helpers reached via `serve_payload`'s ingest/flush arms
/// are expected to suppress with a documented
/// `lint:allow(serve-reader-lock)`.
fn serve_reader_lock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::serve_panic_scope(ctx.path) {
        return;
    }
    let toks = &ctx.lexed.toks;
    let fns = collect_fns(ctx);

    // Reachability from the read-path roots, one call level at a time.
    // Lock helpers are leaves: never traversed (see LOCK_HELPERS).
    let mut reachable: Vec<bool> = fns
        .iter()
        .map(|f| f.name.starts_with("where_is") || f.name == "serve_payload")
        .collect();
    let mut queue: Vec<usize> = (0..fns.len()).filter(|&i| reachable[i]).collect();
    while let Some(at) = queue.pop() {
        let body = fns[at].body.clone();
        for j in body {
            let t = &toks[j];
            if t.kind != TokKind::Ident
                || !toks.get(j + 1).is_some_and(|p| is_punct(p, '('))
                || (j > 0 && is_ident(&toks[j - 1], "fn"))
                || LOCK_HELPERS.contains(&t.text.as_str())
            {
                continue;
            }
            for (k, f) in fns.iter().enumerate() {
                if !reachable[k] && f.name == t.text {
                    reachable[k] = true;
                    queue.push(k);
                }
            }
        }
    }

    for (i, f) in fns.iter().enumerate() {
        if !reachable[i] {
            continue;
        }
        for j in f.body.clone() {
            let t = &toks[j];
            if ctx.in_test(t.line) {
                continue;
            }
            // read_lock(…) / write_lock(…) / lock_mutex(…)
            if t.kind == TokKind::Ident
                && LOCK_HELPERS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|p| is_punct(p, '('))
            {
                out.push(finding(
                    ctx,
                    "serve-reader-lock",
                    t.line,
                    format!(
                        "`{}` in `{}`, reachable from the where_is*/serve_payload read \
                         path — readers must stay wait-free; move the acquisition to a \
                         writer-side helper or suppress with a documented reason",
                        t.text, f.name
                    ),
                ));
            }
            // .read() / .write() / .lock()
            if is_punct(t, '.')
                && toks.get(j + 1).is_some_and(|m| {
                    m.kind == TokKind::Ident && LOCK_METHODS.contains(&m.text.as_str())
                })
                && toks.get(j + 2).is_some_and(|p| is_punct(p, '('))
            {
                out.push(finding(
                    ctx,
                    "serve-reader-lock",
                    toks[j + 1].line,
                    format!(
                        "direct `.{}()` lock acquisition in `{}`, reachable from the \
                         where_is*/serve_payload read path — readers must stay wait-free",
                        toks[j + 1].text,
                        f.name
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Unsafe hygiene
// ---------------------------------------------------------------------

/// Every `unsafe` keyword needs a `// SAFETY:` comment on its line or
/// within the three lines above (rustdoc `# Safety` sections on the
/// preceding doc comment also count).
fn unsafe_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let mut flagged_lines = Vec::new();
    for t in &ctx.lexed.toks {
        if !is_ident(t, "unsafe") || flagged_lines.contains(&t.line) {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let justified = (lo..=t.line).any(|l| {
            ctx.lexed
                .comments
                .get(&l)
                .is_some_and(|c| c.contains("SAFETY:") || c.contains("# Safety"))
        });
        if !justified {
            flagged_lines.push(t.line);
            out.push(finding(
                ctx,
                "unsafe-safety",
                t.line,
                "`unsafe` without a `// SAFETY:` comment — state the invariant that \
                 makes this sound"
                    .to_string(),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Metric naming
// ---------------------------------------------------------------------

/// Registered metric names must follow `crate.section.name`: 2–4
/// dot-separated segments of `[a-z0-9_]` (with `format!` placeholders
/// as `*`). Keeps the catalog in `docs/OBSERVABILITY.md` greppable and
/// the per-crate prefixes unambiguous.
fn metric_name(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !crate::metric_scope(ctx.path) || ctx.is_test_file {
        return;
    }
    for (name, line) in crate::collect_metric_registrations(ctx.path, ctx.source) {
        if ctx.in_test(line) {
            continue;
        }
        let norm = crate::normalize_wildcards(&name);
        if !well_formed_metric(&norm) {
            out.push(finding(
                ctx,
                "metric-name",
                line,
                format!(
                    "metric name `{name}` does not follow `crate.section.name` \
                     (2–4 lowercase dotted segments)"
                ),
            ));
        }
    }
}

fn well_formed_metric(norm: &str) -> bool {
    let segs: Vec<&str> = norm.split('.').collect();
    if !(2..=4).contains(&segs.len()) {
        return false;
    }
    let seg_ok = |s: &str| {
        !s.is_empty()
            && s.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '*')
    };
    segs.iter().all(|s| seg_ok(s))
        && segs[0]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_lowercase())
}
