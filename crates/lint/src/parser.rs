//! Item-level parsing on top of the token stream ([`crate::lexer`]):
//! `fn` definitions with their enclosing `impl` type, brace-matched
//! bodies, and the call sites inside each body. This is the input the
//! workspace call graph ([`crate::callgraph`]) is built from.
//!
//! The parser is deliberately *not* a Rust grammar. It recognizes the
//! handful of shapes the reachability rules need — `impl [Trait for]
//! Type { … }`, `fn name(params) [-> ret] [where …] { body }`, and the
//! four call spellings (`self.f(…)`, `recv.f(…)`, `Qual::f(…)`,
//! `f(…)`) plus macro invocations — and records an anomaly instead of
//! failing when a file's nesting never closes. The self-parse test in
//! `tests/callgraph.rs` pins that the anomaly list stays empty for
//! every file in the workspace.

use std::ops::Range;

use crate::lexer::{is_ident, is_punct, Lexed, Tok, TokKind};

/// How a call site spells its callee (decides name resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `self.name(…)` — resolves only within the enclosing impl type.
    SelfMethod,
    /// `recv.name(…)` — resolves to every impl method of that name.
    Method,
    /// `Qual::name(…)` — `Self`, a type name, or a module path head.
    Qualified(String),
    /// `name(…)` — resolves to free functions of that name.
    Free,
    /// `name!(…)` / `name![…]` / `name!{…}` — always external.
    Macro,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    pub name: String,
    pub kind: CallKind,
    pub line: u32,
    /// Comma-counted argument count (excluding any receiver).
    pub arity: usize,
}

/// One `fn` item: name, enclosing impl type, body token range.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// Last path segment of the enclosing `impl` block's self type
    /// (`impl fmt::Display for Foo` → `Foo`), `None` for free fns.
    pub self_ty: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body: index of `{` .. index of matching `}`
    /// (exclusive end, so the range covers the body's interior plus
    /// the opening brace).
    pub body: Range<usize>,
    /// Parameter count excluding a leading `self` receiver.
    pub arity: usize,
    pub calls: Vec<CallSite>,
}

impl FnDef {
    /// `Type::name` or `name`, for call-path rendering.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A parsed file: its functions plus any structural anomalies
/// (unterminated bodies). Anomalies are a parser bug or a truncated
/// file — the self-parse test keeps the list empty workspace-wide.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnDef>,
    pub anomalies: Vec<String>,
}

/// Keywords that read like `name(` / `name {` but are control flow,
/// never calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "in", "return", "loop", "move", "as", "else", "break",
    "continue", "unsafe", "let", "ref", "mut", "pub", "fn", "impl", "where", "dyn", "box", "await",
];

pub fn parse(lexed: &Lexed) -> ParsedFile {
    let toks = &lexed.toks;
    let mut out = ParsedFile::default();

    // Pass 1: impl blocks → (self type, body token range).
    let impls = collect_impls(toks, &mut out.anomalies);

    // Pass 2: fn items.
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue; // `impl Fn(…)` bounds, `fn` in a type position
        };
        // Parameter list: the first `(` after the name (generic
        // parameter lists contain no parentheses).
        let Some(open) = (i + 2..toks.len()).find(|&j| is_punct(&toks[j], '(')) else {
            continue;
        };
        let Some(close) = matching_delim(toks, open, '(', ')') else {
            out.anomalies
                .push(format!("fn {}: unterminated parameter list", name_tok.text));
            continue;
        };
        let arity = def_arity(toks, open, close);
        // Body: the first `{` after the signature (return types and
        // `where` clauses contain no braces); a `;` first means a
        // bodiless declaration (trait method), which defines nothing.
        let mut j = close + 1;
        let mut body_open = None;
        while let Some(t) = toks.get(j) {
            if is_punct(t, ';') {
                break;
            }
            if is_punct(t, '{') {
                body_open = Some(j);
                break;
            }
            j += 1;
        }
        let Some(body_open) = body_open else { continue };
        let Some(body_end) = matching_delim(toks, body_open, '{', '}') else {
            out.anomalies
                .push(format!("fn {}: unterminated body", name_tok.text));
            continue;
        };
        let self_ty = impls
            .iter()
            .filter(|(_, r)| r.contains(&i))
            .min_by_key(|(_, r)| r.end - r.start)
            .map(|(ty, _)| ty.clone());
        let body = body_open..body_end;
        let calls = collect_calls(toks, body.clone());
        out.fns.push(FnDef {
            name: name_tok.text.clone(),
            self_ty,
            line: t.line,
            body,
            arity,
            calls,
        });
    }
    out
}

/// `impl [<…>] [Trait for] Type [<…>] [where …] { … }` blocks.
fn collect_impls(toks: &[Tok], anomalies: &mut Vec<String>) -> Vec<(String, Range<usize>)> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !is_ident(t, "impl") {
            continue;
        }
        let mut j = i + 1;
        // Generic parameters on the impl itself.
        if toks.get(j).is_some_and(|t| is_punct(t, '<')) {
            j = skip_angles(toks, j);
        }
        // Scan to the body `{`, tracking the last top-level type name.
        // `for` restarts the capture (the self type follows it);
        // `where` ends it (bound names are not the self type).
        let mut name: Option<String> = None;
        let mut capturing = true;
        while let Some(t) = toks.get(j) {
            if is_punct(t, '{') {
                break;
            }
            if is_punct(t, ';') {
                // `impl Trait for Type;`-style (not real Rust today) —
                // bail without a body.
                name = None;
                break;
            }
            if is_punct(t, '<') {
                j = skip_angles(toks, j);
                continue;
            }
            if is_ident(t, "for") {
                name = None;
            } else if is_ident(t, "where") {
                capturing = false;
            } else if capturing && t.kind == TokKind::Ident {
                name = Some(t.text.clone());
            }
            j += 1;
        }
        let (Some(name), Some(open)) = (name, toks.get(j).filter(|t| is_punct(t, '{')).map(|_| j))
        else {
            continue;
        };
        match matching_delim(toks, open, '{', '}') {
            Some(end) => out.push((name, open..end)),
            None => anomalies.push(format!("impl {name}: unterminated block")),
        }
    }
    out
}

/// Call sites inside `body`. Nested `fn` items are collected as their
/// own [`FnDef`]s too, so their calls are attributed to both the inner
/// and outer function — a documented over-approximation.
fn collect_calls(toks: &[Tok], body: Range<usize>) -> Vec<CallSite> {
    let mut out = Vec::new();
    for j in body {
        let t = &toks[j];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        if j > 0 && is_ident(&toks[j - 1], "fn") {
            continue; // a nested fn's own name
        }
        // Macro invocation: `name!(…)` / `name![…]` / `name!{…}`.
        if toks.get(j + 1).is_some_and(|n| is_punct(n, '!'))
            && toks
                .get(j + 2)
                .is_some_and(|d| is_punct(d, '(') || is_punct(d, '[') || is_punct(d, '{'))
        {
            out.push(CallSite {
                name: t.text.clone(),
                kind: CallKind::Macro,
                line: t.line,
                arity: 0,
            });
            continue;
        }
        // A call is `name (` or the turbofish `name :: < … > (`.
        let call_open = if toks.get(j + 1).is_some_and(|n| is_punct(n, '(')) {
            Some(j + 1)
        } else if toks.get(j + 1).is_some_and(|n| is_punct(n, ':'))
            && toks.get(j + 2).is_some_and(|n| is_punct(n, ':'))
            && toks.get(j + 3).is_some_and(|n| is_punct(n, '<'))
        {
            let after = skip_angles(toks, j + 3);
            toks.get(after).filter(|t| is_punct(t, '(')).map(|_| after)
        } else {
            None
        };
        let Some(call_open) = call_open else { continue };
        let arity = call_arity(toks, call_open);
        let kind = if j > 0 && is_punct(&toks[j - 1], '.') {
            if j > 1 && is_ident(&toks[j - 2], "self") {
                CallKind::SelfMethod
            } else {
                CallKind::Method
            }
        } else if j > 1 && is_punct(&toks[j - 1], ':') && is_punct(&toks[j - 2], ':') {
            match toks.get(j.wrapping_sub(3)) {
                Some(q) if q.kind == TokKind::Ident => CallKind::Qualified(q.text.clone()),
                // `Vec::<u8>::new(…)` and other turbofished path heads:
                // treat the qualifier as unknown (resolves external).
                _ => CallKind::Qualified(String::new()),
            }
        } else {
            CallKind::Free
        };
        out.push(CallSite {
            name: t.text.clone(),
            kind,
            line: t.line,
            arity,
        });
    }
    out
}

/// Index of the token after the `>` matching the `<` at `open`.
/// `->` arrows inside `Fn(…) -> T` bounds do not close an angle.
fn skip_angles(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while let Some(t) = toks.get(k) {
        if is_punct(t, '<') {
            depth += 1;
        } else if is_punct(t, '>') && !(k > 0 && is_punct(&toks[k - 1], '-')) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k + 1;
            }
        }
        k += 1;
    }
    toks.len()
}

/// Index of the closing delimiter matching the opener at `open`, or
/// `None` if the file ends first.
pub fn matching_delim(toks: &[Tok], open: usize, open_c: char, close_c: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if is_punct(t, open_c) {
            depth += 1;
        } else if is_punct(t, close_c) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Argument count of the call whose `(` sits at `open`: top-level
/// commas plus one, zero for `()`. Closure parameter commas nest one
/// paren level deeper only when parenthesized, so multi-parameter
/// closure literals can over-count — resolution treats arity as a
/// filter with a fall-back, never a hard key.
fn call_arity(toks: &[Tok], open: usize) -> usize {
    let Some(close) = matching_delim(toks, open, '(', ')') else {
        return 0;
    };
    if close == open + 1 {
        return 0;
    }
    let mut commas = 0usize;
    let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
    for t in &toks[open..close] {
        match () {
            _ if is_punct(t, '(') => p += 1,
            _ if is_punct(t, ')') => p -= 1,
            _ if is_punct(t, '[') => b += 1,
            _ if is_punct(t, ']') => b -= 1,
            _ if is_punct(t, '{') => c += 1,
            _ if is_punct(t, '}') => c -= 1,
            _ if is_punct(t, ',') && p == 1 && b == 0 && c == 0 => commas += 1,
            _ => {}
        }
    }
    // Trailing comma does not add an argument.
    if is_punct(&toks[close - 1], ',') {
        commas = commas.saturating_sub(1);
    }
    commas + 1
}

/// Parameter count of the definition whose `(` is at `open`, with a
/// leading `self` receiver (`self`, `&self`, `&'a mut self`, `mut
/// self`) excluded.
fn def_arity(toks: &[Tok], open: usize, close: usize) -> usize {
    if close == open + 1 {
        return 0;
    }
    let mut n = call_arity(toks, open);
    let mut k = open + 1;
    while k < close
        && (is_punct(&toks[k], '&')
            || toks[k].kind == TokKind::Lifetime
            || is_ident(&toks[k], "mut"))
    {
        k += 1;
    }
    if k < close && is_ident(&toks[k], "self") {
        n = n.saturating_sub(1);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> ParsedFile {
        parse(&lex(src))
    }

    #[test]
    fn fns_get_their_impl_type_and_arity() {
        let src = "
            fn free(a: u32, b: &str) -> u32 { a }
            struct Foo;
            impl Foo {
                fn method(&self, x: u32) -> u32 { x }
                fn assoc() -> Foo { Foo }
            }
            impl fmt::Display for Foo {
                fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result { Ok(()) }
            }
            impl<T: Clone> Wrapper<T> where T: Send {
                fn get_inner(&self) -> &T { &self.0 }
            }
        ";
        let p = parse_src(src);
        assert!(p.anomalies.is_empty(), "{:?}", p.anomalies);
        let sigs: Vec<(String, Option<String>, usize)> = p
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.self_ty.clone(), f.arity))
            .collect();
        assert_eq!(
            sigs,
            vec![
                ("free".into(), None, 2),
                ("method".into(), Some("Foo".into()), 1),
                ("assoc".into(), Some("Foo".into()), 0),
                ("fmt".into(), Some("Foo".into()), 1),
                ("get_inner".into(), Some("Wrapper".into()), 0),
            ]
        );
    }

    #[test]
    fn call_kinds_are_classified() {
        let src = "
            fn caller(&self) {
                self.own_method(1);
                other.method_call(a, b);
                Type::assoc_call();
                module::free_in_module(x);
                free_call(x, y, z);
                format!(\"{x}\");
                items.collect::<Vec<_>>();
                if cond(x) { return (a, b); }
            }
        ";
        let p = parse_src(src);
        let f = &p.fns[0];
        let got: Vec<(String, CallKind, usize)> = f
            .calls
            .iter()
            .map(|c| (c.name.clone(), c.kind.clone(), c.arity))
            .collect();
        assert_eq!(
            got,
            vec![
                ("own_method".into(), CallKind::SelfMethod, 1),
                ("method_call".into(), CallKind::Method, 2),
                ("assoc_call".into(), CallKind::Qualified("Type".into()), 0),
                (
                    "free_in_module".into(),
                    CallKind::Qualified("module".into()),
                    1
                ),
                ("free_call".into(), CallKind::Free, 3),
                ("format".into(), CallKind::Macro, 0),
                ("collect".into(), CallKind::Method, 0),
                ("cond".into(), CallKind::Free, 1),
            ]
        );
    }

    #[test]
    fn trait_declarations_define_nothing() {
        let p = parse_src("trait T { fn required(&self) -> u32; fn with_default(&self) { } }");
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default"]);
    }

    #[test]
    fn unterminated_body_is_an_anomaly_not_a_panic() {
        let p = parse_src("fn broken() { let x = 1;");
        assert_eq!(p.fns.len(), 0);
        assert_eq!(p.anomalies.len(), 1);
        assert!(p.anomalies[0].contains("broken"));
    }

    #[test]
    fn ne_operator_is_not_a_macro() {
        let p = parse_src("fn f() { if a != (b) { g(); } }");
        let names: Vec<&str> = p.fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["g"]);
    }
}
