//! A minimal token-level Rust scanner.
//!
//! `bips-lint` must build with no registry access, so it cannot use
//! `syn`/`proc-macro2`. The rules it implements only need a faithful
//! token stream — identifiers, punctuation, and literals, with string
//! and comment contents kept *out* of the token stream so that a
//! `"thread_rng"` inside a doc string never trips the entropy rule.
//!
//! The scanner handles the lexical corners that matter for that goal:
//! nested block comments, raw strings with arbitrary `#` fences, byte
//! and raw-byte strings, raw identifiers, char literals versus
//! lifetimes, and escapes inside string/char literals. Comment *text*
//! is preserved per line (for `// SAFETY:` and `// lint:allow(...)`
//! detection) but never tokenized.

use std::collections::BTreeMap;

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers keep their `r#` prefix
    /// stripped: `r#type` lexes as `type`).
    Ident,
    /// A single punctuation character (`.`, `:`, `[`, …). Multi-char
    /// operators appear as consecutive tokens.
    Punct,
    /// String literal (normal/raw/byte); `text` holds the *contents*
    /// without quotes or fences.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Numeric literal.
    Num,
    /// Lifetime (`'a`), text without the tick.
    Lifetime,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

/// A lexed file: the token stream plus comment text per line.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// Comment text by 1-based line. A block comment contributes each
    /// of its lines; several comments on one line are concatenated.
    pub comments: BTreeMap<u32, String>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

/// Lexes Rust source. Never fails: unterminated literals are tolerated
/// (the remainder of the file is consumed as that literal), which is
/// the right behaviour for a linter that must not panic on fixtures.
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    };
    s.run();
    s.out
}

impl Scanner<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.toks.push(Tok { kind, text, line });
    }

    fn add_comment(&mut self, line: u32, text: &str) {
        let slot = self.out.comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(text);
    }

    fn run(&mut self) {
        while self.pos < self.src.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed(),
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokKind::Punct, (c as char).to_string(), line);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.add_comment(line, text.trim());
    }

    fn block_comment(&mut self) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        let mut cur_line = self.line;
        let mut seg = String::new();
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                seg.push_str("/*");
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                if depth > 0 {
                    seg.push_str("*/");
                }
                self.bump();
                self.bump();
            } else {
                let c = self.bump();
                if c == b'\n' {
                    let t = seg.trim();
                    if !t.is_empty() {
                        self.add_comment(cur_line, t);
                    }
                    seg.clear();
                    cur_line = self.line;
                } else {
                    seg.push(c as char);
                }
            }
        }
        let t = seg.trim();
        if !t.is_empty() {
            self.add_comment(cur_line, t);
        }
    }

    /// Normal (escaped) string literal; the opening quote is current.
    fn string(&mut self) {
        let line = self.line;
        self.bump(); // '"'
        let mut text = String::new();
        while self.pos < self.src.len() {
            let c = self.bump();
            match c {
                b'"' => break,
                b'\\' => {
                    // Keep the escaped char raw; rules only pattern-match
                    // metric names, which contain no escapes.
                    let e = self.bump();
                    text.push('\\');
                    text.push(e as char);
                }
                _ => text.push(c as char),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw string starting at the current `"` after `hashes` fences.
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        self.bump(); // '"'
        let start = self.pos;
        'outer: while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                for i in 0..hashes {
                    if self.peek(1 + i) != b'#' {
                        self.bump();
                        continue 'outer;
                    }
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
                for _ in 0..=hashes {
                    self.bump();
                }
                self.push(TokKind::Str, text, line);
                return;
            }
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // '\''
                     // Lifetime: '\'' then an ident run NOT closed by another
                     // '\'' ('a' is a char literal, 'a.cmp(..) a lifetime; the
                     // run-length check also covers multi-byte chars like '…').
        let mut run = 0;
        while is_ident_continue(self.peek(run)) {
            run += 1;
        }
        if is_ident_start(self.peek(0)) && run > 0 && self.peek(run) != b'\'' {
            let start = self.pos;
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
            self.push(TokKind::Lifetime, text, line);
            return;
        }
        let mut text = String::new();
        while self.pos < self.src.len() {
            let c = self.bump();
            match c {
                b'\'' => break,
                b'\\' => {
                    let e = self.bump();
                    text.push('\\');
                    text.push(e as char);
                }
                _ => text.push(c as char),
            }
        }
        self.push(TokKind::Char, text, line);
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.pos < self.src.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                // `1.5` continues the number; `0..n` and `1.max(2)` don't.
                self.bump();
            } else if (c == b'+' || c == b'-')
                && matches!(
                    self.src.get(self.pos.wrapping_sub(1)),
                    Some(b'e') | Some(b'E')
                )
                && self.peek(1).is_ascii_digit()
            {
                // Exponent sign: `1e-3`.
                self.bump();
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Num, text, line);
    }

    fn ident_or_prefixed(&mut self) {
        let line = self.line;
        // String-literal prefixes: r"", r#""#, b"", br"", br#""#, b''.
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        if c0 == b'r' || c0 == b'b' {
            let (raw, after) = match (c0, c1) {
                (b'r', _) => (true, 1),
                (b'b', b'r') => (true, 2),
                (b'b', _) => (false, 1),
                _ => unreachable!(),
            };
            if raw {
                // Count fences; a raw *identifier* (r#foo) has ident
                // chars after the single '#' instead of a quote.
                let mut h = 0usize;
                while self.peek(after + h) == b'#' {
                    h += 1;
                }
                if self.peek(after + h) == b'"' {
                    // Distinguish r#"…"# (raw string) from r#ident: a
                    // quote right after the fences means raw string.
                    for _ in 0..after + h {
                        self.bump();
                    }
                    self.raw_string(h);
                    return;
                }
                if c0 == b'r' && h == 1 && is_ident_start(self.peek(after + h)) {
                    // Raw identifier r#foo: skip the prefix, lex as ident.
                    self.bump();
                    self.bump();
                    self.plain_ident(line);
                    return;
                }
            } else if self.peek(after) == b'"' {
                self.bump(); // 'b'
                self.string();
                return;
            } else if self.peek(after) == b'\'' {
                self.bump(); // 'b'
                self.char_or_lifetime();
                return;
            }
        }
        self.plain_ident(line);
    }

    fn plain_ident(&mut self, line: u32) {
        let start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        self.push(TokKind::Ident, text, line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// `true` if token `t` is an identifier with exactly this text.
pub fn is_ident(t: &Tok, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// `true` if token `t` is this punctuation character.
pub fn is_punct(t: &Tok, c: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.as_bytes()[0] == c as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            // thread_rng in a comment
            /* Instant::now in /* a nested */ block */
            let s = "SystemTime inside a string";
            let r = r#"partial_cmp "quoted" raw"#;
            let b = b"unwrap";
            call(real_ident);
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        for bad in [
            "thread_rng",
            "Instant",
            "SystemTime",
            "partial_cmp",
            "unwrap",
        ] {
            assert!(!ids.contains(&bad.to_string()), "{bad} leaked from literal");
        }
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }").toks;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["x", "\\n"]);
    }

    #[test]
    fn comment_text_is_recorded_per_line() {
        let src = "let a = 1; // SAFETY: fine\n/* block\nspans lines */\nlet b = 2;";
        let lexed = lex(src);
        assert!(lexed
            .comments
            .get(&1)
            .is_some_and(|c| c.contains("SAFETY:")));
        assert!(lexed.comments.get(&2).is_some_and(|c| c.contains("block")));
        assert!(lexed
            .comments
            .get(&3)
            .is_some_and(|c| c.contains("spans lines")));
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        let toks = lex("for i in 0..10 { x = 1.5 + 2.max(3) + 1e-3; }").toks;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5", "2", "3", "1e-3"]);
        assert!(toks.iter().any(|t| is_ident(t, "max")));
    }

    #[test]
    fn raw_identifiers_lex_as_plain() {
        let ids = idents("let r#type = r#match;");
        assert_eq!(ids, vec!["let", "type", "match"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_strings() {
        let lexed = lex("let s = \"a\nb\nc\";\nlet t = 1;");
        let t = lexed.toks.iter().find(|t| is_ident(t, "t")).unwrap();
        assert_eq!(t.line, 4);
    }
}
