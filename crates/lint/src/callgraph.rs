//! The workspace call graph: every non-test `fn` in the analyzed file
//! set becomes a node; call sites resolve to candidate nodes with
//! conservative name heuristics (see `docs/LINTS.md` § Call-graph
//! model). Unresolved calls are *external* — each rule decides whether
//! externals are opaque-safe (ignored) or opaque-unsafe (named sinks).
//!
//! Resolution heuristics, in order of precision:
//! - `self.f(…)` / `Self::f(…)` → methods named `f` on the enclosing
//!   impl type only.
//! - `Type::f(…)` (uppercase head) → methods named `f` with that self
//!   type.
//! - `module::f(…)` (lowercase head) → free functions named `f`.
//! - `recv.f(…)` → *every* impl method named `f` (receiver types are
//!   not inferred — the over-approximation the docs call out).
//! - `f(…)` → free functions named `f`.
//!
//! Within a candidate set, definitions whose parameter count matches
//! the call-site argument count are preferred; if none match, the
//! whole set is kept (closures in argument position can make the
//! count unreliable, so arity is a filter, never a hard key).
//!
//! Construction is deterministic: nodes are numbered in (file, token)
//! order of the input slice, candidate lists come from sorted maps,
//! and edges are sorted and deduplicated — `dump()` is byte-identical
//! across runs on identical input, pinned by `tests/callgraph.rs`.

use std::collections::BTreeMap;

use crate::parser::{CallKind, CallSite, FnDef, ParsedFile};
use crate::FileCtx;

/// Method names shadowed by std's prelude/collections/iterators. A
/// bare `recv.name(…)` with one of these names is overwhelmingly a
/// std call (`heap.pop()`, `opt.expect(…)`, `map.entry(…)`), so
/// resolving it to every same-name workspace method floods the graph
/// with false edges — e.g. an iterator `.position(…)` binding to a
/// building's `position` accessor. These names stay *external* for
/// bare method calls; `self.name(…)` and `Type::name(…)` calls still
/// resolve (explicit type info beats the shadow heuristic), and the
/// panic-relevant ones (`unwrap`/`expect`/indexing) are direct sinks
/// anyway. The cost is a documented under-approximation: a bare
/// cross-type call to a workspace method named like a std method is
/// not traversed (docs/LINTS.md § Call-graph model).
const STD_SHADOWED: &[&str] = &[
    "abs",
    "as_ref",
    "clamp",
    "clone",
    "cmp",
    "collect",
    "contains",
    "count",
    "drain",
    "entry",
    "eq",
    "expect",
    "extend",
    "filter",
    "find",
    "fold",
    "get",
    "get_mut",
    "insert",
    "into_iter",
    "is_empty",
    "iter",
    "last",
    "len",
    "map",
    "max",
    "min",
    "next",
    "position",
    "pop",
    "push",
    "remove",
    "retain",
    "rev",
    "skip",
    "sort",
    "split",
    "sum",
    "swap",
    "take",
    "to_owned",
    "to_string",
    "truncate",
    "unwrap",
    "unwrap_or",
    "zip",
];

/// One analysis unit: a file's context plus its parsed items.
pub struct Unit<'a> {
    pub ctx: &'a FileCtx<'a>,
    pub parsed: &'a ParsedFile,
}

/// A call-graph node: one non-test function definition.
pub struct Node<'a> {
    /// Index into the `Unit` slice the graph was built from.
    pub unit: usize,
    pub def: &'a FnDef,
}

impl Node<'_> {
    pub fn display(&self) -> String {
        self.def.display()
    }
}

pub struct CallGraph<'a> {
    pub nodes: Vec<Node<'a>>,
    /// Resolved callees per node, sorted and deduplicated.
    pub edges: Vec<Vec<usize>>,
}

impl<'a> CallGraph<'a> {
    /// Builds the graph over every function defined outside test
    /// regions/test files. Call sites inside test regions of live
    /// functions still resolve (they sit in the same body range) —
    /// sink scanning re-checks line regions, so this only widens
    /// reachability, never narrows it.
    pub fn build(units: &'a [Unit<'a>]) -> Self {
        let mut nodes = Vec::new();
        for (ui, u) in units.iter().enumerate() {
            for def in &u.parsed.fns {
                if u.ctx.in_test(def.line) {
                    continue;
                }
                nodes.push(Node { unit: ui, def });
            }
        }

        // Name indices. BTreeMap + ascending node ids ⇒ deterministic.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in nodes.iter().enumerate() {
            match &n.def.self_ty {
                Some(ty) => {
                    methods.entry(&n.def.name).or_default().push(i);
                    typed.entry((ty, &n.def.name)).or_default().push(i);
                }
                None => free.entry(&n.def.name).or_default().push(i),
            }
        }

        let resolve = |call: &CallSite, caller_ty: Option<&str>| -> Vec<usize> {
            let set: &[usize] = match &call.kind {
                CallKind::Macro => &[],
                CallKind::SelfMethod => caller_ty
                    .and_then(|ty| typed.get(&(ty, call.name.as_str())))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
                CallKind::Qualified(q) if q == "Self" => caller_ty
                    .and_then(|ty| typed.get(&(ty, call.name.as_str())))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
                CallKind::Qualified(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => typed
                    .get(&(q.as_str(), call.name.as_str()))
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
                CallKind::Qualified(_) | CallKind::Free => free
                    .get(call.name.as_str())
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
                CallKind::Method if STD_SHADOWED.contains(&call.name.as_str()) => &[],
                CallKind::Method => methods
                    .get(call.name.as_str())
                    .map(Vec::as_slice)
                    .unwrap_or(&[]),
            };
            let by_arity: Vec<usize> = set
                .iter()
                .copied()
                .filter(|&i| nodes[i].def.arity == call.arity)
                .collect();
            if by_arity.is_empty() {
                set.to_vec()
            } else {
                by_arity
            }
        };

        let mut edges: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        for n in &nodes {
            let mut out: Vec<usize> = n
                .def
                .calls
                .iter()
                .flat_map(|c| resolve(c, n.def.self_ty.as_deref()))
                .collect();
            out.sort_unstable();
            out.dedup();
            edges.push(out);
        }
        CallGraph { nodes, edges }
    }

    /// Node indices whose function matches `pred`.
    pub fn find(&self, mut pred: impl FnMut(&Node<'a>) -> bool) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| pred(&self.nodes[i]))
            .collect()
    }

    /// A stable textual dump (one `caller -> callee, callee` line per
    /// node) for the determinism test.
    pub fn dump(&self, units: &[Unit<'_>]) -> String {
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            out.push_str(&format!(
                "{}:{} {}",
                units[n.unit].ctx.path,
                n.def.line,
                n.display()
            ));
            out.push_str(" ->");
            for &e in &self.edges[i] {
                out.push_str(&format!(" {}", self.nodes[e].display()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{make_ctx, parser};

    fn graph_fixture(src: &str) -> (Vec<String>, Vec<Vec<String>>) {
        let ctx = make_ctx("crates/core/src/service.rs", src);
        let parsed = parser::parse(&ctx.lexed);
        let units = [Unit {
            ctx: &ctx,
            parsed: &parsed,
        }];
        let g = CallGraph::build(&units);
        let names: Vec<String> = g.nodes.iter().map(|n| n.display()).collect();
        let edges: Vec<Vec<String>> = g
            .edges
            .iter()
            .map(|es| es.iter().map(|&e| g.nodes[e].display()).collect())
            .collect();
        (names, edges)
    }

    #[test]
    fn self_calls_resolve_within_the_impl_type_only() {
        let src = "
            struct A; struct B;
            impl A { fn go(&self) { self.step(); } fn step(&self) {} }
            impl B { fn step(&self) {} }
        ";
        let (names, edges) = graph_fixture(src);
        let go = names.iter().position(|n| n == "A::go").unwrap();
        assert_eq!(edges[go], vec!["A::step".to_string()]);
    }

    #[test]
    fn method_calls_fan_out_to_all_candidates_filtered_by_arity() {
        let src = "
            struct A; struct B; struct C;
            impl A { fn run(&self, x: &B) { x.poke(1); } }
            impl B { fn poke(&self, n: u32) {} }
            impl C { fn poke(&self, n: u32) {} fn poke2(&self) {} }
            impl A { fn wide(&self, x: &B) { x.nudge(1); } }
            impl B { fn nudge(&self, n: u32) {} }
            impl C { fn nudge(&self) {} }
        ";
        let (names, edges) = graph_fixture(src);
        // Same name + same arity in two impls: both are candidates.
        let run = names.iter().position(|n| n == "A::run").unwrap();
        assert_eq!(
            edges[run],
            vec!["B::poke".to_string(), "C::poke".to_string()]
        );
        // Arity filter keeps only the matching overload.
        let wide = names.iter().position(|n| n == "A::wide").unwrap();
        assert_eq!(edges[wide], vec!["B::nudge".to_string()]);
    }

    #[test]
    fn unresolved_calls_are_external() {
        let src = "fn f() { std::process::exit(1); g.unknown_method(); vec![1]; }";
        let (_, edges) = graph_fixture(src);
        assert!(edges[0].is_empty());
    }
}
