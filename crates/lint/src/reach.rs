//! The reachability engine and the four interprocedural rules:
//! `serve-panic-reach`, `serve-lock-reach`, `serve-alloc-reach`, and
//! `seqlock-ordering` (the last is per-function, no graph). Facts
//! propagate from declared roots over the workspace call graph
//! ([`crate::callgraph`]); every finding carries the full call path
//! (`entry → f → g`) that makes the sink reachable, and lands on the
//! sink's own line so `// lint:allow(rule): reason` stays at the sink.
//!
//! Two root flavors:
//! - **transitive** roots (the serve entry points) — reachability is
//!   closed over resolved calls, so a panic two helpers below
//!   `serve_payload` is found wherever the helper lives;
//! - **scan-only** roots (every fn in the legacy serve-path file
//!   scope) — only the function's own body is scanned, which is
//!   exactly the old file-scoped `serve-panic` coverage. This keeps
//!   the legacy guarantees intact without claiming that every admin
//!   helper in `service.rs` (e.g. `export_metrics`) is on the hot
//!   serve path.

use std::collections::VecDeque;

use crate::callgraph::{CallGraph, Node, Unit};
use crate::lexer::{is_ident, is_punct, Tok, TokKind};
use crate::parser::CallKind;
use crate::Finding;

/// The workspace's poison-recovering lock-helper functions. Calls to
/// them are leaf acquisitions: flagged where they appear, bodies never
/// traversed — the helpers themselves need no suppressions.
const LOCK_HELPERS: &[&str] = &["read_lock", "write_lock", "lock_mutex"];

/// Methods that acquire a std `RwLock`/`Mutex` directly.
const LOCK_METHODS: &[&str] = &["read", "write", "lock"];

/// Runs every interprocedural rule over the analyzed file set.
pub fn run(units: &[Unit<'_>]) -> Vec<Finding> {
    let graph = CallGraph::build(units);
    let mut out = Vec::new();
    serve_panic_reach(units, &graph, &mut out);
    serve_lock_reach(units, &graph, &mut out);
    serve_alloc_reach(units, &graph, &mut out);
    seqlock_ordering(units, &mut out);
    // A nested fn's body is contained in its enclosing fn's body, so a
    // sink there can be scanned under two call paths. One finding per
    // (rule, site) is enough — a suppression is per-line anyway.
    out.sort_by(|a, b| {
        (a.path.clone(), a.line, a.rule, a.message.clone()).cmp(&(
            b.path.clone(),
            b.line,
            b.rule,
            b.message.clone(),
        ))
    });
    out.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);
    out
}

/// BFS over resolved call edges from `roots`, skipping nodes matched
/// by `barrier` (their bodies are opaque to this rule). Returns, per
/// node, `Some(parent)` when reached (`parent = None` for roots).
fn bfs(
    graph: &CallGraph<'_>,
    roots: &[usize],
    barrier: impl Fn(&Node<'_>) -> bool,
) -> Vec<Option<Option<usize>>> {
    let mut pred: Vec<Option<Option<usize>>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &r in roots {
        if pred[r].is_none() {
            pred[r] = Some(None);
            queue.push_back(r);
        }
    }
    while let Some(at) = queue.pop_front() {
        for &e in &graph.edges[at] {
            if pred[e].is_some() || barrier(&graph.nodes[e]) {
                continue;
            }
            pred[e] = Some(Some(at));
            queue.push_back(e);
        }
    }
    pred
}

/// `entry → f → g` call path for a reached node.
fn path_to(graph: &CallGraph<'_>, pred: &[Option<Option<usize>>], mut at: usize) -> String {
    let mut names = vec![graph.nodes[at].display()];
    while let Some(Some(p)) = pred[at] {
        at = p;
        names.push(graph.nodes[at].display());
    }
    names.reverse();
    names.join(" → ")
}

/// The transitive serve entry points: the socket request dispatcher,
/// the seqlock read path, and the seed server's request handler.
fn is_serve_root(n: &Node<'_>) -> bool {
    n.def.name == "serve_payload"
        || n.def.name.starts_with("where_is")
        || (n.def.name == "handle" && n.def.self_ty.as_deref() == Some("BipsServer"))
}

/// The seqlock read path's roots (no `BipsServer::handle`: the seed
/// server is a single-owner `&mut self` path with no locks to guard).
fn is_read_path_root(n: &Node<'_>) -> bool {
    n.def.name == "serve_payload" || n.def.name.starts_with("where_is")
}

// ---------------------------------------------------------------------
// serve-panic-reach
// ---------------------------------------------------------------------

/// No panic spelling reachable from a serve entry point: one panic
/// poisons shard locks and cascades into every later query. Subsumes
/// the legacy file-scoped `serve-panic` rule via scan-only file roots.
fn serve_panic_reach(units: &[Unit<'_>], graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let roots = graph.find(is_serve_root);
    let pred = bfs(graph, &roots, |_| false);
    for (i, n) in graph.nodes.iter().enumerate() {
        let ctx = units[n.unit].ctx;
        let label = if pred[i].is_some() {
            path_to(graph, &pred, i)
        } else if crate::serve_panic_scope(ctx.path) {
            format!("`{}` (serve-path file scope)", n.display())
        } else {
            continue;
        };
        panic_sinks(ctx, n.def.body.clone(), &label, out);
    }
}

fn panic_sinks(
    ctx: &crate::FileCtx<'_>,
    body: std::ops::Range<usize>,
    label: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &ctx.lexed.toks;
    for j in body {
        let t = &toks[j];
        if ctx.in_test(t.line) {
            continue;
        }
        // .unwrap() / .expect(…)
        if (is_ident(t, "unwrap") || is_ident(t, "expect"))
            && j > 0
            && is_punct(&toks[j - 1], '.')
            && toks.get(j + 1).is_some_and(|p| is_punct(p, '('))
        {
            out.push(reach_finding(
                ctx,
                "serve-panic-reach",
                t.line,
                format!(
                    "`.{}()` reachable on the serve path: {label} — a panic here poisons \
                     shard locks; handle the None/Err arm explicitly",
                    t.text
                ),
            ));
        }
        // panic!/unreachable!/todo!/unimplemented!
        if ["panic", "unreachable", "todo", "unimplemented"]
            .iter()
            .any(|m| is_ident(t, m))
            && toks.get(j + 1).is_some_and(|b| is_punct(b, '!'))
        {
            out.push(reach_finding(
                ctx,
                "serve-panic-reach",
                t.line,
                format!(
                    "`{}!` reachable on the serve path: {label} — return a typed outcome \
                     instead",
                    t.text
                ),
            ));
        }
        // Unchecked indexing: `expr[` where expr ends in an identifier,
        // `)`, or `]`. Attributes (`#[…]`) and types (`&[u8]`) don't
        // match because their `[` follows `#`, `&`, `<`, `(`, …; a
        // keyword before `[` (`for c in [a, b]`, `return [x]`) starts
        // an array literal, not an index.
        const KEYWORDS: &[&str] = &[
            "in", "return", "break", "continue", "else", "match", "if", "while", "loop", "move",
            "mut", "ref", "let", "const", "static",
        ];
        if is_punct(t, '[')
            && j > 0
            && ((toks[j - 1].kind == TokKind::Ident
                && !KEYWORDS.contains(&toks[j - 1].text.as_str()))
                || is_punct(&toks[j - 1], ')')
                || is_punct(&toks[j - 1], ']'))
        {
            out.push(reach_finding(
                ctx,
                "serve-panic-reach",
                t.line,
                format!(
                    "unchecked indexing reachable on the serve path: {label} — use \
                     .get()/.get_mut() and handle the miss"
                ),
            ));
        }
        // `/` and `%` with a non-literal, non-constant divisor: the
        // one arithmetic class that panics on ordinary release builds.
        // (Overflow on +/- is a known under-approximation; see
        // docs/LINTS.md.)
        if (is_punct(t, '/') || is_punct(t, '%'))
            && j > 0
            && (toks[j - 1].kind == TokKind::Ident
                || toks[j - 1].kind == TokKind::Num
                || is_punct(&toks[j - 1], ')')
                || is_punct(&toks[j - 1], ']'))
        {
            // `/=` and `%=`: the divisor starts one token later.
            let mut d = j + 1;
            if toks.get(d).is_some_and(|n| is_punct(n, '=')) {
                d += 1;
            }
            // Unary minus on a literal is still a literal.
            if toks.get(d).is_some_and(|n| is_punct(n, '-'))
                && toks.get(d + 1).is_some_and(|n| n.kind == TokKind::Num)
            {
                d += 1;
            }
            let literal = toks.get(d).is_some_and(|n| n.kind == TokKind::Num);
            let const_divisor = toks.get(d).is_some_and(|n| {
                n.kind == TokKind::Ident
                    && n.text.chars().any(|c| c.is_ascii_uppercase())
                    && !n.text.chars().any(|c| c.is_ascii_lowercase())
            });
            if !literal && !const_divisor {
                out.push(reach_finding(
                    ctx,
                    "serve-panic-reach",
                    t.line,
                    format!(
                        "`{}` with a non-literal divisor reachable on the serve path: \
                         {label} — a zero divisor panics; guard it or use \
                         checked_div/checked_rem",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// serve-lock-reach
// ---------------------------------------------------------------------

/// The seqlock read path's contract is *no reader-visible lock
/// acquisition*: `where_is*`/`serve_payload` must never block behind a
/// flush. Generalizes PR 8's single-file `serve-reader-lock` to the
/// whole workspace: reachability is closed over resolved calls, lock
/// helpers and `.read()`/`.write()`/`.lock()` acquisitions are leaf
/// sinks (never traversed). Writer-side arms reached via
/// `serve_payload` suppress with a documented reason at the sink.
fn serve_lock_reach(units: &[Unit<'_>], graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let roots = graph.find(is_read_path_root);
    let barrier = |n: &Node<'_>| {
        LOCK_HELPERS.contains(&n.def.name.as_str()) || LOCK_METHODS.contains(&n.def.name.as_str())
    };
    let pred = bfs(graph, &roots, barrier);
    for (i, n) in graph.nodes.iter().enumerate() {
        if pred[i].is_none() {
            continue;
        }
        let ctx = units[n.unit].ctx;
        let label = path_to(graph, &pred, i);
        let toks = &ctx.lexed.toks;
        for j in n.def.body.clone() {
            let t = &toks[j];
            if ctx.in_test(t.line) {
                continue;
            }
            // read_lock(…) / write_lock(…) / lock_mutex(…)
            if t.kind == TokKind::Ident
                && LOCK_HELPERS.contains(&t.text.as_str())
                && toks.get(j + 1).is_some_and(|p| is_punct(p, '('))
                && !(j > 0 && is_ident(&toks[j - 1], "fn"))
            {
                out.push(reach_finding(
                    ctx,
                    "serve-lock-reach",
                    t.line,
                    format!(
                        "`{}` reachable from the read path: {label} — readers must stay \
                         wait-free; move the acquisition to a writer-side helper or \
                         suppress with a documented reason",
                        t.text
                    ),
                ));
            }
            // .read() / .write() / .lock()
            if is_punct(t, '.')
                && toks.get(j + 1).is_some_and(|m| {
                    m.kind == TokKind::Ident && LOCK_METHODS.contains(&m.text.as_str())
                })
                && toks.get(j + 2).is_some_and(|p| is_punct(p, '('))
            {
                out.push(reach_finding(
                    ctx,
                    "serve-lock-reach",
                    toks[j + 1].line,
                    format!(
                        "direct `.{}()` lock acquisition reachable from the read path: \
                         {label} — readers must stay wait-free",
                        toks[j + 1].text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// serve-alloc-reach
// ---------------------------------------------------------------------

/// The static twin of the `query_alloc` runtime pin: no allocation
/// spelling reachable from the `where_is*` query path. Sinks are
/// opaque-unsafe external names — `Box::new`, `vec!`, `format!`,
/// `.to_string()`, `.collect()`, `String::from`.
fn serve_alloc_reach(units: &[Unit<'_>], graph: &CallGraph<'_>, out: &mut Vec<Finding>) {
    let roots = graph.find(|n| n.def.name.starts_with("where_is"));
    let pred = bfs(graph, &roots, |_| false);
    for (i, n) in graph.nodes.iter().enumerate() {
        if pred[i].is_none() {
            continue;
        }
        let ctx = units[n.unit].ctx;
        let label = path_to(graph, &pred, i);
        for call in &n.def.calls {
            if ctx.in_test(call.line) {
                continue;
            }
            let sink = match (&call.kind, call.name.as_str()) {
                (CallKind::Macro, "vec") | (CallKind::Macro, "format") => {
                    Some(format!("`{}!`", call.name))
                }
                (CallKind::Method, "to_string") | (CallKind::Method, "collect") => {
                    Some(format!("`.{}()`", call.name))
                }
                (CallKind::Qualified(q), "from") if q == "String" => {
                    Some("`String::from`".to_string())
                }
                (CallKind::Qualified(q), "new") if q == "Box" => Some("`Box::new`".to_string()),
                _ => None,
            };
            if let Some(sink) = sink {
                out.push(reach_finding(
                    ctx,
                    "serve-alloc-reach",
                    call.line,
                    format!(
                        "{sink} allocates on the query path: {label} — the WhereIs read \
                         path is pinned zero-alloc (query_alloc); reuse a scratch buffer \
                         or move the allocation to the writer side"
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// seqlock-ordering
// ---------------------------------------------------------------------

#[derive(PartialEq)]
enum SeqOpKind {
    Load,
    Store,
    Rmw,
}

struct SeqOp {
    kind: SeqOpKind,
    ord: Option<String>,
    tok: usize,
    line: u32,
}

/// Memory-ordering shape of every function touching a `seq` atomic
/// (the seqlock sequence-word naming convention; `next_seq` and other
/// prefixed counters do not match). Encodes DESIGN.md §7: readers
/// enter with `Acquire` and may only re-check `Relaxed` behind an
/// `Acquire` fence; writers bracket payload stores between a
/// fence-protected odd store and a `Release` even store. RMW-only
/// functions (sequence-number allocators) are out of scope.
fn seqlock_ordering(units: &[Unit<'_>], out: &mut Vec<Finding>) {
    const RMW: &[&str] = &[
        "fetch_add",
        "fetch_sub",
        "fetch_or",
        "fetch_and",
        "fetch_xor",
        "fetch_update",
        "swap",
        "compare_exchange",
        "compare_exchange_weak",
    ];
    let acquire =
        |o: &Option<String>| matches!(o.as_deref(), Some("Acquire" | "SeqCst" | "AcqRel"));
    let release =
        |o: &Option<String>| matches!(o.as_deref(), Some("Release" | "SeqCst" | "AcqRel"));
    for u in units {
        let ctx = u.ctx;
        let toks = &ctx.lexed.toks;
        for def in &u.parsed.fns {
            if ctx.in_test(def.line) {
                continue;
            }
            let mut ops: Vec<SeqOp> = Vec::new();
            let mut fences: Vec<(usize, Option<String>)> = Vec::new();
            let mut payload_stores: Vec<usize> = Vec::new();
            for j in def.body.clone() {
                let t = &toks[j];
                if t.kind != TokKind::Ident {
                    continue;
                }
                // fence(Ordering::X)
                if t.text == "fence" && toks.get(j + 1).is_some_and(|p| is_punct(p, '(')) {
                    fences.push((j, call_ordering(toks, j + 1)));
                    continue;
                }
                // recv.op(…): j is the receiver, j+2 the op.
                let Some(op) = toks
                    .get(j + 1)
                    .filter(|d| is_punct(d, '.'))
                    .and_then(|_| toks.get(j + 2))
                    .filter(|o| o.kind == TokKind::Ident)
                else {
                    continue;
                };
                if !toks.get(j + 3).is_some_and(|p| is_punct(p, '(')) {
                    continue;
                }
                let kind = match op.text.as_str() {
                    "load" => SeqOpKind::Load,
                    "store" => SeqOpKind::Store,
                    o if RMW.contains(&o) => SeqOpKind::Rmw,
                    _ => continue,
                };
                if t.text == "seq" {
                    ops.push(SeqOp {
                        kind,
                        ord: call_ordering(toks, j + 3),
                        tok: j,
                        line: op.line,
                    });
                } else if kind == SeqOpKind::Store {
                    payload_stores.push(j);
                }
            }
            let loads: Vec<&SeqOp> = ops.iter().filter(|o| o.kind == SeqOpKind::Load).collect();
            let stores: Vec<&SeqOp> = ops.iter().filter(|o| o.kind == SeqOpKind::Store).collect();

            if !stores.is_empty() {
                // Writer shape: seq+1 → fence(Release) → payload → seq+2.
                let first = stores[0];
                let last = stores[stores.len() - 1];
                if stores.len() == 1 {
                    out.push(reach_finding(
                        ctx,
                        "seqlock-ordering",
                        first.line,
                        format!(
                            "seqlock writer `{}`: a single unpaired `seq.store` cannot \
                             express the seq+1/fence/payload/seq+2 publish shape \
                             (DESIGN.md §7)",
                            def.display()
                        ),
                    ));
                } else {
                    if !release(&last.ord) {
                        out.push(reach_finding(
                            ctx,
                            "seqlock-ordering",
                            last.line,
                            format!(
                                "seqlock writer `{}`: the final `seq.store` must be \
                                 `Ordering::Release` — it publishes the payload \
                                 (DESIGN.md §7); got {}",
                                def.display(),
                                last.ord.as_deref().unwrap_or("an unparsed ordering")
                            ),
                        ));
                    }
                    let has_payload_between = payload_stores
                        .iter()
                        .any(|&p| p > first.tok && p < last.tok);
                    let fence_between = fences
                        .iter()
                        .any(|(f, o)| *f > first.tok && *f < last.tok && release(o));
                    if !release(&first.ord) && has_payload_between && !fence_between {
                        out.push(reach_finding(
                            ctx,
                            "seqlock-ordering",
                            first.line,
                            format!(
                                "seqlock writer `{}`: the odd `seq.store(…, Relaxed)` \
                                 needs an `atomic::fence(Release)` before the payload \
                                 stores (DESIGN.md §7)",
                                def.display()
                            ),
                        ));
                    }
                }
            } else if let Some(first) = loads.first() {
                // Reader shape: Acquire entry, fence-protected re-check.
                if !acquire(&first.ord) {
                    out.push(reach_finding(
                        ctx,
                        "seqlock-ordering",
                        first.line,
                        format!(
                            "seqlock reader `{}`: the read-validate entry `seq.load` \
                             must be `Ordering::Acquire` (DESIGN.md §7); got {}",
                            def.display(),
                            first.ord.as_deref().unwrap_or("an unparsed ordering")
                        ),
                    ));
                }
                for later in loads.iter().skip(1) {
                    if matches!(later.ord.as_deref(), Some("Relaxed"))
                        && !fences
                            .iter()
                            .any(|(f, o)| *f > first.tok && *f < later.tok && acquire(o))
                    {
                        out.push(reach_finding(
                            ctx,
                            "seqlock-ordering",
                            later.line,
                            format!(
                                "seqlock reader `{}`: the re-check `seq.load(Relaxed)` \
                                 needs an `atomic::fence(Acquire)` between the payload \
                                 reads and the re-check (DESIGN.md §7)",
                                def.display()
                            ),
                        ));
                    }
                }
            }
        }
    }
}

/// The last `Ordering::X` path inside the call whose `(` is at `open`.
fn call_ordering(toks: &[Tok], open: usize) -> Option<String> {
    let close = crate::parser::matching_delim(toks, open, '(', ')')?;
    let mut ord = None;
    for j in open..close {
        if is_ident(&toks[j], "Ordering")
            && toks.get(j + 1).is_some_and(|t| is_punct(t, ':'))
            && toks.get(j + 2).is_some_and(|t| is_punct(t, ':'))
        {
            if let Some(x) = toks.get(j + 3).filter(|t| t.kind == TokKind::Ident) {
                ord = Some(x.text.clone());
            }
        }
    }
    ord
}

fn reach_finding(
    ctx: &crate::FileCtx<'_>,
    rule: &'static str,
    line: u32,
    message: String,
) -> Finding {
    Finding {
        rule,
        path: ctx.path.to_string(),
        line,
        message,
        snippet: ctx.snippet(line),
    }
}
