//! The self-test the CI gate rides on: the live workspace lints clean
//! against the committed baseline, and the baseline itself is empty —
//! real findings get fixed, not grandfathered.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let findings = bips_lint::check_workspace(root).expect("workspace walk");
    let baseline =
        std::fs::read_to_string(root.join("crates/lint/baseline.txt")).unwrap_or_default();
    let remaining = bips_lint::apply_baseline(findings, &baseline);
    assert!(
        remaining.is_empty(),
        "bips-lint found {} problem(s) in the live workspace:\n{}",
        remaining.len(),
        remaining
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn baseline_is_empty() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("baseline.txt");
    let baseline = std::fs::read_to_string(path).expect("committed baseline");
    let entries: Vec<&str> = baseline
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert!(
        entries.is_empty(),
        "the baseline must stay empty — fix findings instead of grandfathering them: {entries:#?}"
    );
}
