//! Golden-fixture tests: each file under `tests/fixtures/` trips
//! exactly its own rule (and the clean/suppressed fixtures trip
//! nothing). Fixtures are linted under synthetic workspace paths so
//! the path-scoped rules activate; the files themselves are never
//! compiled.

use bips_lint::{apply_baseline, check_source, Finding};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lints a fixture as if it lived at `as_path` and asserts every
/// finding is `rule`, returning the findings.
fn expect_only(name: &str, as_path: &str, rule: &str, at_least: usize) -> Vec<Finding> {
    let findings = check_source(as_path, &fixture(name));
    assert!(
        findings.len() >= at_least,
        "{name}: expected ≥{at_least} findings, got {findings:#?}"
    );
    for f in &findings {
        assert_eq!(f.rule, rule, "{name}: unexpected rule in {f}");
        assert_eq!(f.path, as_path);
        assert!(f.line > 0, "{name}: finding without a line: {f}");
        assert!(
            !f.snippet.is_empty(),
            "{name}: finding without a snippet: {f}"
        );
    }
    findings
}

#[test]
fn wall_clock_fixture() {
    let f = expect_only(
        "wall_clock.rs",
        "crates/desim/src/engine.rs",
        "wall-clock",
        2,
    );
    // The cfg(test) module's Instant::now must not be flagged.
    assert!(
        f.iter().all(|f| f.line < 13),
        "test-region finding leaked: {f:#?}"
    );
}

#[test]
fn wall_clock_fixture_is_clean_on_sanctioned_paths() {
    for path in [
        "crates/desim/src/probe.rs",
        "crates/bench/src/telemetry.rs",
        "src/bin/bips-sim.rs",
    ] {
        let findings = check_source(path, &fixture("wall_clock.rs"));
        assert!(
            findings.is_empty(),
            "{path} should allow wall-clock: {findings:#?}"
        );
    }
}

#[test]
fn hash_iter_fixture() {
    let f = expect_only("hash_iter.rs", "crates/core/src/system.rs", "hash-iter", 2);
    // One method-iteration finding, one for-loop finding.
    assert!(f.iter().any(|f| f.message.contains(".iter()")), "{f:#?}");
    assert!(f.iter().any(|f| f.message.contains("for-loop")), "{f:#?}");
}

#[test]
fn hash_iter_only_applies_to_simulation_crates() {
    // The same source outside the scoped crates (e.g. the bench
    // harness) is fine: report assembly order doesn't replay events.
    let findings = check_source("crates/bench/src/report.rs", &fixture("hash_iter.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn entropy_fixture() {
    expect_only("entropy.rs", "crates/mobility/src/walker.rs", "entropy", 1);
}

#[test]
fn nan_cmp_fixture() {
    let f = expect_only("nan_cmp.rs", "crates/desim/src/stats.rs", "nan-cmp", 2);
    assert!(f.iter().any(|f| f.message.contains("sort")), "{f:#?}");
    assert!(
        f.iter().any(|f| f.message.contains("unwrap/expect")),
        "{f:#?}"
    );
}

#[test]
fn serve_panic_fixture() {
    // The legacy file-scoped coverage, now expressed as scan-only
    // roots of serve-panic-reach: every fn in a serve-path file has
    // its own body scanned.
    let f = expect_only(
        "serve_panic.rs",
        "crates/core/src/service.rs",
        "serve-panic-reach",
        4,
    );
    // unwrap, expect, panic!, and the unchecked index — but nothing
    // from `total_version` (the sanctioned spellings) or the tests.
    assert!(
        f.iter().all(|f| f.line < 14),
        "sanctioned code flagged: {f:#?}"
    );
}

#[test]
fn serve_panic_only_applies_to_the_serving_path() {
    // No scan-only file scope at this path and no fn named like a
    // serve entry point: nothing to root the rule at.
    let findings = check_source("crates/core/src/graph/mod.rs", &fixture("serve_panic.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn serve_panic_covers_the_graph_path_walk() {
    let f = expect_only(
        "serve_panic_walk.rs",
        "crates/core/src/graph/walk.rs",
        "serve-panic-reach",
        3,
    );
    // The unchecked index, unreachable!, and unwrap — but nothing from
    // the `.get()`-based walk or the test module.
    assert!(
        f.iter().all(|f| f.line < 15),
        "sanctioned code flagged: {f:#?}"
    );
    // The same file outside the walk path is not in scope.
    let clean = check_source(
        "crates/core/src/graph/dynamic.rs",
        &fixture("serve_panic_walk.rs"),
    );
    assert!(clean.is_empty(), "{clean:#?}");
}

#[test]
fn serve_lock_reach_fixture() {
    let f = expect_only(
        "serve_reader_lock.rs",
        "crates/core/src/service.rs",
        "serve-lock-reach",
        2,
    );
    assert_eq!(f.len(), 2, "{f:#?}");
    // The helper call inside the root itself …
    assert!(
        f.iter()
            .any(|f| f.message.contains("`read_lock`") && f.message.contains("where_is")),
        "{f:#?}"
    );
    // … and the direct acquisition one call level down from
    // `serve_payload`, reported with the full call path. The
    // writer-only `apply_pending` (write_lock, lock_mutex), the helper
    // bodies (leaf acquisitions, never traversed) and the test module
    // must all stay unflagged.
    assert!(
        f.iter().any(|f| f.message.contains("`.read()`")
            && f.message
                .contains("Engine::serve_payload → Engine::snapshot_slot")),
        "{f:#?}"
    );
}

#[test]
fn serve_lock_reach_roots_are_name_based_not_path_based() {
    // The legacy rule was confined to service.rs; the reachability
    // rule roots at *any* fn named where_is*/serve_payload, so the
    // same fixture now trips at any live path — that widening is the
    // point of the rule.
    let findings = check_source(
        "crates/core/src/graph/mod.rs",
        &fixture("serve_reader_lock.rs"),
    );
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(
        findings.iter().all(|f| f.rule == "serve-lock-reach"),
        "{findings:#?}"
    );
}

#[test]
fn panic_two_calls_below_a_serve_root_is_caught_with_the_call_path() {
    // crates/lan/src/rpc.rs is NOT in any scan-only file scope: every
    // finding here comes from transitive reachability alone.
    let f = expect_only(
        "panic_two_deep.rs",
        "crates/lan/src/rpc.rs",
        "serve-panic-reach",
        1,
    );
    assert_eq!(f.len(), 1, "only the reachable sink: {f:#?}");
    assert!(
        f[0].message.contains("serve_payload → helper_a → helper_b"),
        "full call path missing: {f:#?}"
    );
    // The identical sink in `offline_rebuild` (no root reaches it)
    // stays unflagged — that is what `len() == 1` proves.
}

#[test]
fn alloc_reach_fixture() {
    let f = expect_only(
        "alloc_reach.rs",
        "crates/lan/src/rpc.rs",
        "serve-alloc-reach",
        1,
    );
    assert_eq!(f.len(), 1, "{f:#?}");
    assert!(
        f[0].message.contains("`format!`") && f[0].message.contains("where_is → lookup_name"),
        "{f:#?}"
    );
    // The suppressed `.to_string()` sink and the writer-side `vec!`
    // in `rebuild_names` (unreachable from any root) are both absent.
}

#[test]
fn seqlock_ordering_fixture() {
    let f = expect_only(
        "seqlock_ordering.rs",
        "crates/desim/src/hot.rs",
        "seqlock-ordering",
        5,
    );
    assert_eq!(f.len(), 5, "{f:#?}");
    // R1: Relaxed entry load.
    assert!(
        f.iter()
            .any(|f| f.message.contains("racy_snapshot") && f.message.contains("Acquire")),
        "{f:#?}"
    );
    // R2: missing fence before the Relaxed re-check.
    assert!(
        f.iter()
            .any(|f| f.message.contains("unfenced_snapshot") && f.message.contains("fence")),
        "{f:#?}"
    );
    // W1 + W2 on the torn writer.
    assert_eq!(
        f.iter()
            .filter(|f| f.message.contains("torn_publish"))
            .count(),
        2,
        "{f:#?}"
    );
    // W3: the single bare store.
    assert!(
        f.iter()
            .any(|f| f.message.contains("bump") && f.message.contains("single unpaired")),
        "{f:#?}"
    );
    // The sanctioned `snapshot`/`publish` shapes, the RMW-only
    // allocator, and the suppressed diagnostic peek are all clean.
}

#[test]
fn unsafe_safety_fixture() {
    let f = expect_only(
        "unsafe_safety.rs",
        "crates/lan/src/transport.rs",
        "unsafe-safety",
        1,
    );
    assert_eq!(f.len(), 1, "only the unjustified block: {f:#?}");
    assert_eq!(f[0].line, 5);
}

#[test]
fn metric_name_fixture() {
    let f = expect_only(
        "metric_name.rs",
        "crates/baseband/src/medium.rs",
        "metric-name",
        4,
    );
    assert_eq!(f.len(), 4, "{f:#?}");
}

#[test]
fn suppressed_fixture_is_clean() {
    let findings = check_source("crates/desim/src/engine.rs", &fixture("suppressed.rs"));
    assert!(
        findings.is_empty(),
        "valid suppressions must absorb findings: {findings:#?}"
    );
}

#[test]
fn bad_suppression_fixture() {
    let f = check_source("crates/desim/src/engine.rs", &fixture("bad_suppression.rs"));
    assert_eq!(f.len(), 3, "{f:#?}");
    assert!(f.iter().all(|f| f.rule == "bad-suppression"), "{f:#?}");
    assert!(
        f.iter()
            .any(|f| f.message.contains("unknown rule `no-such-rule`")),
        "{f:#?}"
    );
    assert!(
        f.iter().any(|f| f.message.contains("needs a reason")),
        "{f:#?}"
    );
    assert!(f.iter().any(|f| f.message.contains("unused")), "{f:#?}");
}

#[test]
fn clean_fixture_is_clean() {
    let findings = check_source("crates/core/src/system.rs", &fixture("clean.rs"));
    assert!(findings.is_empty(), "{findings:#?}");
}

#[test]
fn baseline_absorbs_and_reports_stale() {
    let findings = check_source("crates/mobility/src/walker.rs", &fixture("entropy.rs"));
    assert!(!findings.is_empty());

    // A baseline holding every finding absorbs them all.
    let baseline: String = findings
        .iter()
        .map(|f| format!("{}\n", f.baseline_entry()))
        .collect();
    let remaining = apply_baseline(findings.clone(), &baseline);
    assert!(remaining.is_empty(), "{remaining:#?}");

    // An entry matching nothing resurfaces as stale-baseline.
    let with_stale = format!("{baseline}entropy\tcrates/gone.rs\tlet r = OsRng;\n");
    let remaining = apply_baseline(findings, &with_stale);
    assert_eq!(remaining.len(), 1, "{remaining:#?}");
    assert_eq!(remaining[0].rule, "stale-baseline");
    assert!(remaining[0].message.contains("crates/gone.rs"));
}

#[test]
fn metric_doc_drift_both_directions() {
    let doc = "## Metric catalog\n\n| name | kind |\n|---|---|\n\
               | `core.census.members` | gauge |\n\
               | `core.census.ghost` | counter |\n";
    // Registered + documented: clean. Registered-only and
    // documented-only: one finding each, pointing at the right side.
    let regs = vec![
        (
            "core.census.members".to_string(),
            "crates/core/src/system.rs".to_string(),
            20,
        ),
        (
            "core.census.rogue".to_string(),
            "crates/core/src/system.rs".to_string(),
            21,
        ),
    ];
    let f = bips_lint::metric_doc_drift(doc, &regs);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|f| f.rule == "metric-doc"));
    assert!(
        f.iter()
            .any(|f| f.path == "crates/core/src/system.rs" && f.message.contains("rogue")),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|f| f.path == "docs/OBSERVABILITY.md" && f.message.contains("ghost")),
        "{f:#?}"
    );
}

#[test]
fn trace_kinds_are_collected_as_snake_case() {
    let source = "/// Registry.\n\
                  #[repr(u8)]\n\
                  pub enum TraceKind {\n\
                      /// A frame was decoded (`code` = Direction).\n\
                      FrameDecode = 0,\n\
                      QueryStart = 1,\n\
                      Anomaly = 6,\n\
                  }\n\
                  impl TraceKind { pub const ALL: [TraceKind; 1] = [TraceKind::Anomaly]; }\n";
    let kinds = bips_lint::collect_trace_kinds(source);
    let names: Vec<&str> = kinds.iter().map(|(n, _)| n.as_str()).collect();
    // Only variants inside the enum body count — not the doc-comment
    // words, not the `ALL` table in the impl block.
    assert_eq!(names, vec!["frame_decode", "query_start", "anomaly"]);
    assert_eq!(kinds[0].1, 5, "line of the first variant");
}

#[test]
fn trace_doc_drift_both_directions() {
    let doc = "## Trace event catalog\n\n| event | meaning |\n|---|---|\n\
               | `query_start` | a query entered its shard |\n\
               | `phantom_kind` | documented but never emitted |\n\
               \n## Metric catalog\n\n| name | kind |\n|---|---|\n";
    let kinds = vec![
        ("query_start".to_string(), 55),
        ("rogue_kind".to_string(), 60),
    ];
    let f = bips_lint::trace_doc_drift(doc, &kinds);
    assert_eq!(f.len(), 2, "{f:#?}");
    assert!(f.iter().all(|f| f.rule == "trace-doc"));
    assert!(
        f.iter().any(|f| f.path == bips_lint::TRACE_KIND_FILE
            && f.line == 60
            && f.message.contains("rogue_kind")),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|f| f.path == "docs/OBSERVABILITY.md" && f.message.contains("phantom_kind")),
        "{f:#?}"
    );
    // Clean when registry and catalog agree.
    let clean = bips_lint::trace_doc_drift(
        doc,
        &[
            ("query_start".to_string(), 55),
            ("phantom_kind".to_string(), 56),
        ],
    );
    assert!(clean.is_empty(), "{clean:#?}");
}
