//! Whole-workspace self-parse and call-graph determinism: the item
//! parser must handle every `.rs` file the analyzer walks without
//! recording an anomaly, and two builds over identical input must
//! produce byte-identical graphs.

use std::path::Path;

use bips_lint::callgraph::{CallGraph, Unit};
use bips_lint::{make_ctx, parser, workspace_sources};

fn workspace_root() -> &'static Path {
    // crates/lint/ → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
}

#[test]
fn parser_handles_every_workspace_file_without_anomalies() {
    let sources = workspace_sources(workspace_root()).expect("walk workspace");
    assert!(
        sources.len() > 20,
        "workspace walk looks wrong: {} files",
        sources.len()
    );
    for (rel, src) in &sources {
        let ctx = make_ctx(rel, src);
        let parsed = parser::parse(&ctx.lexed);
        assert!(
            parsed.anomalies.is_empty(),
            "{rel}: parse anomalies: {:?}",
            parsed.anomalies
        );
    }
}

#[test]
fn call_graph_is_deterministic_and_resolves_the_serve_chain() {
    let sources = workspace_sources(workspace_root()).expect("walk workspace");
    let ctxs: Vec<_> = sources.iter().map(|(p, s)| make_ctx(p, s)).collect();
    let parsed: Vec<_> = ctxs.iter().map(|c| parser::parse(&c.lexed)).collect();

    let build_dump = || {
        let units: Vec<Unit<'_>> = ctxs
            .iter()
            .zip(&parsed)
            .map(|(ctx, parsed)| Unit { ctx, parsed })
            .collect();
        CallGraph::build(&units).dump(&units)
    };
    let a = build_dump();
    let b = build_dump();
    assert_eq!(a, b, "two builds over identical input diverged");

    // Spot-check the resolution heuristics on the real serve chain:
    // where_is delegates to where_is_traced, which runs the query via
    // where_is_inner.
    let where_is_line = a
        .lines()
        .find(|l| {
            l.contains("crates/core/src/service.rs") && l.contains(" ShardedService::where_is ->")
        })
        .expect("where_is node in the graph");
    assert!(
        where_is_line.contains("ShardedService::where_is_traced"),
        "where_is edge missing: {where_is_line}"
    );
    let traced_line = a
        .lines()
        .find(|l| l.contains(" ShardedService::where_is_traced ->"))
        .expect("where_is_traced node in the graph");
    assert!(
        traced_line.contains("ShardedService::where_is_inner"),
        "where_is_traced edge missing: {traced_line}"
    );
}
