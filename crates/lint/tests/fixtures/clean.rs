//! Fixture: idiomatic simulation-path code — zero findings (linted as
//! if it were `crates/core/src/system.rs`).

use std::collections::BTreeMap;

pub struct Census {
    members: BTreeMap<u64, u32>,
}

impl Census {
    pub fn total(&self) -> u64 {
        // Ordered iteration: deterministic by construction.
        self.members.keys().sum()
    }

    pub fn sorted_rates(rates: &mut [f64]) {
        rates.sort_by(f64::total_cmp);
    }

    pub fn export_metrics(&self, metrics: &mut MetricSet) {
        metrics.gauge("core.census.members", self.members.len() as f64);
    }
}
