//! Fixture: HashMap/HashSet iteration in a simulation crate (linted
//! as if it were `crates/core/src/system.rs`). Never compiled.

use std::collections::{HashMap, HashSet};

pub struct Piconets {
    members: HashMap<u64, u32>,
    seen: HashSet<u64>,
}

impl Piconets {
    pub fn census(&self) -> u64 {
        let mut total = 0;
        for (&addr, &cell) in self.members.iter() {
            // finding: hash-iter (method call)
            total += addr ^ u64::from(cell);
        }
        for addr in &self.seen {
            // finding: hash-iter (for-loop over the set)
            total ^= addr;
        }
        total
    }

    pub fn lookups_are_fine(&self, addr: u64) -> Option<u32> {
        // Point lookups don't leak hash order: no finding.
        if self.seen.contains(&addr) {
            self.members.get(&addr).copied()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let m: HashMap<u64, u32> = HashMap::new();
        assert_eq!(m.values().count(), 0);
    }
}
