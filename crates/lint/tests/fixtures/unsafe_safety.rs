//! Fixture: unsafe without justification (linted as if it were
//! `crates/lan/src/transport.rs`). Never compiled.

pub fn peek_first(bytes: &[u8]) -> u8 {
    unsafe { *bytes.as_ptr() } // finding: unsafe-safety
}

pub fn peek_justified(bytes: &[u8]) -> u8 {
    assert!(!bytes.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds. No finding here.
    unsafe { *bytes.as_ptr() }
}

/// Reads the first element without a bounds check.
///
/// # Safety
///
/// Caller must guarantee `bytes` is non-empty. (Rustdoc `# Safety`
/// sections count as justification: no finding.)
pub unsafe fn peek_unchecked(bytes: &[u8]) -> u8 {
    // SAFETY: non-emptiness is the caller's contract (see `# Safety`).
    unsafe { *bytes.as_ptr() }
}
