//! Fixture: seqlock sequence-word memory-ordering shapes (linted as
//! if it were `crates/desim/src/hot.rs`). Never compiled. The
//! sanctioned reader/writer shapes from DESIGN.md §7 must stay clean;
//! each broken shape trips exactly its own check.

use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};

pub struct Slot {
    seq: AtomicU32,
    val: AtomicU64,
}

impl Slot {
    /// The sanctioned reader shape: Acquire entry, Relaxed payload,
    /// Acquire fence, Relaxed re-check. Clean.
    pub fn snapshot(&self) -> Option<u64> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 & 1 == 1 {
            return None;
        }
        let v = self.val.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return None;
        }
        Some(v)
    }

    /// The sanctioned writer shape: odd store, Release fence, payload,
    /// Release even store. Clean.
    pub fn publish(&self, v: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        self.val.store(v, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    /// Relaxed entry load. finding: seqlock-ordering (R1)
    pub fn racy_snapshot(&self) -> u64 {
        let s1 = self.seq.load(Ordering::Relaxed);
        let v = self.val.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return 0;
        }
        v
    }

    /// No fence before the Relaxed re-check. finding: seqlock-ordering (R2)
    pub fn unfenced_snapshot(&self) -> u64 {
        let s1 = self.seq.load(Ordering::Acquire);
        let v = self.val.load(Ordering::Relaxed);
        if self.seq.load(Ordering::Relaxed) != s1 {
            return 0;
        }
        v
    }

    /// Relaxed publish store and an unfenced odd store.
    /// findings: seqlock-ordering (W1 on the last store, W2 on the first)
    pub fn torn_publish(&self, v: u64) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s + 1, Ordering::Relaxed);
        self.val.store(v, Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Relaxed);
    }

    /// One bare store cannot express the publish shape.
    /// finding: seqlock-ordering (W3)
    pub fn bump(&self) {
        self.seq.store(7, Ordering::Release);
    }

    /// A justified exception suppresses at the sink. Clean.
    pub fn debug_peek(&self) -> u32 {
        // lint:allow(seqlock-ordering): diagnostic peek, tearing acceptable
        self.seq.load(Ordering::Relaxed)
    }
}

pub struct SeqAlloc {
    seq: AtomicU64,
}

impl SeqAlloc {
    /// RMW-only sequence allocator: out of the rule's scope. Clean.
    pub fn next(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }
}
