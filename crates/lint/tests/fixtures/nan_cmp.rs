//! Fixture: NaN-unsafe float comparisons (linted as if it were
//! `crates/desim/src/stats.rs`). Never compiled.

pub fn worst_latency(samples: &mut Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap()); // finding: nan-cmp (sort_by + partial_cmp)
    let max = samples
        .last()
        .copied()
        .unwrap_or(0.0);
    let other = 1.5_f64;
    let _ord = max.partial_cmp(&other).expect("comparable"); // finding: nan-cmp
    max
}

pub fn safe_version(samples: &mut [f64]) {
    // total_cmp is the sanctioned spelling: no finding.
    samples.sort_by(f64::total_cmp);
}
