//! Fixture: panics in the graph path walk (linted as if it were
//! `crates/core/src/graph/walk.rs`). Never compiled.

pub fn walk_prev(prev: &[u32], from: u32, to: u32, out: &mut Vec<u32>) -> f64 {
    let mut cur = to;
    while cur != from {
        out.push(cur);
        cur = prev[cur as usize]; // finding: serve-panic (unchecked index)
        if out.len() > prev.len() {
            unreachable!("prev cycle"); // finding: serve-panic
        }
    }
    *out.last().map(|c| c as *const u32).map(|_| &0.0).unwrap() // finding: serve-panic
}

pub fn walk_prev_checked(prev: &[u32], from: u32, to: u32, out: &mut Vec<u32>) -> Option<u32> {
    // The sanctioned spellings: no findings.
    let mut cur = to;
    while cur != from {
        out.push(cur);
        cur = *prev.get(cur as usize)?;
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let prev = [0u32, 0, 1];
        assert_eq!(prev[2], 1);
    }
}
