//! Fixture: metric-name discipline (linted as if it were
//! `crates/baseband/src/medium.rs`). Never compiled.

pub fn export_metrics(metrics: &mut MetricSet, shard: usize) {
    metrics.set_counter("FramesSent", 1); // finding: metric-name (no dots, uppercase)
    metrics.inc("baseband"); // finding: metric-name (one segment)
    metrics.gauge("baseband.link.rssi.mean.db", 0.0); // finding: metric-name (5 segments)
    metrics.observe("lan.Frames.sent", 2.0); // finding: metric-name (uppercase segment)

    // Well-formed names, including a format! placeholder: no findings.
    metrics.set_counter("baseband.inquiry.ids_heard", 3);
    metrics.set_counter(&format!("core.service.shard{shard}.queries"), 4);
}
