//! Fixture: ambient entropy (linted as if it were
//! `crates/mobility/src/walker.rs`). Never compiled.

pub fn shuffle_route(route: &mut Vec<usize>) {
    let mut rng = rand::thread_rng(); // finding: entropy
    let _ = &mut rng;
    route.reverse();
}

pub fn reseed() -> u64 {
    // Strings and comments must not trip the rule: "thread_rng".
    let label = "from_entropy in a string is fine";
    label.len() as u64
}
