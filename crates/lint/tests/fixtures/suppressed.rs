//! Fixture: every violation carries a valid suppression — the file
//! must lint clean (linted as if it were `crates/desim/src/engine.rs`).

use std::time::Instant; // an import alone is fine (only `::now` trips)

pub fn profiled_dispatch() -> u64 {
    // lint:allow(wall-clock): one-off local profiling aid, not merged telemetry
    let t0 = Instant::now();
    let rng = rand::thread_rng(); // lint:allow(entropy): fixture exercises trailing-comment form
    let _ = rng;
    t0.elapsed().as_nanos() as u64
}
