//! Fixture: panics on the serving path (linted as if it were
//! `crates/core/src/service.rs`). Never compiled.

pub fn answer_query(shards: &[u32], shard: usize, cell: Option<u32>) -> u32 {
    let c = cell.unwrap(); // finding: serve-panic
    let s = shards[shard]; // finding: serve-panic (unchecked index)
    if s == 0 {
        panic!("empty shard"); // finding: serve-panic
    }
    let fallback = cell.expect("checked above"); // finding: serve-panic
    s + c + fallback
}

pub fn total_version(shards: &[u32], shard: usize, cell: Option<u32>) -> Option<u32> {
    // The sanctioned spellings: no findings.
    let c = cell?;
    let s = shards.get(shard)?;
    for probe in [c, *s] {
        // Array literals after `in` are not indexing.
        let _ = probe;
    }
    Some(s + c)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
