//! Fixture: a panic two calls below a serve root is caught by
//! transitive reachability with the full call path, while the same
//! panic in a helper no root reaches is not (linted as if it were
//! `crates/lan/src/rpc.rs` — a path with no scan-only file scope).
//! Never compiled.

pub struct Frame {
    cells: Vec<u32>,
}

/// Transitive root by name: the serve entry point.
pub fn serve_payload(frame: &Frame, idx: usize) -> u32 {
    helper_a(frame, idx)
}

fn helper_a(frame: &Frame, idx: usize) -> u32 {
    helper_b(frame, idx)
}

fn helper_b(frame: &Frame, idx: usize) -> u32 {
    // finding: serve-panic-reach (serve_payload → helper_a → helper_b)
    frame.cells.get(idx).copied().unwrap()
}

/// The identical sink, but nothing on the serve path calls this:
/// offline rebuild tooling may panic. No finding.
pub fn offline_rebuild(frame: &Frame, idx: usize) -> u32 {
    frame.cells.get(idx).copied().unwrap()
}
