//! Fixture: wall-clock reads on a simulation path (linted as if it
//! were `crates/desim/src/engine.rs`). Never compiled — parsed only.

use std::time::{Instant, SystemTime};

pub fn dispatch_timing() -> f64 {
    let start = Instant::now(); // finding: wall-clock
    let _epoch = SystemTime::now(); // finding: wall-clock (x2: type + now is one token hit)
    start.elapsed().as_secs_f64()
}

#[cfg(test)]
mod tests {
    // Test code may time itself: no finding in here.
    #[test]
    fn timing_in_tests_is_fine() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
