//! Fixture: allocation spellings reachable from the `where_is*` query
//! path (linted as if it were `crates/lan/src/rpc.rs`). Never
//! compiled. Kept panic- and lock-clean so every finding is
//! serve-alloc-reach.

pub struct Registry {
    names: Vec<u32>,
}

/// Transitive root by name: the query path.
pub fn where_is(reg: &Registry, cell: u32) -> Option<u32> {
    lookup_name(reg, cell)
}

fn lookup_name(reg: &Registry, cell: u32) -> Option<u32> {
    // finding: serve-alloc-reach (where_is → lookup_name)
    let label = format!("cell-{cell}");
    // lint:allow(serve-alloc-reach): startup-interned tag, measured zero-alloc steady-state
    let tag = cell.to_string();
    let _ = (label, tag);
    reg.names.get(cell as usize).copied()
}

/// Writer-side rebuild: allocation is fine off the query path — no
/// root reaches this, so the `vec!` is not a finding.
pub fn rebuild_names(count: usize) -> Vec<u32> {
    let mut out = vec![0; count];
    out.truncate(count);
    out
}
