//! Fixture: lock acquisitions reachable from the read path (linted as
//! if it were `crates/core/src/service.rs`). Never compiled. Kept
//! serve-panic-clean so every finding is serve-reader-lock.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock helpers: leaf acquisitions. Their bodies are never traversed,
/// so the direct `.read()`/`.write()`/`.lock()` inside them is not
/// flagged — misuse is caught at their callsites instead.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

fn lock_mutex<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

pub struct Engine {
    slots: RwLock<Vec<u32>>,
    pending: Mutex<Vec<u32>>,
}

impl Engine {
    /// Root: reads a slot through the helper. finding: serve-reader-lock
    pub fn where_is(&self, slot: usize) -> Option<u32> {
        let guard = read_lock(&self.slots); // finding: serve-reader-lock
        guard.get(slot).copied()
    }

    /// Root: also flagged one call level down.
    pub fn serve_payload(&self, slot: usize) -> Option<u32> {
        self.snapshot_slot(slot)
    }

    /// Reachable from `serve_payload`: a direct acquisition.
    fn snapshot_slot(&self, slot: usize) -> Option<u32> {
        let guard = self.slots.read().ok()?; // finding: serve-reader-lock
        guard.get(slot).copied()
    }

    /// NOT reachable from any read-path root: writers may lock freely.
    pub fn apply_pending(&self, value: u32) {
        let mut queue = lock_mutex(&self.pending);
        queue.push(value);
        let mut slots = write_lock(&self.slots);
        slots.push(value);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_lock() {
        let lock = std::sync::RwLock::new(0u32);
        let guard = lock.read().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert_eq!(*guard, 0);
    }
}
