//! Fixture: malformed suppressions (linted as if it were
//! `crates/desim/src/engine.rs`).

pub fn misuse() -> u32 {
    // lint:allow(no-such-rule): the rule id is not real — finding: bad-suppression
    let a = 1;
    // lint:allow(entropy)
    let b = 2; // ^ missing `: reason` — finding: bad-suppression
    // lint:allow(wall-clock): nothing here trips wall-clock — finding: bad-suppression (unused)
    a + b
}
