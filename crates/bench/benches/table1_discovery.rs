//! Criterion bench for experiment T1: the cost of one discovery trial and
//! of the full 500-trial table.

use bips_bench::table1::{run, scenario, Table1Config};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::SimDuration;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(20);

    let sc = scenario(SimDuration::from_secs(60));
    let mut seed = 0u64;
    g.bench_function("single_trial", |b| {
        b.iter_batched(
            || {
                seed += 1;
                seed
            },
            |s| sc.run(s),
            BatchSize::SmallInput,
        )
    });

    g.sample_size(10);
    g.bench_function("table_100_trials", |b| {
        b.iter(|| {
            run(&Table1Config {
                trials: 100,
                horizon: SimDuration::from_secs(60),
                seed: 2003,
                jobs: 1,
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
