//! Criterion bench for the full-system pipeline: simulating one minute of
//! a two-user deployment (radio + LAN + mobility + server).

use bips_core::system::{BipsSystem, SystemConfig, UserSpec};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::SimTime;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracking_pipeline");
    g.sample_size(10);
    let mut seed = 0u64;
    g.bench_function("two_users_60s", |b| {
        b.iter_batched(
            || {
                seed += 1;
                BipsSystem::builder(SystemConfig::default())
                    .user(UserSpec::new("alice", 0))
                    .user(UserSpec::new("bob", 4))
                    .into_engine(seed)
            },
            |mut engine| {
                engine.run_until(SimTime::from_secs(60));
                engine.world().stats()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
