//! Criterion bench for the §2 path machinery: Dijkstra vs the
//! Bellman–Ford reference, offline APSP precomputation, the O(path)
//! online lookup the paper's design relies on, and the dynamic engine's
//! incremental repair under churn schedules (weight updates and node
//! down/up flaps) against the rebuild-per-mutation reference.

use bips_core::graph::{random_connected_graph, PathEngine, PathEngineKind, WsGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("shortest_paths");
    for &n in &[10usize, 50, 200] {
        let graph = random_connected_graph(n, n * 2, 42);
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &graph, |b, gr| {
            b.iter(|| gr.dijkstra(0))
        });
        g.bench_with_input(BenchmarkId::new("bellman_ford", n), &graph, |b, gr| {
            b.iter(|| gr.bellman_ford(0))
        });
        g.bench_with_input(BenchmarkId::new("apsp_precompute", n), &graph, |b, gr| {
            b.iter(|| gr.precompute_all_pairs())
        });
        let apsp = graph.precompute_all_pairs();
        g.bench_with_input(BenchmarkId::new("online_path_lookup", n), &apsp, |b, t| {
            b.iter(|| t.path(0, n - 1))
        });
    }
    // The building actually used by BIPS.
    let dept = WsGraph::from_building(&bips_mobility::Building::academic_department());
    g.bench_function("department_apsp", |b| {
        b.iter(|| dept.precompute_all_pairs())
    });
    g.finish();
}

/// One deterministic churn schedule: alternating weight updates and a
/// node down/up flap every eighth mutation, replayed against a fresh
/// engine per iteration so repairs never compound across samples.
fn churn_schedule(n: usize, len: usize) -> Vec<(u8, usize, usize, f64)> {
    let mut rng = desim::SimRng::seed_from(2003);
    (0..len)
        .map(|i| {
            if i % 8 == 7 {
                // Down on odd flaps, back up on even — the node spends
                // one mutation out of service.
                let x = rng.below(n as u64) as usize;
                (1, x, usize::from(i % 16 == 15), 0.0)
            } else {
                let a = rng.below(n as u64) as usize;
                let b = (a + 1 + rng.below(n as u64 - 1) as usize) % n;
                (0, a, b, rng.uniform(0.5, 50.0))
            }
        })
        .collect()
}

fn replay(engine: &mut PathEngine, schedule: &[(u8, usize, usize, f64)]) -> u64 {
    let mut applied = 0;
    for &(kind, a, b, w) in schedule {
        let ok = match kind {
            0 => engine.set_edge_weight(a, b, w),
            _ => engine.set_node_up(a, b == 1),
        };
        applied += u64::from(ok.unwrap_or(false));
    }
    applied
}

fn bench_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("path_churn");
    // The rebuild reference replays the whole schedule at seconds per
    // iteration; keep the sampling budget bounded.
    g.sample_size(10);
    for &n in &[1_000usize, 10_000] {
        let graph = random_connected_graph(n, n * 2, 42);
        let schedule = churn_schedule(n, 64);
        for kind in [
            PathEngineKind::Rebuild,
            PathEngineKind::DynamicDense,
            PathEngineKind::DynamicSparse,
        ] {
            // Rebuilding n Dijkstras per mutation at 10k cells takes
            // minutes per sample — the dedicated `path_churn` binary
            // measures that cost by extrapolation instead.
            if kind == PathEngineKind::Rebuild && n > 1_000 {
                continue;
            }
            // Dense mode tops out at DENSE_MAX_NODES.
            if kind == PathEngineKind::DynamicDense && n > 1_000 {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(format!("churn_{}", kind.name()), n),
                &graph,
                |b, gr| {
                    b.iter(|| {
                        let mut e = PathEngine::new(kind, gr.clone());
                        // Sparse mode repairs only warm trees: warm a
                        // hot source so repair work is measured, not
                        // skipped.
                        e.warm(0);
                        replay(&mut e, &schedule)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_paths, bench_churn);
criterion_main!(benches);
