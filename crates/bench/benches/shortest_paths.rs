//! Criterion bench for the §2 path machinery: Dijkstra vs the
//! Bellman–Ford reference, offline APSP precomputation, and the O(path)
//! online lookup the paper's design relies on.

use bips_core::graph::{random_connected_graph, WsGraph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("shortest_paths");
    for &n in &[10usize, 50, 200] {
        let graph = random_connected_graph(n, n * 2, 42);
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &graph, |b, gr| {
            b.iter(|| gr.dijkstra(0))
        });
        g.bench_with_input(BenchmarkId::new("bellman_ford", n), &graph, |b, gr| {
            b.iter(|| gr.bellman_ford(0))
        });
        g.bench_with_input(BenchmarkId::new("apsp_precompute", n), &graph, |b, gr| {
            b.iter(|| gr.precompute_all_pairs())
        });
        let apsp = graph.precompute_all_pairs();
        g.bench_with_input(BenchmarkId::new("online_path_lookup", n), &apsp, |b, t| {
            b.iter(|| t.path(0, n - 1))
        });
    }
    // The building actually used by BIPS.
    let dept = WsGraph::from_building(&bips_mobility::Building::academic_department());
    g.bench_function("department_apsp", |b| {
        b.iter(|| dept.precompute_all_pairs())
    });
    g.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
