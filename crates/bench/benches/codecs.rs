//! Criterion bench for the wire codecs: what each message costs to
//! encode/decode on the workstation and server hot paths.

use bips_core::handheld::HandheldMsg;
use bips_core::protocol::{LocateOutcome, Request, Response};
use bt_baseband::BdAddr;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codecs");

    let presence = Request::Presence {
        cell: 7,
        addr: BdAddr::new(0xAB_CDEF),
        present: true,
    };
    let presence_buf = presence.encode();
    g.bench_function("encode_presence", |b| {
        b.iter(|| black_box(&presence).encode())
    });
    g.bench_function("decode_presence", |b| {
        b.iter(|| Request::decode(black_box(&presence_buf)).unwrap())
    });

    let batch = Request::PresenceBatch {
        cell: 7,
        items: (0..20).map(|i| (BdAddr::new(i), i % 2 == 0)).collect(),
    };
    let batch_buf = batch.encode();
    g.bench_function("encode_presence_batch_20", |b| {
        b.iter(|| black_box(&batch).encode())
    });
    g.bench_function("decode_presence_batch_20", |b| {
        b.iter(|| Request::decode(black_box(&batch_buf)).unwrap())
    });

    let locate_resp = Response::LocateResult(LocateOutcome::Found {
        cell: 8,
        path: (0..9).collect(),
        distance: 71.5,
    });
    let locate_buf = locate_resp.encode();
    g.bench_function("encode_locate_result", |b| {
        b.iter(|| black_box(&locate_resp).encode())
    });
    g.bench_function("decode_locate_result", |b| {
        b.iter(|| Response::decode(black_box(&locate_buf)).unwrap())
    });

    let login = HandheldMsg::LoginUp {
        user: "giuseppe.mainetto".into(),
        password: "correct horse battery".into(),
    };
    let login_buf = login.encode();
    g.bench_function("encode_handheld_login", |b| {
        b.iter(|| black_box(&login).encode())
    });
    g.bench_function("decode_handheld_login", |b| {
        b.iter(|| HandheldMsg::decode(black_box(&login_buf)).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_codecs);
criterion_main!(benches);
