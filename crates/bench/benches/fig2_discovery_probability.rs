//! Criterion bench for experiment F2: one replication of the Figure 2
//! scenario at several slave counts.

use bips_bench::figure2::{scenario, Figure2Config};
use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure2");
    g.sample_size(20);
    let cfg = Figure2Config::default();
    for n in [2usize, 10, 20] {
        let sc = scenario(n, &cfg);
        let mut seed = 0u64;
        g.bench_with_input(BenchmarkId::new("replication", n), &n, |b, _| {
            b.iter_batched(
                || {
                    seed += 1;
                    seed
                },
                |s| sc.run(s),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
