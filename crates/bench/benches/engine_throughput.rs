//! Criterion bench for the desim engine itself: raw event throughput and
//! the cost of the calendar under cancellation churn — the numbers that
//! bound how much virtual time per wall second every experiment gets.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use desim::{Context, Engine, SimDuration, SimTime, World};

struct SelfScheduler {
    remaining: u64,
}

impl World for SelfScheduler {
    type Event = ();
    fn handle(&mut self, ctx: &mut Context<()>, _: ()) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.schedule_in(SimDuration::from_micros(625), ());
        }
    }
}

struct Canceller {
    remaining: u64,
}

impl World for Canceller {
    type Event = u32;
    fn handle(&mut self, ctx: &mut Context<u32>, _: u32) {
        if self.remaining > 0 {
            self.remaining -= 1;
            // Schedule two, cancel one: constant lazy-deletion churn.
            let _keep = ctx.schedule_in(SimDuration::from_micros(625), 0);
            let drop_ = ctx.schedule_in(SimDuration::from_micros(1250), 1);
            ctx.cancel(drop_);
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.bench_function("100k_chained_events", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new(SelfScheduler { remaining: 100_000 }, 1);
                e.schedule(SimTime::ZERO, ());
                e
            },
            |mut e| e.run(),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("50k_events_with_cancellation", |b| {
        b.iter_batched(
            || {
                let mut e = Engine::new(Canceller { remaining: 50_000 }, 1);
                e.schedule(SimTime::ZERO, 0);
                e
            },
            |mut e| e.run(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
