//! Criterion bench over the ablation variants: how expensive each
//! design-choice configuration is to simulate (the outcome comparison
//! lives in the `ablations` binary).

use bips_bench::ablations;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("collision_handling_10reps", |b| {
        b.iter(|| ablations::collision_handling(10, 1, 1))
    });
    g.bench_function("backoff_sweep_5reps", |b| {
        b.iter(|| ablations::backoff_bound(5, 2, 1))
    });
    g.bench_function("scan_models_10reps", |b| {
        b.iter(|| ablations::scan_freq_model(10, 3, 1))
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
