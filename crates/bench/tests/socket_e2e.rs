//! End-to-end socket serving tests: `bips-serve` behind a real
//! loopback TCP socket (and a Unix-domain socket) must serve the tiny
//! workload bit-identically to the in-process sharded engine —
//! checksum, ack checksum, and found count — for any connection count,
//! and drain gracefully on `Shutdown`.

use std::sync::Arc;

use bips_bench::loadgen::{
    build_service, generate_trace, run_sharded, run_socket, Dial, Mix, Workload,
};
use bips_bench::serve::{Bind, ServeStats, Server};

fn serve_and_run(
    w: &Workload,
    bind: &Bind,
    conns: usize,
) -> (bips_bench::loadgen::ModeResult, ServeStats) {
    let trace = generate_trace(w);
    let svc = Arc::new(build_service(w));
    let server = Server::bind(bind, svc, 2).expect("bind");
    let dial = match (bind, server.tcp_addr()) {
        (Bind::Tcp(_), Some(addr)) => Dial::Tcp(addr.to_string()),
        (Bind::Uds(path), _) => Dial::Uds(path.clone()),
        (Bind::Tcp(_), None) => panic!("tcp listener lost its address"),
    };
    let handle = std::thread::spawn(move || server.serve());
    let result = run_socket(w, &trace, &dial, conns, true).expect("socket replay");
    let stats = handle.join().expect("server thread");
    (result, stats)
}

#[test]
fn tcp_serving_is_bit_identical_to_in_process() {
    let w = Workload::tiny();
    let trace = generate_trace(&w);
    let (reference, _) = run_sharded(&w, &trace, 1);
    for conns in [1usize, 3] {
        let (r, stats) = serve_and_run(&w, &Bind::Tcp("127.0.0.1:0".to_string()), conns);
        assert_eq!(
            r.checksum, reference.checksum,
            "networked answers diverged at {conns} conns"
        );
        assert_eq!(
            r.ack_checksum, reference.ack_checksum,
            "networked flush acks diverged at {conns} conns"
        );
        assert_eq!(r.found, reference.found);
        assert_eq!(r.latencies_ns.len() as u64, w.queries());
        // Control conn + query conns + the shutdown wake-up dial.
        use std::sync::atomic::Ordering;
        assert_eq!(stats.conns.load(Ordering::Relaxed), 1 + conns as u64);
        assert_eq!(stats.dropped.load(Ordering::Relaxed), 0);
        let frames = stats.frames.load(Ordering::Relaxed);
        assert!(
            frames > w.queries(),
            "served {frames} frames, expected more than {} queries",
            w.queries()
        );
    }
}

#[test]
fn socket_checksums_are_mix_and_conn_invariant() {
    // The answer re-fold and the per-tick outcome buffer are sized
    // from the workload's own per-tick query count, so a non-default
    // mix must replay bit-identically for any connection count too.
    for mix in [Mix::Q50U50, Mix::Q99U1] {
        let w = Workload::tiny().with_mix(mix);
        let trace = generate_trace(&w);
        let (reference, _) = run_sharded(&w, &trace, 1);
        for conns in [1usize, 3] {
            let (r, _) = serve_and_run(&w, &Bind::Tcp("127.0.0.1:0".to_string()), conns);
            assert_eq!(
                r.checksum, reference.checksum,
                "{} answers diverged at {conns} conns",
                w.name
            );
            assert_eq!(
                r.ack_checksum, reference.ack_checksum,
                "{} flush acks diverged at {conns} conns",
                w.name
            );
            assert_eq!(r.found, reference.found);
            assert_eq!(r.latencies_ns.len() as u64, w.queries());
        }
    }
}

#[test]
fn uds_serving_is_bit_identical_to_in_process() {
    let w = Workload::tiny();
    let trace = generate_trace(&w);
    let (reference, _) = run_sharded(&w, &trace, 1);
    let path = std::env::temp_dir().join(format!("bips-serve-test-{}.sock", std::process::id()));
    let (r, _) = serve_and_run(&w, &Bind::Uds(path.clone()), 2);
    assert_eq!(r.checksum, reference.checksum, "uds answers diverged");
    assert_eq!(r.ack_checksum, reference.ack_checksum);
    assert!(!path.exists(), "socket file not cleaned up on shutdown");
}
