//! End-to-end span propagation: client → RPC frame → shard → response.
//!
//! A span allocated at the client rides the traced RPC request frame,
//! is extracted at `decode_ref_recorded` (recording `frame_decode`),
//! is handed to the sharded engine's `where_is_traced` (recording
//! `query_start`/`query_end` on the querier's shard ring), and rides
//! the traced response frame back (recording `frame_encode`). The
//! trace then tells the whole story of the request in global sequence
//! order, all attributed to the one span.

use std::sync::Arc;

use bips_core::graph::WsGraph;
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::{ShardedService, WhereIs};
use bips_lan::network::HostId;
use bips_lan::rpc::{RpcCodec, RpcFrame};
use bips_lan::transport::AppMessage;
use bt_baseband::BdAddr;
use desim::tracing::{TraceKind, Tracer};

const SHARDS: usize = 4;

fn app_msg(src: usize, dst: usize, payload: Vec<u8>) -> AppMessage {
    AppMessage {
        src: HostId::new(src),
        dst: HostId::new(dst),
        payload,
    }
}

#[test]
fn span_travels_client_to_shard_and_back() {
    let tracer = Arc::new(Tracer::new(SHARDS, 64));

    // The serving side: a small sharded engine with the tracer attached.
    let mut reg = Registry::new();
    for i in 0..32u64 {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    let mut g = WsGraph::new(8);
    for i in 0..7 {
        g.add_edge(i, i + 1, 10.0);
    }
    let mut svc = ShardedService::new(&reg, g.precompute_all_pairs(), SHARDS);
    svc.attach_tracer(Arc::clone(&tracer));
    for uid in 0..32 {
        svc.login(uid, "pw", BdAddr::new(500 + uid)).unwrap();
    }
    for uid in 0..32 {
        svc.ingest(BdAddr::new(500 + uid), (uid % 8) as u32, true, uid + 1);
    }
    svc.flush(1);

    // Client side: allocate a span, frame a traced request.
    let mut client = RpcCodec::new();
    let span = tracer.next_span();
    let querier = 6u64; // shard = 6 & 3 = 2
    let target = 9u64;
    let ring = (querier as usize) % SHARDS;
    let (corr, wire) = client.encode_request_traced(span, &[querier as u8, target as u8]);

    // Server side: deframe (records frame_decode), serve (records
    // query_start/query_end), respond (records frame_encode).
    let request = app_msg(1, 2, wire);
    let frame = RpcCodec::decode_ref_recorded(&request, &tracer, ring).expect("request decodes");
    let RpcFrame::Request {
        corr: got_corr,
        span: got_span,
        payload,
        ..
    } = frame
    else {
        panic!("not a request: {frame:?}");
    };
    assert_eq!(got_corr, corr);
    assert_eq!(got_span, span, "the span survives the wire");
    let (q, t) = (u64::from(payload[0]), u64::from(payload[1]));
    let mut path = Vec::new();
    let out = svc.where_is_traced(q, t, 0, &mut path, got_span);
    assert!(matches!(out, WhereIs::Found { .. }), "{out:?}");
    let resp_wire = RpcCodec::encode_response_recorded(got_corr, got_span, &[1], &tracer, ring);

    // Client side again: the span rides the response home.
    let response = app_msg(2, 1, resp_wire);
    let back = RpcCodec::decode_ref_recorded(&response, &tracer, ring).expect("response decodes");
    assert_eq!(back.span(), span);

    // The ring now tells the request's whole story, in causal order.
    let story: Vec<TraceKind> = tracer
        .last_events(64)
        .into_iter()
        .filter(|e| e.span == span)
        .map(|e| e.kind)
        .collect();
    assert_eq!(
        story,
        vec![
            TraceKind::FrameDecode,
            TraceKind::QueryStart,
            TraceKind::QueryEnd,
            TraceKind::FrameEncode,
            TraceKind::FrameDecode,
        ]
    );
}
