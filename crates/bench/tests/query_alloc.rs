//! Pins the "zero allocations per steady-state WhereIs query" claim.
//!
//! A counting global allocator wraps the system one; after warming the
//! caller-owned path buffer, a burst of `where_is` queries across the
//! whole outcome spectrum must not allocate at all. This lives in an
//! integration test (its own crate root) so the counter only sees this
//! test's traffic, and outside `bips-core`, which forbids unsafe code.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bips_core::graph::{PathEngine, PathEngineKind, WsGraph};
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::{ReadPath, ShardedService, WhereIs};
use bt_baseband::BdAddr;
use desim::tracing::Tracer;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers all allocation to the system allocator; the counter is
// a relaxed atomic increment with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s layout contract.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded verbatim from our caller.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::dealloc`'s pointer/layout contract.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from this allocator (which defers to
        // `System`) with the same `layout`, per the caller's contract.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds `GlobalAlloc::realloc`'s pointer/layout contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded verbatim from
        // our caller, and `ptr` was allocated by `System` (see `alloc`).
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const USERS: u64 = 512;
const CELLS: usize = 64;

/// The shared fixture: a line-graph building with the whole outcome
/// spectrum reachable. With `tracer`, trace rings are attached and
/// every query gets a fresh span — the hot path must stay
/// allocation-free either way.
fn build_service(tracer: Option<Arc<Tracer>>) -> ShardedService {
    let mut reg = Registry::new();
    for i in 0..USERS {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    let mut g = WsGraph::new(CELLS);
    for i in 0..CELLS - 1 {
        g.add_edge(i, i + 1, 10.0);
    }
    let mut svc = ShardedService::new(&reg, g.precompute_all_pairs(), 8);
    if let Some(t) = tracer {
        svc.attach_tracer(t);
    }
    let mut ts = 0;
    // User 0 stays logged out (NotLoggedIn answers); user 1 stays out
    // of coverage (no presence).
    for uid in 1..USERS {
        svc.login(uid, "pw", BdAddr::new(1000 + uid)).unwrap();
    }
    for uid in 2..USERS {
        ts += 1;
        svc.ingest(
            BdAddr::new(1000 + uid),
            (uid % CELLS as u64) as u32,
            true,
            ts,
        );
    }
    svc.flush(1);
    svc
}

/// 400 queries across the outcome spectrum; fresh spans when traced.
fn run_burst(svc: &ShardedService, path: &mut Vec<usize>, count: &mut u64) {
    let mut state = 7u64;
    for q in 0..400u64 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let querier = 2 + state % (USERS - 2);
        // Mix of found, not-logged-in, out-of-coverage, no-such-user
        // and malformed queries: the whole spectrum must be
        // allocation-free, worst paths included (the line graph's
        // longest path is CELLS nodes).
        let (target, from_cell) = match q % 8 {
            0 => (0, 0),               // NotLoggedIn
            1 => (1, 0),               // OutOfCoverage
            2 => (USERS + 5, 0),       // NoSuchUser
            3 => (querier, CELLS + 3), // BadQuery
            _ => ((state >> 7) % USERS, (state >> 13) as usize % CELLS),
        };
        let out = match svc.tracer() {
            Some(t) => {
                let span = t.next_span();
                svc.where_is_traced(querier, target, from_cell, path, span)
            }
            None => svc.where_is(querier, target, from_cell, path),
        };
        match out {
            WhereIs::Found { cell, distance } => {
                assert!((cell as usize) < CELLS && distance.is_finite());
                *count += 1;
            }
            WhereIs::NotLoggedIn
            | WhereIs::OutOfCoverage
            | WhereIs::NoSuchUser
            | WhereIs::BadQuery(_)
            | WhereIs::Denied
            | WhereIs::QuerierNotLoggedIn => {}
        }
    }
}

fn assert_zero_alloc_burst(svc: &ShardedService) {
    let mut path = Vec::new();
    let mut answered = 0u64;

    // Warm-up: grows the path buffer to the longest answer once.
    run_burst(svc, &mut path, &mut answered);
    assert!(answered > 0, "warm-up answered no queries");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    run_burst(svc, &mut path, &mut answered);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state where_is allocated {} times over 400 queries",
        after - before
    );
}

#[test]
fn steady_state_queries_do_not_allocate() {
    let svc = build_service(None);
    assert_zero_alloc_burst(&svc);
}

/// The same fixture over a dynamic path engine instead of the frozen
/// table. `seed` logins/presence are identical to [`build_service`].
fn build_dynamic_service(kind: PathEngineKind) -> ShardedService {
    let mut reg = Registry::new();
    for i in 0..USERS {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    let mut g = WsGraph::new(CELLS);
    for i in 0..CELLS - 1 {
        g.add_edge(i, i + 1, 10.0);
    }
    let svc = ShardedService::new_dynamic(&reg, PathEngine::new(kind, g), 8, ReadPath::Seqlock);
    let mut ts = 0;
    for uid in 1..USERS {
        svc.login(uid, "pw", BdAddr::new(1000 + uid)).unwrap();
    }
    for uid in 2..USERS {
        ts += 1;
        svc.ingest(
            BdAddr::new(1000 + uid),
            (uid % CELLS as u64) as u32,
            true,
            ts,
        );
    }
    svc.flush(1);
    svc
}

/// Dense dynamic mode answers every query from the incrementally
/// maintained flat table: the zero-alloc pin holds across the whole
/// outcome spectrum, exactly like the frozen `Apsp`.
#[test]
fn dynamic_dense_steady_state_queries_do_not_allocate() {
    let svc = build_dynamic_service(PathEngineKind::DynamicDense);
    assert_zero_alloc_burst(&svc);
}

/// Sparse mode: once a source's tree is warm, queries walk the cached
/// `prev` row under the engine's read lock — no allocation. Sources are
/// confined to fewer cells than the cache has slots so the steady-state
/// burst never takes a cold miss.
#[test]
fn dynamic_sparse_warm_tree_queries_do_not_allocate() {
    const SOURCES: usize = 16; // < DEFAULT_CACHE_SLOTS
    let svc = build_dynamic_service(PathEngineKind::DynamicSparse);
    let mut path = Vec::new();
    let mut answered = 0u64;
    let run_warm_burst = |path: &mut Vec<usize>, answered: &mut u64| {
        let mut state = 7u64;
        for _ in 0..400u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let querier = 2 + state % (USERS - 2);
            let target = (state >> 7) % USERS;
            let from_cell = (state >> 13) as usize % SOURCES;
            if let WhereIs::Found { cell, distance } =
                svc.where_is(querier, target, from_cell, path)
            {
                assert!((cell as usize) < CELLS && distance.is_finite());
                *answered += 1;
            }
        }
    };

    // Warm-up: populates ≤ SOURCES cache slots and grows the buffer.
    run_warm_burst(&mut path, &mut answered);
    assert!(answered > 0, "warm-up answered no queries");

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    run_warm_burst(&mut path, &mut answered);
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "warm-tree where_is allocated {} times over 400 queries",
        after - before
    );
}

/// Tracing records two ring events and allocates a span per query; the
/// rings are preallocated, so the pin holds with tracing on too.
#[test]
fn steady_state_traced_queries_do_not_allocate() {
    let tracer = Arc::new(Tracer::new(8, 1024));
    let svc = build_service(Some(Arc::clone(&tracer)));
    assert_zero_alloc_burst(&svc);
    assert!(tracer.recorded() >= 800, "traced burst recorded no events");
    assert_eq!(tracer.dropped(), 0);
}
