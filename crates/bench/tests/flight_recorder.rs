//! Post-mortem proof: a panicking serve path leaves a flight-recorder
//! JSONL artifact containing the last-N trace events — including the
//! offending request's span.
//!
//! Dumps land in `target/flight-recorder/`, the directory CI uploads
//! as an artifact when a test or bench job fails.

use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use bips_core::graph::WsGraph;
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::ShardedService;
use bt_baseband::BdAddr;
use desim::report::Json;
use desim::tracing::{FlightRecorder, Tracer};

/// The workspace-level artifact directory CI collects on failure.
const FLIGHT_DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/flight-recorder");

fn build_service(tracer: Arc<Tracer>) -> ShardedService {
    const USERS: u64 = 64;
    const CELLS: usize = 16;
    let mut reg = Registry::new();
    for i in 0..USERS {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    let mut g = WsGraph::new(CELLS);
    for i in 0..CELLS - 1 {
        g.add_edge(i, i + 1, 10.0);
    }
    let mut svc = ShardedService::new(&reg, g.precompute_all_pairs(), 4);
    svc.attach_tracer(tracer);
    for uid in 0..USERS {
        svc.login(uid, "pw", BdAddr::new(1000 + uid)).unwrap();
    }
    for uid in 0..USERS {
        svc.ingest(
            BdAddr::new(1000 + uid),
            (uid % CELLS as u64) as u32,
            true,
            uid + 1,
        );
    }
    svc.flush(1);
    svc
}

#[test]
fn panicking_serve_path_dumps_last_events_with_offending_span() {
    let tracer = Arc::new(Tracer::new(4, 256));
    let svc = build_service(Arc::clone(&tracer));
    let recorder = FlightRecorder::new(Arc::clone(&tracer), Path::new(FLIGHT_DIR), 64);

    // Healthy background traffic first, so the dump has history to show.
    let mut path = Vec::new();
    for q in 0..50u64 {
        let span = tracer.next_span();
        let _ = svc.where_is_traced(q % 64, (q * 7) % 64, (q % 16) as usize, &mut path, span);
    }

    // The offending request: traced, then the serve loop dies on it.
    let offending = tracer.next_span();
    let caught = panic::catch_unwind(AssertUnwindSafe(|| {
        let _guard = recorder.guard("serve-test");
        let mut path = Vec::new();
        let _ = svc.where_is_traced(2, 3, 0, &mut path, offending);
        panic!("injected serve-path fault");
    }));
    assert!(caught.is_err(), "the injected fault must propagate");
    assert_eq!(
        recorder.dumps(),
        1,
        "the guard must have dumped exactly once"
    );

    // The artifact name is deterministic: flight-<reason>-<n>.jsonl.
    let dump = Path::new(FLIGHT_DIR).join("flight-serve-test-panic-0.jsonl");
    let text = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("missing dump {}: {e}", dump.display()));
    let mut lines = text.lines();

    // Header line: schema, reason, event count.
    let header = Json::parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("schema"),
        Some(&Json::Str("bips-flight-recorder/v1".to_string()))
    );
    assert_eq!(
        header.get("reason"),
        Some(&Json::Str("serve-test-panic".to_string()))
    );

    // Every event line parses; the offending span shows up with both
    // its query_start and query_end events.
    let mut events = 0u64;
    let mut offending_kinds = Vec::new();
    for line in lines {
        let ev = Json::parse(line).expect("event line parses");
        events += 1;
        if ev.get("span") == Some(&Json::UInt(offending.0)) {
            if let Some(Json::Str(kind)) = ev.get("kind") {
                offending_kinds.push(kind.clone());
            }
        }
    }
    assert_eq!(header.get("events"), Some(&Json::UInt(events)));
    assert!(
        events > 0 && events <= 64,
        "last-N window respected: {events}"
    );
    assert_eq!(
        offending_kinds,
        vec!["query_start".to_string(), "query_end".to_string()],
        "the offending request's span must be in the dump"
    );
}

/// A corrupt path table must not panic the serve path: the query comes
/// back as a typed `BadQuery(PathCorrupt)`, the service records an
/// `anomaly` trace event, and dumping on that trigger leaves a JSONL
/// artifact with the corruption's code and target cell.
#[test]
fn path_corruption_serves_typed_error_and_dumps() {
    use bips_core::protocol::ProtocolError;
    use bips_core::service::{WhereIs, ANOMALY_PATH_CORRUPT};

    const USERS: u64 = 64;
    const CELLS: usize = 16;
    let mut reg = Registry::new();
    for i in 0..USERS {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    let mut g = WsGraph::new(CELLS);
    for i in 0..CELLS - 1 {
        g.add_edge(i, i + 1, 10.0);
    }
    let mut apsp = g.precompute_all_pairs();
    apsp.debug_break_prev(0, 3);

    let tracer = Arc::new(Tracer::new(4, 256));
    let mut svc = ShardedService::new(&reg, apsp, 4);
    svc.attach_tracer(Arc::clone(&tracer));
    for uid in 0..USERS {
        svc.login(uid, "pw", BdAddr::new(1000 + uid)).unwrap();
    }
    for uid in 0..USERS {
        svc.ingest(
            BdAddr::new(1000 + uid),
            (uid % CELLS as u64) as u32,
            true,
            uid + 1,
        );
    }
    svc.flush(1);

    let recorder = FlightRecorder::new(Arc::clone(&tracer), Path::new(FLIGHT_DIR), 64);
    let mut path = Vec::new();
    let span = tracer.next_span();
    // user3 sits at cell 3; the walk 0 → 3 crosses the broken link.
    let out = svc.where_is_traced(5, 3, 0, &mut path, span);
    assert!(
        matches!(
            out,
            WhereIs::BadQuery(ProtocolError::PathCorrupt { from: 0, to: 3 })
        ),
        "expected typed corruption error, got {out:?}"
    );

    let dump = recorder.dump("path-corrupt").expect("dump writes");
    let text = std::fs::read_to_string(&dump).expect("read dump");
    let corrupt_line = text
        .lines()
        .find(|l| l.contains("\"kind\":\"anomaly\"") && l.contains("\"arg\":3"))
        .unwrap_or_else(|| panic!("no corruption anomaly in dump:\n{text}"));
    let ev = Json::parse(corrupt_line).expect("event parses");
    assert_eq!(
        ev.get("code"),
        Some(&Json::UInt(u64::from(ANOMALY_PATH_CORRUPT)))
    );
}

#[test]
fn latency_anomaly_threshold_dumps_from_serve_path() {
    let tracer = Arc::new(Tracer::new(4, 256));
    let svc = build_service(Arc::clone(&tracer));
    let recorder = FlightRecorder::new(Arc::clone(&tracer), Path::new(FLIGHT_DIR), 32)
        .with_latency_threshold_ns(1_000_000);

    let mut path = Vec::new();
    let span = tracer.next_span();
    let _ = svc.where_is_traced(5, 6, 0, &mut path, span);
    assert!(recorder.observe_latency_ns(span, 1, 500).is_none());
    let dump = recorder
        .observe_latency_ns(span, 1, 2_000_000)
        .expect("over-threshold sample dumps");
    let text = std::fs::read_to_string(&dump).expect("read dump");
    assert!(text.contains("\"kind\":\"anomaly\""));
    assert!(text.contains("\"arg\":2000000"));
}
