//! Tracing is observational only: the differential proof.
//!
//! Runs the same deterministic workload against the sharded engine
//! with tracing off and with tracing on (fresh span per query, every
//! ingest/flush recorded), at several `jobs` values, and demands
//! bit-identical serving results: the answer checksum (kind, cell,
//! distance, full path per query) and the flush-ack checksum must
//! match exactly, as must the seed-server baseline.

use std::sync::Arc;

use bips_bench::loadgen::{
    generate_trace, run_baseline, run_sharded, run_sharded_traced, Workload,
};
use desim::tracing::Tracer;

#[test]
fn tracing_is_bit_identical_across_jobs() {
    let w = Workload::tiny();
    let trace = generate_trace(&w);
    let baseline = run_baseline(&w, &trace);
    assert_eq!(baseline.latencies_ns.len() as u64, w.queries());

    let mut seen: Option<(u64, u64, u64)> = None;
    for jobs in [1usize, 4, 8] {
        let (sharded, _) = run_sharded(&w, &trace, jobs);
        let tracer = Arc::new(Tracer::new(w.shards, 1024));
        let (traced, _) = run_sharded_traced(&w, &trace, jobs, &tracer, None);

        // Sharded agrees with the seed server.
        assert_eq!(
            sharded.checksum, baseline.checksum,
            "jobs={jobs}: sharded diverged from baseline"
        );
        // Tracing perturbs neither answers nor acks nor outcome counts.
        assert_eq!(
            traced.checksum, sharded.checksum,
            "jobs={jobs}: tracing perturbed the answers"
        );
        assert_eq!(
            traced.ack_checksum, sharded.ack_checksum,
            "jobs={jobs}: tracing perturbed the flush acks"
        );
        assert_eq!(traced.found, sharded.found);
        assert_eq!(traced.latencies_ns.len(), sharded.latencies_ns.len());

        // The traced run actually traced: ~2 events per query plus
        // ingests and flushes, and nothing was dropped.
        assert!(
            tracer.recorded() >= 2 * w.queries(),
            "jobs={jobs}: only {} events recorded",
            tracer.recorded()
        );
        assert_eq!(tracer.dropped(), 0);

        // And every jobs value lands on the same checksums.
        let key = (traced.checksum, traced.ack_checksum, traced.found);
        match seen {
            None => seen = Some(key),
            Some(prev) => assert_eq!(prev, key, "jobs={jobs}: results depend on jobs"),
        }
    }
}
