//! Churn differential: the incremental engines must be bit-identical
//! to the rebuild-per-mutation reference under the mixed serving
//! workload, for every `--jobs` value.
//!
//! [`run_sharded_churn`] folds every mutation's applied flag and epoch
//! plus every answer's `(cell, distance-bits, path)` into one FNV-1a
//! checksum, so a single `u64` comparison covers distances, full path
//! vectors, tie-breaking, and mutation acceptance across the whole run.

use bips_bench::loadgen::{self, Mix, Workload};
use bips_core::graph::PathEngineKind;

const KINDS: [PathEngineKind; 3] = [
    PathEngineKind::Rebuild,
    PathEngineKind::DynamicDense,
    PathEngineKind::DynamicSparse,
];

/// Runs one workload/churn configuration across all engine kinds and
/// jobs ∈ {1, 4, 8}, asserting one checksum triple for all of them.
fn assert_engines_agree(w: &Workload, churn_seed: u64, muts_per_tick: usize) {
    let trace = loadgen::generate_trace(w);
    let mut reference = None;
    for kind in KINDS {
        for jobs in [1usize, 4, 8] {
            let (r, _) =
                loadgen::run_sharded_churn(w, &trace, jobs, kind, churn_seed, muts_per_tick);
            let sum = (r.checksum, r.ack_checksum, r.found);
            match reference {
                None => reference = Some((sum, kind, jobs)),
                Some((ref_sum, ref_kind, ref_jobs)) => assert_eq!(
                    sum,
                    ref_sum,
                    "{} jobs={jobs} diverged from {} jobs={ref_jobs} \
                     (workload {}, churn seed {churn_seed}, {muts_per_tick} muts/tick)",
                    kind.name(),
                    ref_kind.name(),
                    w.name,
                ),
            }
        }
    }
}

#[test]
fn query_heavy_churn_is_bit_identical_across_engines_and_jobs() {
    assert_engines_agree(&Workload::tiny(), 3, 2);
}

#[test]
fn update_heavy_churn_is_bit_identical_across_engines_and_jobs() {
    assert_engines_agree(&Workload::tiny().with_mix(Mix::Q50U50), 77, 4);
}

#[test]
fn heavy_churn_with_node_flaps_is_bit_identical() {
    // 8 mutations per tick: roughly one node toggle per tick rides
    // along (1-in-8 odds each), so down/up repair paths get exercised,
    // not just reweights.
    assert_engines_agree(&Workload::tiny(), 2003, 8);
}

/// The engine's own counters must agree that churn actually happened:
/// repairs on the dense engine, and warm-tree traffic on the sparse one.
#[test]
fn churn_run_reports_graph_metrics() {
    let w = Workload::tiny();
    let trace = loadgen::generate_trace(&w);
    let (_, dense) = loadgen::run_sharded_churn(&w, &trace, 4, PathEngineKind::DynamicDense, 3, 2);
    assert!(
        dense.counter_value("core.graph.tree_repairs").unwrap_or(0) > 0,
        "dense engine reported no repairs"
    );
    let (_, sparse) =
        loadgen::run_sharded_churn(&w, &trace, 4, PathEngineKind::DynamicSparse, 3, 2);
    assert!(
        sparse.counter_value("core.graph.cache_hits").unwrap_or(0) > 0,
        "sparse engine reported no warm-tree hits"
    );
}
