//! Cross-substrate telemetry for the report-emitting binaries.
//!
//! The discovery experiments (Table 1, Figure 2) only exercise the
//! baseband, but a run report should show the whole deployment's metric
//! catalog. [`system_snapshot`] runs a small fixed-configuration
//! [`BipsSystem`] with an [`EngineProbe`] attached and returns the
//! resulting [`MetricSet`] — names spanning `baseband.*`, `lan.*`,
//! `mobility.*`, `core.*` and `engine.*`. The binaries merge it into
//! their experiment metrics before writing the report, so every JSON
//! file documents the full catalog (`docs/OBSERVABILITY.md`).

use bips_core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use desim::probe::EngineProbe;
use desim::{MetricSet, SimDuration, SimTime};

/// Classifies a [`SysEvent`] for per-event-type engine profiling.
pub fn classify_sys(ev: &SysEvent) -> &'static str {
    match ev {
        SysEvent::Bb(_) => "bb",
        SysEvent::Lan(_) => "lan",
        SysEvent::Tr(_) => "transport",
        SysEvent::Mob(_) => "mobility",
        SysEvent::Sweep { .. } => "sweep",
        SysEvent::Cmd(_) => "cmd",
    }
}

/// Configuration of the telemetry snapshot run.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotConfig {
    /// Mobile users in the deployment.
    pub users: usize,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Run seed.
    pub seed: u64,
}

impl Default for SnapshotConfig {
    fn default() -> Self {
        SnapshotConfig {
            users: 4,
            duration: SimDuration::from_secs(400),
            seed: 77,
        }
    }
}

/// Runs a small full-stack deployment and returns its metric snapshot.
///
/// Deterministic in the seed; the attached engine probe adds `engine.*`
/// wall-time profiles (those vary run to run, the simulation does not).
pub fn system_snapshot(cfg: &SnapshotConfig) -> MetricSet {
    let sys_cfg = SystemConfig::default();
    let n_rooms = sys_cfg.building.num_rooms();
    let mut builder = BipsSystem::builder(sys_cfg);
    for i in 0..cfg.users {
        builder = builder.user(UserSpec::new(format!("user{i}"), i % n_rooms));
    }
    let mut engine = builder.into_engine(cfg.seed);
    let probe = EngineProbe::new(classify_sys);
    let handle = probe.handle();
    engine.attach_observer(Box::new(probe));

    let end = SimTime::ZERO + cfg.duration;
    engine.run_until(end);

    let mut metrics = MetricSet::new();
    engine.world().export_metrics(&mut metrics, end);
    handle.borrow().export_into(&mut metrics, end);
    metrics
}

/// Removes `flag PATH` from a raw argument list, returning the remaining
/// positional arguments and the path if the flag was present.
///
/// Lets the paper-artifact binaries keep their positional CLI while
/// gaining `--json PATH` / `--jsonl PATH` report flags.
pub fn take_flag(args: Vec<String>, flag: &str) -> (Vec<String>, Option<String>) {
    let mut rest = Vec::with_capacity(args.len());
    let mut value = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next() {
                Some(v) => value = Some(v),
                None => {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                }
            }
        } else {
            rest.push(a);
        }
    }
    (rest, value)
}

/// Strips `--jobs N` from the CLI args, returning the remaining args and
/// the requested replication-worker count. `0` (the default) means
/// ambient: `BIPS_JOBS` if set, else the machine width (`desim::par`).
pub fn take_jobs(args: Vec<String>) -> (Vec<String>, usize) {
    let (rest, value) = take_flag(args, "--jobs");
    let jobs = value
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--jobs must be a non-negative integer");
                std::process::exit(2);
            })
        })
        .unwrap_or(0);
    (rest, jobs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_spans_all_substrates() {
        let cfg = SnapshotConfig {
            users: 2,
            duration: SimDuration::from_secs(120),
            seed: 3,
        };
        let m = system_snapshot(&cfg);
        for prefix in ["baseband.", "lan.", "mobility.", "core.", "engine."] {
            assert!(
                m.names().any(|n| n.starts_with(prefix)),
                "no {prefix}* metric in snapshot: {:?}",
                m.names().collect::<Vec<_>>()
            );
        }
        assert!(m.len() >= 10, "catalog too small: {} names", m.len());
    }

    #[test]
    fn snapshot_is_deterministic_in_the_seed() {
        let cfg = SnapshotConfig {
            users: 2,
            duration: SimDuration::from_secs(60),
            seed: 9,
        };
        let a = system_snapshot(&cfg);
        let b = system_snapshot(&cfg);
        // Wall-time profiles differ run to run; every simulation-domain
        // metric must not.
        for name in a.names() {
            if name.starts_with("engine.handle_nanos.") {
                continue;
            }
            assert_eq!(
                format!("{:?}", a.get(name)),
                format!("{:?}", b.get(name)),
                "metric {name} not deterministic"
            );
        }
    }

    #[test]
    fn take_flag_extracts_and_preserves_order() {
        let args = vec!["10".into(), "--json".into(), "out.json".into(), "7".into()];
        let (rest, path) = take_flag(args, "--json");
        assert_eq!(rest, vec!["10".to_string(), "7".to_string()]);
        assert_eq!(path.as_deref(), Some("out.json"));

        let (rest, path) = take_flag(vec!["5".into()], "--json");
        assert_eq!(rest, vec!["5".to_string()]);
        assert!(path.is_none());
    }
}
