//! Shared serving-path load generator.
//!
//! The deterministic WhereIs workload driver behind the
//! `server_throughput` binary and the tracing differential tests. A
//! [`Workload`] describes a building's worth of users moving between
//! cells while a pool of queriers asks where everyone is; a [`Trace`]
//! is the pre-generated, mode-independent schedule of moves and
//! queries derived from the seed. Three replay modes exist:
//!
//! * [`run_baseline`] — the seed [`BipsServer`] (string-keyed, fresh
//!   allocations per answer);
//! * [`run_sharded`] — the sharded engine with tracing off;
//! * [`run_sharded_traced`] — the same engine with a
//!   [`Tracer`] attached and a fresh span per query;
//! * [`run_socket`] — the same engine behind `bips-serve`, driven over
//!   a real socket by a closed-loop multi-connection client.
//!
//! Every answer is folded into an FNV-1a checksum and every flush ack
//! into a second one, so "tracing is non-perturbing" is a one-line
//! assertion: the sharded and traced runs must produce bit-identical
//! `checksum` and `ack_checksum` for any `--jobs` value.

// Bench library: wall-clock reads feed perf reports (queries/sec,
// latency histograms), never simulation results.
#![allow(clippy::disallowed_methods)]

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use bips_core::graph::WsGraph;
use bips_core::protocol::{LocateOutcome, Notice, Request, Response};
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::{ShardedService, WhereIs};
use bips_core::BipsServer;
use bips_lan::network::HostId;
use bips_lan::rpc::{RpcCodec, RpcFrame};
use bips_lan::stream::{encode_stream_frame, StreamReframer};
use bt_baseband::BdAddr;
use desim::hdr::HdrHistogram;
use desim::metrics::MetricSet;
use desim::tracing::{FlightRecorder, SpanId, Tracer};
use desim::{SeedDeriver, SimTime};

/// FNV-1a 64 offset basis: the initial value of every checksum fold.
pub const CHECKSUM_INIT: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// One load-bench workload: a population on a square-grid building.
pub struct Workload {
    /// Section name in reports (`full`, `smoke`, `tiny`).
    pub name: &'static str,
    /// Registered user population.
    pub users: u64,
    /// Grid side; the building has `side * side` cells.
    pub side: usize,
    /// Moves applied per tick (each move = present(new) + absent(old)).
    pub updates_per_tick: usize,
    /// Queries served per tick (4x the updates: an 80:20 mix).
    pub queries_per_tick: usize,
    /// Number of ticks replayed.
    pub ticks: usize,
    /// Queriers are drawn from the first `pool` users — the handful of
    /// receptionists and dispatchers who actually run queries all day.
    pub pool: u64,
    /// Shard count for the sharded engine (power of two).
    pub shards: usize,
    /// Root seed; everything else derives from it.
    pub seed: u64,
}

impl Workload {
    /// The paper-scale workload: 1M users, 2M ops.
    pub fn full() -> Workload {
        Workload {
            name: "full",
            users: 1_000_000,
            side: 16,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 6250, // 1.6M queries + 400k moves = 2M ops, 80:20
            pool: 4096,
            shards: 16,
            seed: 2003,
        }
    }

    /// The CI-speed workload: 100k users, 200k ops.
    pub fn smoke() -> Workload {
        Workload {
            name: "smoke",
            users: 100_000,
            side: 8,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 625, // 160k queries + 40k moves = 200k ops
            pool: 1024,
            shards: 8,
            seed: 2003,
        }
    }

    /// A seconds-scale workload for differential tests.
    pub fn tiny() -> Workload {
        Workload {
            name: "tiny",
            users: 2_048,
            side: 4,
            updates_per_tick: 8,
            queries_per_tick: 32,
            ticks: 50,
            pool: 64,
            shards: 4,
            seed: 2003,
        }
    }

    /// Number of cells in the building.
    pub fn cells(&self) -> usize {
        self.side * self.side
    }

    /// Total queries replayed.
    pub fn queries(&self) -> u64 {
        (self.ticks * self.queries_per_tick) as u64
    }
}

/// A pre-generated, mode-independent trace: per tick, a block of moves
/// and a block of queries.
pub struct Trace {
    /// `(uid, old_cell, new_cell)` per move, tick-major.
    pub moves: Vec<(u64, u32, u32)>,
    /// `(querier_uid, target_uid, from_cell)` per query, tick-major.
    pub queries: Vec<(u64, u64, u32)>,
    /// Initial cell per user.
    pub initial: Vec<u32>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the move/query schedule from the workload seed.
pub fn generate_trace(w: &Workload) -> Trace {
    let seeds = SeedDeriver::new(w.seed);
    let cells = w.cells() as u64;
    let initial: Vec<u32> = (0..w.users).map(|u| (u % cells) as u32).collect();
    let mut current = initial.clone();

    let mut mv_state = seeds.derive(1);
    let mut moves = Vec::with_capacity(w.ticks * w.updates_per_tick);
    let mut q_state = seeds.derive(2);
    let mut queries = Vec::with_capacity(w.ticks * w.queries_per_tick);
    for _tick in 0..w.ticks {
        for _ in 0..w.updates_per_tick {
            let r = splitmix(&mut mv_state);
            let uid = r % w.users;
            let old = current[uid as usize];
            // Step to a different cell (never a redundant re-announce).
            let new = (u64::from(old) + 1 + (r >> 32) % (cells - 1)) % cells;
            current[uid as usize] = new as u32;
            moves.push((uid, old, new as u32));
        }
        for _ in 0..w.queries_per_tick {
            let r = splitmix(&mut q_state);
            let querier = r % w.pool;
            let target = (r >> 20) % w.users;
            let from_cell = (r >> 52) % cells;
            queries.push((querier, target, from_cell as u32));
        }
    }
    Trace {
        moves,
        queries,
        initial,
    }
}

/// The Bluetooth address registered for user `uid`.
pub fn addr(uid: u64) -> BdAddr {
    BdAddr::new(0x1_0000 + uid)
}

/// Folds one answer into the cross-mode checksum (FNV-1a 64).
pub fn fold(sum: &mut u64, kind: u64, cell: u64, dist_bits: u64, path: &[u32]) {
    let mut h = *sum;
    for word in [kind, cell, dist_bits, path.len() as u64] {
        h = (h ^ word).wrapping_mul(FNV_PRIME);
    }
    for &c in path {
        h = (h ^ u64::from(c)).wrapping_mul(FNV_PRIME);
    }
    *sum = h;
}

/// Folds one flush's acks into the ack checksum (FNV-1a 64).
pub fn fold_acks(sum: &mut u64, acks: &[bool]) {
    let mut h = *sum;
    h = (h ^ acks.len() as u64).wrapping_mul(FNV_PRIME);
    for &a in acks {
        h = (h ^ u64::from(a)).wrapping_mul(FNV_PRIME);
    }
    *sum = h;
}

/// Result of one mode over one workload.
pub struct ModeResult {
    /// Wall seconds spent inside query blocks only.
    pub query_secs: f64,
    /// Wall seconds for the whole replay (updates included).
    pub total_secs: f64,
    /// Per-query latencies, nanoseconds, in trace order.
    pub latencies_ns: Vec<u64>,
    /// FNV-1a fold of every answer (kind, cell, distance, path).
    pub checksum: u64,
    /// FNV-1a fold of every flush's acks. [`CHECKSUM_INIT`] for the
    /// baseline mode, which has no batched flushes.
    pub ack_checksum: u64,
    /// Queries answered `Found`.
    pub found: u64,
}

impl ModeResult {
    /// Queries per wall second, counting query blocks only.
    pub fn queries_per_sec(&self) -> f64 {
        self.latencies_ns.len() as f64 / self.query_secs
    }

    /// Exact percentile (microseconds) from the sorted latency vector.
    pub fn percentile_us(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted.get(idx).copied().unwrap_or(0) as f64 / 1000.0
    }

    /// All latencies folded into a log-linear HDR histogram at the
    /// default resolution (relative error < 1.5625%).
    pub fn latency_hdr(&self) -> HdrHistogram {
        let mut h = HdrHistogram::with_default_resolution();
        for &ns in &self.latencies_ns {
            h.record(ns);
        }
        h
    }
}

/// Per-shard latency HDR histograms: query latencies attributed to the
/// querier's shard (`querier & (shards - 1)`), exactly as
/// `ShardedService` routes them. Computed post-hoc from the trace so
/// the replay itself stays untouched.
pub fn shard_latency_hdrs(w: &Workload, trace: &Trace, r: &ModeResult) -> Vec<HdrHistogram> {
    let mask = (w.shards as u64).saturating_sub(1);
    let mut hdrs: Vec<HdrHistogram> = (0..w.shards)
        .map(|_| HdrHistogram::with_default_resolution())
        .collect();
    for (&(querier, _, _), &ns) in trace.queries.iter().zip(&r.latencies_ns) {
        let shard = (querier & mask) as usize;
        if let Some(h) = hdrs.get_mut(shard) {
            h.record(ns);
        }
    }
    hdrs
}

/// Index-ordered merge of per-shard histograms into one. The order is
/// fixed (shard 0, 1, 2, …) so the merged histogram is bit-identical
/// however the shards were populated.
pub fn merge_shard_hdrs(shards: &[HdrHistogram]) -> HdrHistogram {
    let mut merged = HdrHistogram::with_default_resolution();
    for h in shards {
        // Same resolution by construction; a mismatch would be a bug
        // worth surfacing in the bench output, not worth panicking for.
        if let Err(e) = merged.merge(h) {
            eprintln!("shard hdr merge failed: {e}");
        }
    }
    merged
}

/// The square-grid workspace graph.
pub fn grid(side: usize) -> WsGraph {
    let mut g = WsGraph::new(side * side);
    for r in 0..side {
        for c in 0..side {
            let at = r * side + c;
            if c + 1 < side {
                g.add_edge(at, at + 1, 10.0);
            }
            if r + 1 < side {
                g.add_edge(at, at + side, 10.0);
            }
        }
    }
    g
}

/// A registry with `users` open-rights accounts (`user0`, `user1`, …).
pub fn registry(users: u64) -> Registry {
    let mut reg = Registry::new();
    for i in 0..users {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    reg
}

/// Replays the trace against the seed server.
pub fn run_baseline(w: &Workload, trace: &Trace) -> ModeResult {
    let g = grid(w.side);
    let mut server = BipsServer::new(registry(w.users), &g);
    let names: Vec<String> = (0..w.users).map(|i| format!("user{i}")).collect();
    let mut ts: u64 = 0;
    for uid in 0..w.users {
        server
            .registry_mut()
            .login(&names[uid as usize], "pw", addr(uid))
            .expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        server.handle(
            Request::Presence {
                cell: trace.initial[uid as usize],
                addr: addr(uid),
                present: true,
            },
            SimTime::from_micros(ts),
        );
    }

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: new,
                    addr: addr(uid),
                    present: true,
                },
                SimTime::from_micros(ts),
            );
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: old,
                    addr: addr(uid),
                    present: false,
                },
                SimTime::from_micros(ts),
            );
        }
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let resp = server.handle(
                Request::Locate {
                    from: addr(querier),
                    target: names[target as usize].clone(),
                    from_cell,
                },
                SimTime::from_micros(ts),
            );
            let now = Instant::now();
            latencies_ns.push((now - prev).as_nanos() as u64);
            prev = now;
            let Response::LocateResult(out) = resp else {
                panic!("unexpected response");
            };
            match out {
                LocateOutcome::Found {
                    cell,
                    path,
                    distance,
                } => {
                    found += 1;
                    fold(&mut checksum, 0, u64::from(cell), distance.to_bits(), &path);
                }
                other => fold(&mut checksum, 1 + other_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    ModeResult {
        query_secs,
        total_secs: start.elapsed().as_secs_f64(),
        latencies_ns,
        checksum,
        ack_checksum: CHECKSUM_INIT,
        found,
    }
}

/// Stable discriminant for non-Found [`LocateOutcome`]s.
pub fn other_code(out: &LocateOutcome) -> u64 {
    match out {
        LocateOutcome::Found { .. } => 0,
        LocateOutcome::NotLoggedIn => 1,
        LocateOutcome::OutOfCoverage => 2,
        LocateOutcome::NoSuchUser => 3,
        LocateOutcome::Denied => 4,
        LocateOutcome::QuerierNotLoggedIn => 5,
        LocateOutcome::BadQuery(_) => 6,
    }
}

/// Replays the trace against the sharded engine, tracing off.
pub fn run_sharded(w: &Workload, trace: &Trace, jobs: usize) -> (ModeResult, MetricSet) {
    run_sharded_impl(w, trace, jobs, None)
}

/// Replays the trace against the sharded engine with `tracer`
/// attached: every query gets a fresh span, every ingest and flush is
/// recorded on its shard's ring. When `recorder` is armed with a
/// latency threshold, each query latency is fed to it.
pub fn run_sharded_traced(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    tracer: &Arc<Tracer>,
    recorder: Option<&FlightRecorder>,
) -> (ModeResult, MetricSet) {
    run_sharded_impl(w, trace, jobs, Some((tracer, recorder)))
}

fn run_sharded_impl(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    tracing: Option<(&Arc<Tracer>, Option<&FlightRecorder>)>,
) -> (ModeResult, MetricSet) {
    let g = grid(w.side);
    let reg = registry(w.users);
    let mut svc = ShardedService::new(&reg, g.precompute_all_pairs(), w.shards);
    if let Some((tracer, _)) = tracing {
        svc.attach_tracer(Arc::clone(tracer));
    }
    let shard_mask = (w.shards as u64).saturating_sub(1);
    let mut ts: u64 = 0;
    let mut ack_checksum = CHECKSUM_INIT;
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, ts);
    }
    fold_acks(&mut ack_checksum, &svc.flush(jobs));

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut path = Vec::new();
    let mut path32 = Vec::new();
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            svc.ingest(addr(uid), new, true, ts);
            ts += 1;
            svc.ingest(addr(uid), old, false, ts);
        }
        fold_acks(&mut ack_checksum, &svc.flush(jobs));
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let span = match tracing {
                Some((tracer, _)) => tracer.next_span(),
                None => SpanId::NONE,
            };
            let out = svc.where_is_traced(querier, target, from_cell as usize, &mut path, span);
            let now = Instant::now();
            let lat = (now - prev).as_nanos() as u64;
            latencies_ns.push(lat);
            prev = now;
            if let Some((_, Some(rec))) = tracing {
                rec.observe_latency_ns(span, (querier & shard_mask) as usize, lat);
            }
            match out {
                WhereIs::Found { cell, distance } => {
                    found += 1;
                    path32.clear();
                    path32.extend(path.iter().map(|&n| n as u32));
                    fold(
                        &mut checksum,
                        0,
                        u64::from(cell),
                        distance.to_bits(),
                        &path32,
                    );
                }
                other => fold(&mut checksum, 1 + where_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    let mut metrics = MetricSet::new();
    svc.export_metrics(&mut metrics);
    if let Some((tracer, _)) = tracing {
        tracer.export_metrics(&mut metrics);
    }
    (
        ModeResult {
            query_secs,
            total_secs: start.elapsed().as_secs_f64(),
            latencies_ns,
            checksum,
            ack_checksum,
            found,
        },
        metrics,
    )
}

/// A [`ShardedService`] for the workload with every user logged in —
/// the server-side state `bips-serve` starts from. Presence is NOT
/// pre-applied: the socket client ingests the initial cells itself, so
/// its ack checksum covers the same flushes as [`run_sharded`]'s.
pub fn build_service(w: &Workload) -> ShardedService {
    let g = grid(w.side);
    let reg = registry(w.users);
    let svc = ShardedService::new(&reg, g.precompute_all_pairs(), w.shards);
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    svc
}

// ---------------------------------------------------------------------
// Socket client mode
// ---------------------------------------------------------------------

/// Where the socket client connects: loopback TCP or a Unix-domain
/// socket path (mirroring `bips-serve`'s two listeners).
#[derive(Debug, Clone)]
pub enum Dial {
    /// `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

enum ClientStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

/// One client connection: an RPC codec over a length-delimited byte
/// stream, driven strictly request-by-request (closed loop).
struct ClientConn {
    stream: ClientStream,
    codec: RpcCodec,
    reframer: StreamReframer,
    rbuf: Vec<u8>,
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl ClientConn {
    fn dial(d: &Dial) -> io::Result<ClientConn> {
        let stream = match d {
            Dial::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // Closed-loop RTTs: never let Nagle hold a request back.
                s.set_nodelay(true)?;
                ClientStream::Tcp(s)
            }
            Dial::Uds(path) => ClientStream::Uds(UnixStream::connect(path)?),
        };
        Ok(ClientConn {
            stream,
            codec: RpcCodec::new(),
            reframer: StreamReframer::new(),
            rbuf: vec![0u8; 64 * 1024],
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.write_all(bytes),
            ClientStream::Uds(s) => s.write_all(bytes),
        }
    }

    fn read(&mut self) -> io::Result<usize> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.read(&mut self.rbuf),
            ClientStream::Uds(s) => s.read(&mut self.rbuf),
        }
    }

    /// Sends one request payload and blocks for its response — the
    /// closed-loop primitive. Checks the correlation id round-trips.
    fn call(&mut self, payload: &[u8]) -> io::Result<Response> {
        let (corr, framed) = self.codec.encode_request(payload);
        let mut msg = Vec::with_capacity(framed.len() + 4);
        encode_stream_frame(&mut msg, &framed);
        self.write_all(&msg)?;
        loop {
            let got = self
                .reframer
                .next_frame()
                .map_err(|e| proto_err(&e.to_string()))?;
            if let Some(frame) = got {
                let Some(RpcFrame::Response {
                    corr: rc, payload, ..
                }) = RpcCodec::decode_ref_bytes(HostId::new(0), frame)
                else {
                    return Err(proto_err("stream frame is not an rpc response"));
                };
                if rc.value() != corr.value() {
                    return Err(proto_err("correlation id mismatch"));
                }
                return Response::decode(payload)
                    .map_err(|e| proto_err(&format!("bad response payload: {e}")));
            }
            let n = self.read()?;
            if n == 0 {
                return Err(proto_err("server closed mid-request"));
            }
            self.reframer.extend(&self.rbuf[..n]);
        }
    }
}

/// Batch size for streaming the initial 1-presence-per-user state in.
const INGEST_CHUNK: usize = 8192;

/// Replays the trace against a `bips-serve` instance over a real
/// socket: the networked analogue of [`run_sharded`].
///
/// One *control* connection carries all ingest batches and flushes in
/// trace order (so the global presence sequence — and therefore every
/// flush's ack vector — is identical to the in-process run), while
/// `conns` *query* connections serve the tick's queries closed-loop:
/// query `i` of a tick rides connection `i % conns`, each connection
/// has exactly one request in flight, and a scoped join between ticks
/// is the barrier that keeps queries reading the tick's flushed state.
/// Answers are re-folded in global trace order afterwards, so
/// `checksum`/`ack_checksum` must be bit-identical to [`run_sharded`]
/// for any `conns` — that is the proof the networked path serves the
/// same answers.
///
/// Unlike the in-process modes, `latencies_ns` holds true end-to-end
/// RTTs (encode → socket → serve → socket → decode) per request.
///
/// When `send_shutdown` is set, a [`Request::Shutdown`] goes out on
/// the control connection after the replay and the server's ack is
/// awaited — the graceful-drain path.
pub fn run_socket(
    w: &Workload,
    trace: &Trace,
    dial: &Dial,
    conns: usize,
    send_shutdown: bool,
) -> io::Result<ModeResult> {
    assert!(conns >= 1, "need at least one query connection");
    let mut control = ClientConn::dial(dial)?;
    let mut query_conns = Vec::with_capacity(conns);
    for _ in 0..conns {
        query_conns.push(ClientConn::dial(dial)?);
    }

    let mut ts: u64 = 0;
    let mut ack_checksum = CHECKSUM_INIT;

    // Initial presence, batched over the control connection. The
    // since_us stamps replay run_sharded's setup sequence (1..=users).
    let mut uid = 0u64;
    while uid < w.users {
        let end = (uid + INGEST_CHUNK as u64).min(w.users);
        let items: Vec<Notice> = (uid..end)
            .map(|u| Notice {
                cell: trace.initial[u as usize],
                addr: addr(u),
                present: true,
            })
            .collect();
        let sent = items.len() as u32;
        let resp = control.call(
            &Request::IngestBatch {
                base_us: ts + 1,
                items,
            }
            .encode(),
        )?;
        let Response::IngestAck { queued } = resp else {
            return Err(proto_err("expected IngestAck"));
        };
        if queued != sent {
            return Err(proto_err("server queued a different batch size"));
        }
        ts += u64::from(sent);
        uid = end;
    }
    let Response::FlushAck { acks } = control.call(&Request::Flush.encode())? else {
        return Err(proto_err("expected FlushAck"));
    };
    fold_acks(&mut ack_checksum, &acks);

    let qpt = w.queries_per_tick;
    let mut latencies_ns = vec![0u64; trace.queries.len()];
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut outcomes: Vec<Option<LocateOutcome>> = (0..qpt).map(|_| None).collect();
    let start = Instant::now();
    for tick in 0..w.ticks {
        // Moves: one batch, then a flush, on the control connection.
        let mvs = &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick];
        let mut items = Vec::with_capacity(mvs.len() * 2);
        for &(uid, old, new) in mvs {
            items.push(Notice {
                cell: new,
                addr: addr(uid),
                present: true,
            });
            items.push(Notice {
                cell: old,
                addr: addr(uid),
                present: false,
            });
        }
        let base_us = ts + 1;
        ts += items.len() as u64;
        let Response::IngestAck { .. } =
            control.call(&Request::IngestBatch { base_us, items }.encode())?
        else {
            return Err(proto_err("expected IngestAck"));
        };
        let Response::FlushAck { acks } = control.call(&Request::Flush.encode())? else {
            return Err(proto_err("expected FlushAck"));
        };
        fold_acks(&mut ack_checksum, &acks);

        // Queries: closed-loop, round-robin over the query conns. The
        // scope join is the tick barrier.
        let queries = &trace.queries[tick * qpt..(tick + 1) * qpt];
        let block = Instant::now();
        let worker_results: Vec<io::Result<Vec<(usize, u64, LocateOutcome)>>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = query_conns
                    .iter_mut()
                    .enumerate()
                    .map(|(k, conn)| {
                        s.spawn(move || {
                            let mut res = Vec::with_capacity(queries.len() / conns + 1);
                            let mut i = k;
                            while i < queries.len() {
                                let (querier, target, from_cell) = queries[i];
                                let payload = Request::WhereIs {
                                    querier,
                                    target,
                                    from_cell,
                                }
                                .encode();
                                let t0 = Instant::now();
                                let resp = conn.call(&payload)?;
                                let lat = t0.elapsed().as_nanos() as u64;
                                let Response::LocateResult(out) = resp else {
                                    return Err(proto_err("expected LocateResult"));
                                };
                                res.push((i, lat, out));
                                i += conns;
                            }
                            Ok(res)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err(proto_err("query worker panicked")))
                    })
                    .collect()
            });
        query_secs += block.elapsed().as_secs_f64();
        for r in worker_results {
            for (i, lat, out) in r? {
                latencies_ns[tick * qpt + i] = lat;
                outcomes[i] = Some(out);
            }
        }
        // Re-fold in global trace order — connection interleaving must
        // not be visible in the checksum.
        for slot in outcomes.iter_mut() {
            let Some(out) = slot.take() else {
                return Err(proto_err("missing query result"));
            };
            match out {
                LocateOutcome::Found {
                    cell,
                    path,
                    distance,
                } => {
                    found += 1;
                    fold(&mut checksum, 0, u64::from(cell), distance.to_bits(), &path);
                }
                other => fold(&mut checksum, 1 + other_code(&other), 0, 0, &[]),
            }
        }
    }
    let total_secs = start.elapsed().as_secs_f64();
    drop(query_conns);
    if send_shutdown {
        let Response::ShutdownAck = control.call(&Request::Shutdown.encode())? else {
            return Err(proto_err("expected ShutdownAck"));
        };
    }
    Ok(ModeResult {
        query_secs,
        total_secs,
        latencies_ns,
        checksum,
        ack_checksum,
        found,
    })
}

/// Stable discriminant for non-Found [`WhereIs`] outcomes.
pub fn where_code(out: &WhereIs) -> u64 {
    match out {
        WhereIs::Found { .. } => 0,
        WhereIs::NotLoggedIn => 1,
        WhereIs::OutOfCoverage => 2,
        WhereIs::NoSuchUser => 3,
        WhereIs::Denied => 4,
        WhereIs::QuerierNotLoggedIn => 5,
        WhereIs::BadQuery(_) => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let w = Workload::tiny();
        let a = generate_trace(&w);
        let b = generate_trace(&w);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.queries.len() as u64, w.queries());
    }

    #[test]
    fn fold_acks_depends_on_order_and_length() {
        let mut a = CHECKSUM_INIT;
        let mut b = CHECKSUM_INIT;
        fold_acks(&mut a, &[true, false]);
        fold_acks(&mut b, &[false, true]);
        assert_ne!(a, b);
        let mut c = CHECKSUM_INIT;
        fold_acks(&mut c, &[true]);
        fold_acks(&mut c, &[false]);
        assert_ne!(a, c, "batch boundaries are part of the fold");
    }

    #[test]
    fn shard_hdrs_merge_to_overall() {
        let w = Workload::tiny();
        let trace = generate_trace(&w);
        let (r, _) = run_sharded(&w, &trace, 1);
        let shards = shard_latency_hdrs(&w, &trace, &r);
        assert_eq!(shards.len(), w.shards);
        let merged = merge_shard_hdrs(&shards);
        assert_eq!(merged.count(), r.latencies_ns.len() as u64);
        assert_eq!(merged.count(), r.latency_hdr().count());
        assert_eq!(merged.min(), r.latency_hdr().min());
        assert_eq!(merged.max(), r.latency_hdr().max());
    }
}
