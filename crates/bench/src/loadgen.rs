//! Shared serving-path load generator.
//!
//! The deterministic WhereIs workload driver behind the
//! `server_throughput` binary and the tracing differential tests. A
//! [`Workload`] describes a building's worth of users moving between
//! cells while a pool of queriers asks where everyone is; a [`Trace`]
//! is the pre-generated, mode-independent schedule of moves and
//! queries derived from the seed. Three replay modes exist:
//!
//! * [`run_baseline`] — the seed [`BipsServer`] (string-keyed, fresh
//!   allocations per answer);
//! * [`run_sharded`] — the sharded engine with tracing off;
//! * [`run_sharded_traced`] — the same engine with a
//!   [`Tracer`] attached and a fresh span per query;
//! * [`run_socket`] — the same engine behind `bips-serve`, driven over
//!   a real socket by a closed-loop multi-connection client.
//!
//! A fourth, non-deterministic mode — [`run_contended`] — races reader
//! threads against a continuously flushing writer to measure tail
//! latency under genuine write contention; it asserts outcome validity
//! rather than checksums. [`Workload::with_mix`] re-tunes any workload
//! to a [`Mix`] preset (80:20, 50:50, 99:1 query:update), and the
//! `*_with` variants select the engine's slot-read protocol
//! ([`ReadPath`]) for locked-vs-seqlock comparisons.
//!
//! Every answer is folded into an FNV-1a checksum and every flush ack
//! into a second one, so "tracing is non-perturbing" is a one-line
//! assertion: the sharded and traced runs must produce bit-identical
//! `checksum` and `ack_checksum` for any `--jobs` value.

// Bench library: wall-clock reads feed perf reports (queries/sec,
// latency histograms), never simulation results.
#![allow(clippy::disallowed_methods)]

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bips_core::graph::{PathEngine, PathEngineKind, WsGraph};
use bips_core::protocol::{LocateOutcome, Notice, Request, Response};
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::{ReadPath, ShardedService, WhereIs};
use bips_core::BipsServer;
use bips_lan::network::HostId;
use bips_lan::rpc::{RpcCodec, RpcFrame};
use bips_lan::stream::{encode_stream_frame, StreamReframer};
use bt_baseband::BdAddr;
use desim::hdr::HdrHistogram;
use desim::metrics::MetricSet;
use desim::tracing::{FlightRecorder, SpanId, Tracer};
use desim::{SeedDeriver, SimTime};

/// FNV-1a 64 offset basis: the initial value of every checksum fold.
pub const CHECKSUM_INIT: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Query:update ratio of a workload's per-tick blocks.
///
/// Each preset fixes the block sizes directly (rather than deriving
/// them from a float ratio), so a mix is exactly reproducible and its
/// trace is a pure function of `(seed, mix)`:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mix {
    /// 256 queries : 64 moves per tick — the paper's read-mostly mix
    /// and the `full`/`smoke` default.
    #[default]
    Q80U20,
    /// 160 : 160 — the write-burst mix where a locked read path queues
    /// behind every flush.
    Q50U50,
    /// 297 : 3 — read-saturated, writers nearly idle.
    Q99U1,
}

impl Mix {
    /// Every preset, in declaration order.
    pub const ALL: [Mix; 3] = [Mix::Q80U20, Mix::Q50U50, Mix::Q99U1];

    /// Queries per tick.
    pub fn queries_per_tick(self) -> usize {
        match self {
            Mix::Q80U20 => 256,
            Mix::Q50U50 => 160,
            Mix::Q99U1 => 297,
        }
    }

    /// Moves per tick (each move ingests two notices).
    pub fn updates_per_tick(self) -> usize {
        match self {
            Mix::Q80U20 => 64,
            Mix::Q50U50 => 160,
            Mix::Q99U1 => 3,
        }
    }

    /// Stable `queries:updates` spelling for CLI flags and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mix::Q80U20 => "80:20",
            Mix::Q50U50 => "50:50",
            Mix::Q99U1 => "99:1",
        }
    }

    /// Parses a CLI spelling (`80:20`, `50:50`, `99:1`).
    pub fn parse(s: &str) -> Option<Mix> {
        match s {
            "80:20" => Some(Mix::Q80U20),
            "50:50" => Some(Mix::Q50U50),
            "99:1" => Some(Mix::Q99U1),
            _ => None,
        }
    }
}

/// One load-bench workload: a population on a square-grid building.
pub struct Workload {
    /// Section name in reports (`full`, `smoke`, `tiny`).
    pub name: &'static str,
    /// Registered user population.
    pub users: u64,
    /// Grid side; the building has `side * side` cells.
    pub side: usize,
    /// Moves applied per tick (each move = present(new) + absent(old)).
    pub updates_per_tick: usize,
    /// Queries served per tick (the default [`Mix::Q80U20`] serves 4x
    /// the updates; [`Workload::with_mix`] re-tunes both counts).
    pub queries_per_tick: usize,
    /// Number of ticks replayed.
    pub ticks: usize,
    /// Queriers are drawn from the first `pool` users — the handful of
    /// receptionists and dispatchers who actually run queries all day.
    pub pool: u64,
    /// Shard count for the sharded engine (power of two).
    pub shards: usize,
    /// Root seed; everything else derives from it.
    pub seed: u64,
}

impl Workload {
    /// The paper-scale workload: 1M users, 2M ops.
    pub fn full() -> Workload {
        Workload {
            name: "full",
            users: 1_000_000,
            side: 16,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 6250, // 1.6M queries + 400k moves = 2M ops, 80:20
            pool: 4096,
            shards: 16,
            seed: 2003,
        }
    }

    /// The CI-speed workload: 100k users, 200k ops.
    pub fn smoke() -> Workload {
        Workload {
            name: "smoke",
            users: 100_000,
            side: 8,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 625, // 160k queries + 40k moves = 200k ops
            pool: 1024,
            shards: 8,
            seed: 2003,
        }
    }

    /// A seconds-scale workload for differential tests.
    pub fn tiny() -> Workload {
        Workload {
            name: "tiny",
            users: 2_048,
            side: 4,
            updates_per_tick: 8,
            queries_per_tick: 32,
            ticks: 50,
            pool: 64,
            shards: 4,
            seed: 2003,
        }
    }

    /// The same workload re-tuned to `mix`: the per-tick block sizes
    /// come from the preset and, for non-default mixes, the section
    /// name gains a mix suffix (`full` → `full_50_50`) so reports and
    /// baselines never collide across mixes. The default mix keeps the
    /// bare name — existing baselines (`BENCH_PR6.json`,
    /// `BENCH_PR7.json`) keep matching. `tiny`'s blocks grow to the
    /// standard preset sizes; its per-run cost stays seconds-scale.
    pub fn with_mix(mut self, mix: Mix) -> Workload {
        self.updates_per_tick = mix.updates_per_tick();
        self.queries_per_tick = mix.queries_per_tick();
        self.name = match (self.name, mix) {
            (name, Mix::Q80U20) => name,
            ("full", Mix::Q50U50) => "full_50_50",
            ("full", Mix::Q99U1) => "full_99_1",
            ("smoke", Mix::Q50U50) => "smoke_50_50",
            ("smoke", Mix::Q99U1) => "smoke_99_1",
            ("tiny", Mix::Q50U50) => "tiny_50_50",
            ("tiny", Mix::Q99U1) => "tiny_99_1",
            // Already-suffixed or custom names stay as they are; the
            // block sizes above still apply.
            (name, _) => name,
        };
        self
    }

    /// Number of cells in the building.
    pub fn cells(&self) -> usize {
        self.side * self.side
    }

    /// Total queries replayed.
    pub fn queries(&self) -> u64 {
        (self.ticks * self.queries_per_tick) as u64
    }
}

/// A pre-generated, mode-independent trace: per tick, a block of moves
/// and a block of queries.
pub struct Trace {
    /// `(uid, old_cell, new_cell)` per move, tick-major.
    pub moves: Vec<(u64, u32, u32)>,
    /// `(querier_uid, target_uid, from_cell)` per query, tick-major.
    pub queries: Vec<(u64, u64, u32)>,
    /// Initial cell per user.
    pub initial: Vec<u32>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the move/query schedule from the workload seed.
pub fn generate_trace(w: &Workload) -> Trace {
    let seeds = SeedDeriver::new(w.seed);
    let cells = w.cells() as u64;
    let initial: Vec<u32> = (0..w.users).map(|u| (u % cells) as u32).collect();
    let mut current = initial.clone();

    let mut mv_state = seeds.derive(1);
    let mut moves = Vec::with_capacity(w.ticks * w.updates_per_tick);
    let mut q_state = seeds.derive(2);
    let mut queries = Vec::with_capacity(w.ticks * w.queries_per_tick);
    for _tick in 0..w.ticks {
        for _ in 0..w.updates_per_tick {
            let r = splitmix(&mut mv_state);
            let uid = r % w.users;
            let old = current[uid as usize];
            // Step to a different cell (never a redundant re-announce).
            let new = (u64::from(old) + 1 + (r >> 32) % (cells - 1)) % cells;
            current[uid as usize] = new as u32;
            moves.push((uid, old, new as u32));
        }
        for _ in 0..w.queries_per_tick {
            let r = splitmix(&mut q_state);
            let querier = r % w.pool;
            let target = (r >> 20) % w.users;
            let from_cell = (r >> 52) % cells;
            queries.push((querier, target, from_cell as u32));
        }
    }
    Trace {
        moves,
        queries,
        initial,
    }
}

/// The Bluetooth address registered for user `uid`.
pub fn addr(uid: u64) -> BdAddr {
    BdAddr::new(0x1_0000 + uid)
}

/// Folds one answer into the cross-mode checksum (FNV-1a 64).
pub fn fold(sum: &mut u64, kind: u64, cell: u64, dist_bits: u64, path: &[u32]) {
    let mut h = *sum;
    for word in [kind, cell, dist_bits, path.len() as u64] {
        h = (h ^ word).wrapping_mul(FNV_PRIME);
    }
    for &c in path {
        h = (h ^ u64::from(c)).wrapping_mul(FNV_PRIME);
    }
    *sum = h;
}

/// Folds one flush's acks into the ack checksum (FNV-1a 64).
pub fn fold_acks(sum: &mut u64, acks: &[bool]) {
    let mut h = *sum;
    h = (h ^ acks.len() as u64).wrapping_mul(FNV_PRIME);
    for &a in acks {
        h = (h ^ u64::from(a)).wrapping_mul(FNV_PRIME);
    }
    *sum = h;
}

/// Result of one mode over one workload.
pub struct ModeResult {
    /// Wall seconds spent inside query blocks only.
    pub query_secs: f64,
    /// Wall seconds for the whole replay (updates included).
    pub total_secs: f64,
    /// Per-query latencies, nanoseconds, in trace order.
    pub latencies_ns: Vec<u64>,
    /// FNV-1a fold of every answer (kind, cell, distance, path).
    pub checksum: u64,
    /// FNV-1a fold of every flush's acks. [`CHECKSUM_INIT`] for the
    /// baseline mode, which has no batched flushes.
    pub ack_checksum: u64,
    /// Queries answered `Found`.
    pub found: u64,
}

impl ModeResult {
    /// Queries per wall second, counting query blocks only.
    pub fn queries_per_sec(&self) -> f64 {
        self.latencies_ns.len() as f64 / self.query_secs
    }

    /// Exact percentile (microseconds) from the sorted latency vector.
    pub fn percentile_us(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted.get(idx).copied().unwrap_or(0) as f64 / 1000.0
    }

    /// All latencies folded into a log-linear HDR histogram at the
    /// default resolution (relative error < 1.5625%).
    pub fn latency_hdr(&self) -> HdrHistogram {
        let mut h = HdrHistogram::with_default_resolution();
        for &ns in &self.latencies_ns {
            h.record(ns);
        }
        h
    }
}

/// Per-shard latency HDR histograms: query latencies attributed to the
/// querier's shard (`querier & (shards - 1)`), exactly as
/// `ShardedService` routes them. Computed post-hoc from the trace so
/// the replay itself stays untouched.
pub fn shard_latency_hdrs(w: &Workload, trace: &Trace, r: &ModeResult) -> Vec<HdrHistogram> {
    let mask = (w.shards as u64).saturating_sub(1);
    let mut hdrs: Vec<HdrHistogram> = (0..w.shards)
        .map(|_| HdrHistogram::with_default_resolution())
        .collect();
    for (&(querier, _, _), &ns) in trace.queries.iter().zip(&r.latencies_ns) {
        let shard = (querier & mask) as usize;
        if let Some(h) = hdrs.get_mut(shard) {
            h.record(ns);
        }
    }
    hdrs
}

/// Index-ordered merge of per-shard histograms into one. The order is
/// fixed (shard 0, 1, 2, …) so the merged histogram is bit-identical
/// however the shards were populated.
pub fn merge_shard_hdrs(shards: &[HdrHistogram]) -> HdrHistogram {
    let mut merged = HdrHistogram::with_default_resolution();
    for h in shards {
        // Same resolution by construction; a mismatch would be a bug
        // worth surfacing in the bench output, not worth panicking for.
        if let Err(e) = merged.merge(h) {
            eprintln!("shard hdr merge failed: {e}");
        }
    }
    merged
}

/// The square-grid workspace graph.
pub fn grid(side: usize) -> WsGraph {
    let mut g = WsGraph::new(side * side);
    for r in 0..side {
        for c in 0..side {
            let at = r * side + c;
            if c + 1 < side {
                g.add_edge(at, at + 1, 10.0);
            }
            if r + 1 < side {
                g.add_edge(at, at + side, 10.0);
            }
        }
    }
    g
}

/// A registry with `users` open-rights accounts (`user0`, `user1`, …).
pub fn registry(users: u64) -> Registry {
    let mut reg = Registry::new();
    for i in 0..users {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    reg
}

/// Replays the trace against the seed server.
pub fn run_baseline(w: &Workload, trace: &Trace) -> ModeResult {
    let g = grid(w.side);
    let mut server = BipsServer::new(registry(w.users), &g);
    let names: Vec<String> = (0..w.users).map(|i| format!("user{i}")).collect();
    let mut ts: u64 = 0;
    for uid in 0..w.users {
        server
            .registry_mut()
            .login(&names[uid as usize], "pw", addr(uid))
            .expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        server.handle(
            Request::Presence {
                cell: trace.initial[uid as usize],
                addr: addr(uid),
                present: true,
            },
            SimTime::from_micros(ts),
        );
    }

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: new,
                    addr: addr(uid),
                    present: true,
                },
                SimTime::from_micros(ts),
            );
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: old,
                    addr: addr(uid),
                    present: false,
                },
                SimTime::from_micros(ts),
            );
        }
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let resp = server.handle(
                Request::Locate {
                    from: addr(querier),
                    target: names[target as usize].clone(),
                    from_cell,
                },
                SimTime::from_micros(ts),
            );
            let now = Instant::now();
            latencies_ns.push((now - prev).as_nanos() as u64);
            prev = now;
            let Response::LocateResult(out) = resp else {
                panic!("unexpected response");
            };
            match out {
                LocateOutcome::Found {
                    cell,
                    path,
                    distance,
                } => {
                    found += 1;
                    fold(&mut checksum, 0, u64::from(cell), distance.to_bits(), &path);
                }
                other => fold(&mut checksum, 1 + other_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    ModeResult {
        query_secs,
        total_secs: start.elapsed().as_secs_f64(),
        latencies_ns,
        checksum,
        ack_checksum: CHECKSUM_INIT,
        found,
    }
}

/// Stable discriminant for non-Found [`LocateOutcome`]s.
pub fn other_code(out: &LocateOutcome) -> u64 {
    match out {
        LocateOutcome::Found { .. } => 0,
        LocateOutcome::NotLoggedIn => 1,
        LocateOutcome::OutOfCoverage => 2,
        LocateOutcome::NoSuchUser => 3,
        LocateOutcome::Denied => 4,
        LocateOutcome::QuerierNotLoggedIn => 5,
        LocateOutcome::BadQuery(_) => 6,
    }
}

/// Replays the trace against the sharded engine, tracing off, on the
/// default (seqlock) read path.
pub fn run_sharded(w: &Workload, trace: &Trace, jobs: usize) -> (ModeResult, MetricSet) {
    run_sharded_impl(w, trace, jobs, ReadPath::Seqlock, None)
}

/// [`run_sharded`] with an explicit slot-read protocol — the
/// locked-vs-seqlock comparison entry point. Checksums must be
/// bit-identical across read paths for any `jobs`.
pub fn run_sharded_with(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    read_path: ReadPath,
) -> (ModeResult, MetricSet) {
    run_sharded_impl(w, trace, jobs, read_path, None)
}

/// [`run_sharded`] over a dynamic path engine with topology churn
/// folded in at tick boundaries: each tick applies `muts_per_tick`
/// seeded mutations (mostly grid-edge reweights, occasionally a node
/// down/up toggle) before its query block. Every mutation's applied
/// flag and resulting epoch fold into the answer checksum, so
/// divergence in mutation handling — not just in answers — is caught.
/// Identical `(workload, trace, kind-independent seed)` inputs must
/// checksum identically for every engine `kind` and every `jobs`.
pub fn run_sharded_churn(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    kind: PathEngineKind,
    churn_seed: u64,
    muts_per_tick: usize,
) -> (ModeResult, MetricSet) {
    let g = grid(w.side);
    let reg = registry(w.users);
    let svc =
        ShardedService::new_dynamic(&reg, PathEngine::new(kind, g), w.shards, ReadPath::Seqlock);
    let mut ts: u64 = 0;
    let mut ack_checksum = CHECKSUM_INIT;
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, ts);
    }
    fold_acks(&mut ack_checksum, &svc.flush(jobs));

    let n = w.cells();
    let side = w.side;
    let mut rng = desim::SimRng::seed_from(churn_seed);
    let engine_lock = svc.path_engine().expect("dynamic service");
    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut path = Vec::new();
    let mut path32 = Vec::new();
    let start = Instant::now();
    for tick in 0..w.ticks {
        {
            let mut eng = engine_lock.write().unwrap_or_else(|e| e.into_inner());
            for _ in 0..muts_per_tick {
                if rng.below(8) == 0 {
                    let x = rng.below(n as u64) as usize;
                    let up = rng.below(2) == 0;
                    let applied = eng.set_node_up(x, up).unwrap_or(false);
                    fold(
                        &mut checksum,
                        96 + u64::from(applied),
                        x as u64,
                        eng.epoch(),
                        &[],
                    );
                } else {
                    let a = rng.below(n as u64) as usize;
                    let (r, c) = (a / side, a % side);
                    let mut nbrs = Vec::with_capacity(4);
                    if c + 1 < side {
                        nbrs.push(a + 1);
                    }
                    if r + 1 < side {
                        nbrs.push(a + side);
                    }
                    if c > 0 {
                        nbrs.push(a - 1);
                    }
                    if r > 0 {
                        nbrs.push(a - side);
                    }
                    let b = nbrs[rng.below(nbrs.len() as u64) as usize];
                    let wgt = rng.uniform(0.5, 50.0);
                    let applied = eng.set_edge_weight(a, b, wgt).unwrap_or(false);
                    fold(
                        &mut checksum,
                        98 + u64::from(applied),
                        a as u64,
                        eng.epoch(),
                        &[],
                    );
                }
            }
        }
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            svc.ingest(addr(uid), new, true, ts);
            ts += 1;
            svc.ingest(addr(uid), old, false, ts);
        }
        fold_acks(&mut ack_checksum, &svc.flush(jobs));
        let block = Instant::now();
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let q = Instant::now();
            let out = svc.where_is(querier, target, from_cell as usize, &mut path);
            latencies_ns.push(q.elapsed().as_nanos() as u64);
            match out {
                WhereIs::Found { cell, distance } => {
                    found += 1;
                    path32.clear();
                    path32.extend(path.iter().map(|&n| n as u32));
                    fold(
                        &mut checksum,
                        0,
                        u64::from(cell),
                        distance.to_bits(),
                        &path32,
                    );
                }
                other => fold(&mut checksum, 1 + where_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    let mut metrics = MetricSet::new();
    svc.export_metrics(&mut metrics);
    (
        ModeResult {
            query_secs,
            total_secs: start.elapsed().as_secs_f64(),
            latencies_ns,
            checksum,
            ack_checksum,
            found,
        },
        metrics,
    )
}

/// Replays the trace against the sharded engine with `tracer`
/// attached: every query gets a fresh span, every ingest and flush is
/// recorded on its shard's ring. When `recorder` is armed with a
/// latency threshold, each query latency is fed to it.
pub fn run_sharded_traced(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    tracer: &Arc<Tracer>,
    recorder: Option<&FlightRecorder>,
) -> (ModeResult, MetricSet) {
    run_sharded_impl(w, trace, jobs, ReadPath::Seqlock, Some((tracer, recorder)))
}

fn run_sharded_impl(
    w: &Workload,
    trace: &Trace,
    jobs: usize,
    read_path: ReadPath,
    tracing: Option<(&Arc<Tracer>, Option<&FlightRecorder>)>,
) -> (ModeResult, MetricSet) {
    let g = grid(w.side);
    let reg = registry(w.users);
    let mut svc =
        ShardedService::new_with_read_path(&reg, g.precompute_all_pairs(), w.shards, read_path);
    if let Some((tracer, _)) = tracing {
        svc.attach_tracer(Arc::clone(tracer));
    }
    let shard_mask = (w.shards as u64).saturating_sub(1);
    let mut ts: u64 = 0;
    let mut ack_checksum = CHECKSUM_INIT;
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, ts);
    }
    fold_acks(&mut ack_checksum, &svc.flush(jobs));

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut path = Vec::new();
    let mut path32 = Vec::new();
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            svc.ingest(addr(uid), new, true, ts);
            ts += 1;
            svc.ingest(addr(uid), old, false, ts);
        }
        fold_acks(&mut ack_checksum, &svc.flush(jobs));
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let span = match tracing {
                Some((tracer, _)) => tracer.next_span(),
                None => SpanId::NONE,
            };
            let out = svc.where_is_traced(querier, target, from_cell as usize, &mut path, span);
            let now = Instant::now();
            let lat = (now - prev).as_nanos() as u64;
            latencies_ns.push(lat);
            prev = now;
            if let Some((_, Some(rec))) = tracing {
                rec.observe_latency_ns(span, (querier & shard_mask) as usize, lat);
            }
            match out {
                WhereIs::Found { cell, distance } => {
                    found += 1;
                    path32.clear();
                    path32.extend(path.iter().map(|&n| n as u32));
                    fold(
                        &mut checksum,
                        0,
                        u64::from(cell),
                        distance.to_bits(),
                        &path32,
                    );
                }
                other => fold(&mut checksum, 1 + where_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    let mut metrics = MetricSet::new();
    svc.export_metrics(&mut metrics);
    if let Some((tracer, _)) = tracing {
        tracer.export_metrics(&mut metrics);
    }
    (
        ModeResult {
            query_secs,
            total_secs: start.elapsed().as_secs_f64(),
            latencies_ns,
            checksum,
            ack_checksum,
            found,
        },
        metrics,
    )
}

/// A [`ShardedService`] for the workload with every user logged in —
/// the server-side state `bips-serve` starts from. Presence is NOT
/// pre-applied: the socket client ingests the initial cells itself, so
/// its ack checksum covers the same flushes as [`run_sharded`]'s.
pub fn build_service(w: &Workload) -> ShardedService {
    build_service_with(w, ReadPath::Seqlock)
}

/// [`build_service`] with an explicit slot-read protocol.
pub fn build_service_with(w: &Workload, read_path: ReadPath) -> ShardedService {
    let g = grid(w.side);
    let reg = registry(w.users);
    let svc =
        ShardedService::new_with_read_path(&reg, g.precompute_all_pairs(), w.shards, read_path);
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    svc
}

// ---------------------------------------------------------------------
// Contended mode
// ---------------------------------------------------------------------

/// Expected per-query service interval (ns) used for coordinated-
/// omission correction in [`run_contended`]. The closed-loop readers
/// measure one slow sample per writer-lock stall and then sit out the
/// rest of it, silently omitting every query an open-loop arrival
/// stream would have issued (and delayed) meanwhile — so stalls
/// thousands of times the service time barely dent a naive p999. Each
/// sample is therefore recorded with
/// [`HdrHistogram::record_corrected`] at this interval: ~4x the
/// uncontended p50, so genuine stalls back-fill their implied delayed
/// arrivals while ordinary jitter records nothing extra.
pub const CONTENDED_EXPECTED_SERVICE_NS: u64 = 1_000;

/// Result of one [`run_contended`] run.
pub struct ContendedResult {
    /// All readers' per-query latencies, merged in reader-index order
    /// into one HDR histogram (so the merge is deterministic even
    /// though the interleaving is not), recorded with coordinated-
    /// omission correction at [`CONTENDED_EXPECTED_SERVICE_NS`].
    pub hdr: HdrHistogram,
    /// Latencies of only the queries that overlapped a flush — the
    /// write-burst subset, recorded uncorrected. This is the
    /// scheme-sensitive tail: a locked reader that lands in a burst
    /// queues behind the writer's whole per-shard batch, a seqlock
    /// reader reads straight through it. Conditioning on the burst
    /// window also keeps the comparison meaningful on small machines,
    /// where OS preemption noise (milliseconds, hitting both paths
    /// alike) would otherwise bury the lock-wait signal in the overall
    /// percentiles.
    pub burst_hdr: HdrHistogram,
    /// Queries actually served, all readers and schedule passes
    /// together (readers loop the schedule until the writer finishes,
    /// so this is at least one full schedule).
    pub queries: u64,
    /// Queries answered `Found`.
    pub found: u64,
    /// Seqlock read retries accumulated by the service over the run
    /// (always 0 on [`ReadPath::Locked`]).
    pub read_retries: u64,
    /// Slot publishes performed by the writer over the run.
    pub slot_publishes: u64,
    /// Wall seconds from the first query to the last reader joining.
    pub wall_secs: f64,
}

impl ContendedResult {
    /// Queries per wall second, all readers together.
    pub fn queries_per_sec(&self) -> f64 {
        self.queries as f64 / self.wall_secs
    }

    /// The write-burst tail at quantile `q`, in nanoseconds: the burst
    /// subset when any query overlapped a flush, falling back to the
    /// overall histogram when none did (a writer so quick no burst was
    /// ever observed).
    pub fn burst_quantile(&self, q: f64) -> u64 {
        if self.burst_hdr.is_empty() {
            self.hdr.quantile(q)
        } else {
            self.burst_hdr.quantile(q)
        }
    }

    /// Mean seqlock read retries per query.
    pub fn retries_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.read_retries as f64 / self.queries as f64
        }
    }
}

/// Replays the query schedule against a *continuously flushing* writer
/// — the write-burst scenario the barriered replays cannot produce.
///
/// The deterministic modes ([`run_sharded`], [`run_socket`]) alternate
/// move blocks and query blocks with a barrier between them, so a
/// query never actually races a flush and the blocking cost of
/// [`ReadPath::Locked`] is invisible in their tails. Here one writer
/// thread loops the workload's move schedule (wrapping around for as
/// long as the readers are querying) and flushes every `burst_ticks`
/// tick blocks — one flush then applies `burst_ticks *
/// 2 * updates_per_tick` notices, holding each shard's writer lock for
/// the whole per-shard batch. That is the write burst of the paper's
/// deployment (an inquiry sweep re-announcing a wave of users at
/// once): locked readers queue behind the batch, seqlock readers read
/// through it.
///
/// The writer paces the run: it replays the move schedule `passes`
/// times (with a final drain flush) and then signals completion, while
/// `readers` reader threads partition the query schedule — query `i`
/// rides reader `i % readers` — and loop their partition until the
/// writer is done, so queries are in flight across every write burst.
/// Each reader completes at least one full partition pass even if the
/// writer finishes first. Schedule wrap-around is sound on both sides:
/// a replayed `present(new)` re-publishes the slot and the stale
/// `absent(old)` is dropped by the claims check, so every user stays
/// logged in and present for the whole run.
///
/// Because queries genuinely race flushes, answers are *not*
/// checksummed against the barriered replay — readers instead assert
/// outcome validity (a `Found` cell is in range). Bit-identity of the
/// seqlock path is proven separately by the differential suites; this
/// mode exists to measure the tail under contention.
///
/// Every per-query latency lands in the overall histogram with
/// coordinated-omission correction; queries that overlapped a flush
/// (the writer raises a flush-active flag around each burst) land in
/// the burst histogram too — see [`ContendedResult::burst_hdr`].
///
/// When `recorder` is armed with a retry threshold
/// (`FlightRecorder::with_retry_threshold`), each query feeds its
/// shard's read-retry delta to the retry-storm trigger. Concurrent
/// readers of one shard may attribute each other's retries, so the
/// delta is an over-approximation — fine for a storm detector.
pub fn run_contended(
    w: &Workload,
    trace: &Trace,
    readers: usize,
    burst_ticks: usize,
    passes: usize,
    read_path: ReadPath,
    recorder: Option<&FlightRecorder>,
) -> ContendedResult {
    assert!(readers >= 1, "need at least one reader");
    assert!(burst_ticks >= 1, "need at least one tick per write burst");
    assert!(passes >= 1, "need at least one writer pass");
    let svc = build_service_with(w, read_path);
    let mut setup_ts: u64 = 0;
    for uid in 0..w.users {
        setup_ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, setup_ts);
    }
    svc.flush(1);

    let cells = w.cells() as u32;
    let upt = w.updates_per_tick;
    let shard_mask = (w.shards as u64).saturating_sub(1);
    let done = AtomicBool::new(false);
    let flushing = AtomicBool::new(false);
    let start = Instant::now();
    let per_reader: Vec<(HdrHistogram, HdrHistogram, u64, u64)> = std::thread::scope(|s| {
        let svc = &svc;
        let done = &done;
        let flushing = &flushing;
        let writer = s.spawn(move || {
            let mut ts = setup_ts;
            let mut since_flush = 0usize;
            let burst_flush = |svc: &ShardedService| {
                flushing.store(true, Ordering::Release);
                svc.flush(1);
                flushing.store(false, Ordering::Release);
            };
            for _pass in 0..passes {
                for tick in 0..w.ticks {
                    for &(uid, old, new) in &trace.moves[tick * upt..(tick + 1) * upt] {
                        ts += 1;
                        svc.ingest(addr(uid), new, true, ts);
                        ts += 1;
                        svc.ingest(addr(uid), old, false, ts);
                    }
                    since_flush += 1;
                    if since_flush >= burst_ticks {
                        burst_flush(svc);
                        since_flush = 0;
                    }
                }
            }
            if since_flush > 0 {
                burst_flush(svc);
            }
            done.store(true, Ordering::Release);
        });
        let handles: Vec<_> = (0..readers)
            .map(|k| {
                s.spawn(move || {
                    let mut hdr = HdrHistogram::with_default_resolution();
                    let mut burst_hdr = HdrHistogram::with_default_resolution();
                    let mut path = Vec::new();
                    let mut found = 0u64;
                    let mut queries = 0u64;
                    let mut pass = 0usize;
                    'serve: loop {
                        let mut i = k;
                        while i < trace.queries.len() {
                            // The first partition pass always completes
                            // (coverage even against an instant writer);
                            // later passes bail as soon as the writer is
                            // done.
                            if pass > 0 && done.load(Ordering::Acquire) {
                                break 'serve;
                            }
                            let (querier, target, from_cell) = trace.queries[i];
                            let shard = (querier & shard_mask) as usize;
                            let before = recorder.map(|_| svc.shard_read_retries(shard));
                            let in_burst = flushing.load(Ordering::Acquire);
                            let t0 = Instant::now();
                            let out = svc.where_is(querier, target, from_cell as usize, &mut path);
                            let lat = t0.elapsed().as_nanos() as u64;
                            hdr.record_corrected(lat, CONTENDED_EXPECTED_SERVICE_NS);
                            // A flush is orders of magnitude longer than
                            // a query, so sampling the flag on both edges
                            // catches every overlap.
                            if in_burst || flushing.load(Ordering::Acquire) {
                                burst_hdr.record(lat);
                            }
                            if let (Some(rec), Some(b)) = (recorder, before) {
                                let delta = svc.shard_read_retries(shard).saturating_sub(b);
                                rec.observe_read_retries(SpanId::NONE, shard, delta);
                            }
                            if let WhereIs::Found { cell, .. } = out {
                                assert!(cell < cells, "Found cell {cell} out of range");
                                found += 1;
                            }
                            queries += 1;
                            i += readers;
                        }
                        pass += 1;
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                    }
                    (hdr, burst_hdr, found, queries)
                })
            })
            .collect();
        let collected = handles
            .into_iter()
            .map(|h| h.join().expect("reader thread"))
            .collect();
        writer.join().expect("writer thread");
        collected
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let mut hdr = HdrHistogram::with_default_resolution();
    let mut burst_hdr = HdrHistogram::with_default_resolution();
    let mut found = 0u64;
    let mut queries = 0u64;
    for (h, b, f, q) in &per_reader {
        if let Err(e) = hdr.merge(h) {
            eprintln!("reader hdr merge failed: {e}");
        }
        if let Err(e) = burst_hdr.merge(b) {
            eprintln!("reader burst hdr merge failed: {e}");
        }
        found += f;
        queries += q;
    }
    ContendedResult {
        hdr,
        burst_hdr,
        queries,
        found,
        read_retries: svc.read_retries(),
        slot_publishes: svc.slot_publishes(),
        wall_secs,
    }
}

// ---------------------------------------------------------------------
// Write-burst tail model
// ---------------------------------------------------------------------

/// Result of [`run_burst_model`]: the open-loop write-burst tail,
/// composed deterministically from measured components.
pub struct BurstModelResult {
    /// Modeled per-arrival latencies over one burst cycle.
    pub hdr: HdrHistogram,
    /// Measured wall seconds to ingest one `burst_ticks` block.
    pub ingest_secs: f64,
    /// Measured wall seconds for the burst's `flush(1)` — the span in
    /// which each shard's writer lock is held once, back to back.
    pub flush_secs: f64,
    /// Mean per-shard lock hold: `flush_secs / shards`, nanoseconds.
    pub hold_ns: u64,
    /// Fraction of the burst cycle spent flushing.
    pub duty: f64,
}

/// Deterministic open-loop model of the tail a read path shows under
/// write bursts — the reproducible companion to [`run_contended`].
///
/// Thread-against-thread tail measurements are scheduler-bound: on a
/// small host (CI runners, single-core boxes) OS preemption stalls are
/// milliseconds — an order of magnitude past the lock holds being
/// measured — and land on both read paths at random, so a measured
/// contended p999 does not reproduce run to run. This harness instead
/// *measures* the two quantities the tail is actually made of and
/// composes them deterministically:
///
/// 1. **The burst timeline.** The real writer ingests `burst_ticks`
///    ticks of moves and applies them with one `flush(1)`; ingest and
///    flush wall times are measured over several bursts (first burst
///    discarded as warm-up, remainder averaged). `flush(1)` holds each
///    shard's writer lock once, back to back, so the flush span divides
///    into `shards` equal hold windows — the queue is uid-partitioned
///    and near-uniform.
/// 2. **The service distribution.** Per-query latencies measured by the
///    caller (a barriered replay on the same read path), passed in as
///    `service_hdr`.
///
/// The model then replays one burst cycle with `arrivals` evenly
/// spaced open-loop arrivals. Arrival `i` targets shard `i % shards`
/// and draws its service time by sweeping the measured distribution's
/// quantiles (stride a prime so shard and quantile don't correlate),
/// clamped at p999 so the model's own tail is attributable to the lock
/// protocol under test and not to rare scheduler blips captured in the
/// measured service distribution.
/// An arrival that lands inside the hold window of *its own* shard
/// waits out the remaining hold on [`ReadPath::Locked`] before being
/// served; on [`ReadPath::Seqlock`] it is served immediately (the read
/// path takes no lock; the rare same-slot retry is measured separately
/// by [`run_contended`] as `retries_per_query`). Queueing *behind*
/// delayed arrivals is not modeled, so the locked tail is a lower
/// bound.
///
/// Everything entering the histogram is either measured wall time or
/// arithmetic on it; given the same measured inputs the model is
/// bit-deterministic, and the measured inputs themselves (ingest and
/// flush spans of millions of operations) are stable where per-query
/// percentiles are not.
pub fn run_burst_model(
    w: &Workload,
    trace: &Trace,
    burst_ticks: usize,
    arrivals: usize,
    read_path: ReadPath,
    service_hdr: &HdrHistogram,
) -> BurstModelResult {
    assert!(burst_ticks >= 1, "need at least one tick per burst");
    assert!(arrivals >= 1, "need at least one modeled arrival");
    assert!(
        !service_hdr.is_empty(),
        "need a measured service distribution"
    );
    let svc = build_service_with(w, read_path);
    let mut ts: u64 = 0;
    for uid in 0..w.users {
        ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, ts);
    }
    svc.flush(1);

    let upt = w.updates_per_tick;
    // Burst 0 warms allocator and caches; bursts 1.. are measured.
    const BURSTS: usize = 4;
    let mut ingest_secs = 0.0;
    let mut flush_secs = 0.0;
    let mut tick = 0usize;
    for burst in 0..BURSTS {
        let t0 = Instant::now();
        for _ in 0..burst_ticks {
            for &(uid, old, new) in &trace.moves[tick * upt..(tick + 1) * upt] {
                ts += 1;
                svc.ingest(addr(uid), new, true, ts);
                ts += 1;
                svc.ingest(addr(uid), old, false, ts);
            }
            tick = (tick + 1) % w.ticks;
        }
        let ingested = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        svc.flush(1);
        let flushed = t1.elapsed().as_secs_f64();
        if burst > 0 {
            ingest_secs += ingested / (BURSTS - 1) as f64;
            flush_secs += flushed / (BURSTS - 1) as f64;
        }
    }

    let shards = w.shards.max(1);
    let cycle_ns = (ingest_secs + flush_secs) * 1e9;
    let flush_ns = flush_secs * 1e9;
    let hold_ns = flush_ns / shards as f64;
    let mut hdr = HdrHistogram::with_default_resolution();
    // Prime stride decorrelates the quantile sweep from `i % shards`.
    const QUANTILE_STEPS: usize = 997;
    for i in 0..arrivals {
        let offset_ns = cycle_ns * (i as f64 + 0.5) / arrivals as f64;
        let q = (((i % QUANTILE_STEPS) as f64 + 0.5) / QUANTILE_STEPS as f64).min(0.999);
        let mut lat = service_hdr.quantile(q);
        // The flush phase occupies the cycle's tail; within it, shard
        // locks are held consecutively: shard j owns
        // [ingest + j*hold, ingest + (j+1)*hold).
        let into_flush = offset_ns - ingest_secs * 1e9;
        if read_path == ReadPath::Locked && into_flush >= 0.0 {
            let holding = (into_flush / hold_ns).min((shards - 1) as f64) as usize;
            if holding == i % shards {
                let remaining = (holding + 1) as f64 * hold_ns - into_flush;
                lat += remaining.max(0.0) as u64;
            }
        }
        hdr.record(lat);
    }
    BurstModelResult {
        hdr,
        ingest_secs,
        flush_secs,
        hold_ns: hold_ns as u64,
        duty: flush_ns / cycle_ns.max(f64::MIN_POSITIVE),
    }
}

// ---------------------------------------------------------------------
// Socket client mode
// ---------------------------------------------------------------------

/// Where the socket client connects: loopback TCP or a Unix-domain
/// socket path (mirroring `bips-serve`'s two listeners).
#[derive(Debug, Clone)]
pub enum Dial {
    /// `host:port`.
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

enum ClientStream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

/// One client connection: an RPC codec over a length-delimited byte
/// stream, driven strictly request-by-request (closed loop).
struct ClientConn {
    stream: ClientStream,
    codec: RpcCodec,
    reframer: StreamReframer,
    rbuf: Vec<u8>,
}

fn proto_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

impl ClientConn {
    fn dial(d: &Dial) -> io::Result<ClientConn> {
        let stream = match d {
            Dial::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                // Closed-loop RTTs: never let Nagle hold a request back.
                s.set_nodelay(true)?;
                ClientStream::Tcp(s)
            }
            Dial::Uds(path) => ClientStream::Uds(UnixStream::connect(path)?),
        };
        Ok(ClientConn {
            stream,
            codec: RpcCodec::new(),
            reframer: StreamReframer::new(),
            rbuf: vec![0u8; 64 * 1024],
        })
    }

    fn write_all(&mut self, bytes: &[u8]) -> io::Result<()> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.write_all(bytes),
            ClientStream::Uds(s) => s.write_all(bytes),
        }
    }

    fn read(&mut self) -> io::Result<usize> {
        match &mut self.stream {
            ClientStream::Tcp(s) => s.read(&mut self.rbuf),
            ClientStream::Uds(s) => s.read(&mut self.rbuf),
        }
    }

    /// Sends one request payload and blocks for its response — the
    /// closed-loop primitive. Checks the correlation id round-trips.
    fn call(&mut self, payload: &[u8]) -> io::Result<Response> {
        let (corr, framed) = self.codec.encode_request(payload);
        let mut msg = Vec::with_capacity(framed.len() + 4);
        encode_stream_frame(&mut msg, &framed);
        self.write_all(&msg)?;
        loop {
            let got = self
                .reframer
                .next_frame()
                .map_err(|e| proto_err(&e.to_string()))?;
            if let Some(frame) = got {
                let Some(RpcFrame::Response {
                    corr: rc, payload, ..
                }) = RpcCodec::decode_ref_bytes(HostId::new(0), frame)
                else {
                    return Err(proto_err("stream frame is not an rpc response"));
                };
                if rc.value() != corr.value() {
                    return Err(proto_err("correlation id mismatch"));
                }
                return Response::decode(payload)
                    .map_err(|e| proto_err(&format!("bad response payload: {e}")));
            }
            let n = self.read()?;
            if n == 0 {
                return Err(proto_err("server closed mid-request"));
            }
            self.reframer.extend(&self.rbuf[..n]);
        }
    }
}

/// Batch size for streaming the initial 1-presence-per-user state in.
const INGEST_CHUNK: usize = 8192;

/// Replays the trace against a `bips-serve` instance over a real
/// socket: the networked analogue of [`run_sharded`].
///
/// One *control* connection carries all ingest batches and flushes in
/// trace order (so the global presence sequence — and therefore every
/// flush's ack vector — is identical to the in-process run), while
/// `conns` *query* connections serve the tick's queries closed-loop:
/// query `i` of a tick rides connection `i % conns`, each connection
/// has exactly one request in flight, and a scoped join between ticks
/// is the barrier that keeps queries reading the tick's flushed state.
/// Answers are re-folded in global trace order afterwards, so
/// `checksum`/`ack_checksum` must be bit-identical to [`run_sharded`]
/// for any `conns` — that is the proof the networked path serves the
/// same answers.
///
/// Unlike the in-process modes, `latencies_ns` holds true end-to-end
/// RTTs (encode → socket → serve → socket → decode) per request.
///
/// When `send_shutdown` is set, a [`Request::Shutdown`] goes out on
/// the control connection after the replay and the server's ack is
/// awaited — the graceful-drain path.
pub fn run_socket(
    w: &Workload,
    trace: &Trace,
    dial: &Dial,
    conns: usize,
    send_shutdown: bool,
) -> io::Result<ModeResult> {
    assert!(conns >= 1, "need at least one query connection");
    let mut control = ClientConn::dial(dial)?;
    let mut query_conns = Vec::with_capacity(conns);
    for _ in 0..conns {
        query_conns.push(ClientConn::dial(dial)?);
    }

    let mut ts: u64 = 0;
    let mut ack_checksum = CHECKSUM_INIT;

    // Initial presence, batched over the control connection. The
    // since_us stamps replay run_sharded's setup sequence (1..=users).
    let mut uid = 0u64;
    while uid < w.users {
        let end = (uid + INGEST_CHUNK as u64).min(w.users);
        let items: Vec<Notice> = (uid..end)
            .map(|u| Notice {
                cell: trace.initial[u as usize],
                addr: addr(u),
                present: true,
            })
            .collect();
        let sent = items.len() as u32;
        let resp = control.call(
            &Request::IngestBatch {
                base_us: ts + 1,
                items,
            }
            .encode(),
        )?;
        let Response::IngestAck { queued } = resp else {
            return Err(proto_err("expected IngestAck"));
        };
        if queued != sent {
            return Err(proto_err("server queued a different batch size"));
        }
        ts += u64::from(sent);
        uid = end;
    }
    let Response::FlushAck { acks } = control.call(&Request::Flush.encode())? else {
        return Err(proto_err("expected FlushAck"));
    };
    fold_acks(&mut ack_checksum, &acks);

    let qpt = w.queries_per_tick;
    let mut latencies_ns = vec![0u64; trace.queries.len()];
    let mut checksum = CHECKSUM_INIT;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut outcomes: Vec<Option<LocateOutcome>> = (0..qpt).map(|_| None).collect();
    let start = Instant::now();
    for tick in 0..w.ticks {
        // Moves: one batch, then a flush, on the control connection.
        let mvs = &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick];
        let mut items = Vec::with_capacity(mvs.len() * 2);
        for &(uid, old, new) in mvs {
            items.push(Notice {
                cell: new,
                addr: addr(uid),
                present: true,
            });
            items.push(Notice {
                cell: old,
                addr: addr(uid),
                present: false,
            });
        }
        let base_us = ts + 1;
        ts += items.len() as u64;
        let Response::IngestAck { .. } =
            control.call(&Request::IngestBatch { base_us, items }.encode())?
        else {
            return Err(proto_err("expected IngestAck"));
        };
        let Response::FlushAck { acks } = control.call(&Request::Flush.encode())? else {
            return Err(proto_err("expected FlushAck"));
        };
        fold_acks(&mut ack_checksum, &acks);

        // Queries: closed-loop, round-robin over the query conns. The
        // scope join is the tick barrier.
        let queries = &trace.queries[tick * qpt..(tick + 1) * qpt];
        let block = Instant::now();
        let worker_results: Vec<io::Result<Vec<(usize, u64, LocateOutcome)>>> =
            std::thread::scope(|s| {
                let handles: Vec<_> = query_conns
                    .iter_mut()
                    .enumerate()
                    .map(|(k, conn)| {
                        s.spawn(move || {
                            let mut res = Vec::with_capacity(queries.len() / conns + 1);
                            let mut i = k;
                            while i < queries.len() {
                                let (querier, target, from_cell) = queries[i];
                                let payload = Request::WhereIs {
                                    querier,
                                    target,
                                    from_cell,
                                }
                                .encode();
                                let t0 = Instant::now();
                                let resp = conn.call(&payload)?;
                                let lat = t0.elapsed().as_nanos() as u64;
                                let Response::LocateResult(out) = resp else {
                                    return Err(proto_err("expected LocateResult"));
                                };
                                res.push((i, lat, out));
                                i += conns;
                            }
                            Ok(res)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .unwrap_or_else(|_| Err(proto_err("query worker panicked")))
                    })
                    .collect()
            });
        query_secs += block.elapsed().as_secs_f64();
        for r in worker_results {
            for (i, lat, out) in r? {
                latencies_ns[tick * qpt + i] = lat;
                outcomes[i] = Some(out);
            }
        }
        // Re-fold in global trace order — connection interleaving must
        // not be visible in the checksum.
        for slot in outcomes.iter_mut() {
            let Some(out) = slot.take() else {
                return Err(proto_err("missing query result"));
            };
            match out {
                LocateOutcome::Found {
                    cell,
                    path,
                    distance,
                } => {
                    found += 1;
                    fold(&mut checksum, 0, u64::from(cell), distance.to_bits(), &path);
                }
                other => fold(&mut checksum, 1 + other_code(&other), 0, 0, &[]),
            }
        }
    }
    let total_secs = start.elapsed().as_secs_f64();
    drop(query_conns);
    if send_shutdown {
        let Response::ShutdownAck = control.call(&Request::Shutdown.encode())? else {
            return Err(proto_err("expected ShutdownAck"));
        };
    }
    Ok(ModeResult {
        query_secs,
        total_secs,
        latencies_ns,
        checksum,
        ack_checksum,
        found,
    })
}

/// Stable discriminant for non-Found [`WhereIs`] outcomes.
pub fn where_code(out: &WhereIs) -> u64 {
    match out {
        WhereIs::Found { .. } => 0,
        WhereIs::NotLoggedIn => 1,
        WhereIs::OutOfCoverage => 2,
        WhereIs::NoSuchUser => 3,
        WhereIs::Denied => 4,
        WhereIs::QuerierNotLoggedIn => 5,
        WhereIs::BadQuery(_) => 6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let w = Workload::tiny();
        let a = generate_trace(&w);
        let b = generate_trace(&w);
        assert_eq!(a.moves, b.moves);
        assert_eq!(a.queries, b.queries);
        assert_eq!(a.initial, b.initial);
        assert_eq!(a.queries.len() as u64, w.queries());
    }

    #[test]
    fn fold_acks_depends_on_order_and_length() {
        let mut a = CHECKSUM_INIT;
        let mut b = CHECKSUM_INIT;
        fold_acks(&mut a, &[true, false]);
        fold_acks(&mut b, &[false, true]);
        assert_ne!(a, b);
        let mut c = CHECKSUM_INIT;
        fold_acks(&mut c, &[true]);
        fold_acks(&mut c, &[false]);
        assert_ne!(a, c, "batch boundaries are part of the fold");
    }

    #[test]
    fn mix_presets_shape_the_workload() {
        for mix in Mix::ALL {
            let w = Workload::smoke().with_mix(mix);
            assert_eq!(w.queries_per_tick, mix.queries_per_tick());
            assert_eq!(w.updates_per_tick, mix.updates_per_tick());
            let trace = generate_trace(&w);
            assert_eq!(trace.queries.len(), w.ticks * mix.queries_per_tick());
            assert_eq!(trace.moves.len(), w.ticks * mix.updates_per_tick());
            assert_eq!(Mix::parse(mix.name()), Some(mix), "{}", mix.name());
        }
        // The default mix keeps bare names; others suffix them.
        assert_eq!(Workload::smoke().with_mix(Mix::Q80U20).name, "smoke");
        assert_eq!(Workload::full().with_mix(Mix::Q50U50).name, "full_50_50");
        assert_eq!(Workload::smoke().with_mix(Mix::Q99U1).name, "smoke_99_1");
        assert_eq!(Workload::tiny().with_mix(Mix::Q50U50).name, "tiny_50_50");
        assert_eq!(Mix::parse("70:30"), None);
    }

    #[test]
    fn read_paths_are_bit_identical_across_mixes() {
        for mix in Mix::ALL {
            let w = Workload::tiny().with_mix(mix);
            let trace = generate_trace(&w);
            let (seq, _) = run_sharded_with(&w, &trace, 1, ReadPath::Seqlock);
            let (locked, _) = run_sharded_with(&w, &trace, 4, ReadPath::Locked);
            assert_eq!(seq.checksum, locked.checksum, "{} answers diverged", w.name);
            assert_eq!(
                seq.ack_checksum, locked.ack_checksum,
                "{} acks diverged",
                w.name
            );
            assert_eq!(seq.found, locked.found);
        }
    }

    #[test]
    fn contended_run_covers_the_schedule_on_both_paths() {
        let w = Workload::tiny();
        let trace = generate_trace(&w);
        for read_path in [ReadPath::Seqlock, ReadPath::Locked] {
            let r = run_contended(&w, &trace, 2, 4, 1, read_path, None);
            // Readers loop the schedule until the writer's pass ends,
            // so at least one full schedule is always covered.
            assert!(r.queries >= w.queries(), "{}", read_path.name());
            // Coordinated-omission correction back-fills samples, so
            // the histogram holds at least one sample per query.
            assert!(r.hdr.count() >= r.queries);
            assert!(r.found > 0, "no query ever found anyone");
            assert!(r.slot_publishes > 0, "writer never published");
            assert!(r.wall_secs > 0.0);
            if read_path == ReadPath::Locked {
                assert_eq!(r.read_retries, 0, "locked readers cannot retry");
                assert_eq!(r.retries_per_query(), 0.0);
            }
        }
    }

    #[test]
    fn burst_model_separates_the_read_paths() {
        let w = Workload::tiny().with_mix(Mix::Q50U50);
        let trace = generate_trace(&w);
        let (seq_ref, _) = run_sharded_with(&w, &trace, 1, ReadPath::Seqlock);
        let seq = run_burst_model(
            &w,
            &trace,
            4,
            100_000,
            ReadPath::Seqlock,
            &seq_ref.latency_hdr(),
        );
        let (lck_ref, _) = run_sharded_with(&w, &trace, 1, ReadPath::Locked);
        let lck = run_burst_model(
            &w,
            &trace,
            4,
            100_000,
            ReadPath::Locked,
            &lck_ref.latency_hdr(),
        );
        for m in [&seq, &lck] {
            assert_eq!(m.hdr.count(), 100_000);
            assert!(m.duty > 0.0 && m.duty < 1.0, "duty {}", m.duty);
            assert!(m.hold_ns > 0);
            assert!(m.ingest_secs > 0.0 && m.flush_secs > 0.0);
        }
        // Structural: a seqlock arrival is never delayed beyond its own
        // service distribution; a locked arrival can queue a full hold.
        assert!(seq.hdr.max() <= seq_ref.latency_hdr().quantile(1.0));
        assert!(
            lck.hdr.quantile(0.9999) >= seq.hdr.quantile(0.9999),
            "locked burst tail {} < seqlock {}",
            lck.hdr.quantile(0.9999),
            seq.hdr.quantile(0.9999)
        );
    }

    #[test]
    fn shard_hdrs_merge_to_overall() {
        let w = Workload::tiny();
        let trace = generate_trace(&w);
        let (r, _) = run_sharded(&w, &trace, 1);
        let shards = shard_latency_hdrs(&w, &trace, &r);
        assert_eq!(shards.len(), w.shards);
        let merged = merge_shard_hdrs(&shards);
        assert_eq!(merged.count(), r.latencies_ns.len() as u64);
        assert_eq!(merged.count(), r.latency_hdr().count());
        assert_eq!(merged.min(), r.latency_hdr().min());
        assert_eq!(merged.max(), r.latency_hdr().max());
    }
}
