//! Experiment S5 — the §4.2/§5 sizing arguments.
//!
//! Two computations close the paper:
//!
//! * **S5-a**: with 20 slaves and random train alignment, a single
//!   inquiry slot of **3.84 s** (one full 2.56 s train + 1.28 s of the
//!   other) discovers **≈95 %** of the slaves. We sweep the inquiry-slot
//!   length and report the discovered fraction, reproducing the curve
//!   the paper reasons along (2.56 s → ~50 % + …, 3.84 s → ~95 %).
//! * **S5-b**: a walker crossing a 20 m cell at the paper's speeds dwells
//!   ≈15.4 s, so with a 3.84 s inquiry slot per 15.4 s cycle the
//!   tracking load is ≈24 %.

use bips_mobility::dwell;
use bt_baseband::params::{
    DutyCycle, MediumConfig, ScanFreqModel, ScanPattern, StartFreq, TrainPolicy,
};
use bt_baseband::{BdAddr, DiscoveryScenario, MasterConfig, SlaveConfig};
use desim::{SimDuration, SimRng};

/// Configuration of the inquiry-slot sweep (S5-a).
#[derive(Debug, Clone)]
pub struct DutySweepConfig {
    /// Inquiry-slot lengths to evaluate, seconds.
    pub inquiry_slots_s: Vec<f64>,
    /// Number of slaves in coverage (paper: 20).
    pub slaves: usize,
    /// Replications per slot length.
    pub replications: u64,
    /// Master seed.
    pub seed: u64,
    /// Replication workers (`0` = `BIPS_JOBS` / machine width). Results
    /// are bit-identical for every value (`desim::par`).
    pub jobs: usize,
}

impl Default for DutySweepConfig {
    fn default() -> Self {
        DutySweepConfig {
            inquiry_slots_s: vec![1.0, 1.28, 2.0, 2.56, 3.0, 3.84, 5.12, 7.68],
            slaves: 20,
            replications: 200,
            seed: 384,
            jobs: 0,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct DutyPoint {
    /// Inquiry slot length, seconds.
    pub inquiry_s: f64,
    /// Mean fraction of slaves discovered within the slot.
    pub discovered: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct DutySweepResult {
    /// One point per slot length.
    pub points: Vec<DutyPoint>,
}

/// The single-slot discovery scenario: one uninterrupted inquiry phase of
/// the given length, slaves with random train alignment (spec scanning on
/// the shared sequence), measured at the end of the slot.
pub fn scenario(inquiry_s: f64, slaves: usize) -> DiscoveryScenario {
    let horizon = SimDuration::from_secs_f64(inquiry_s);
    // One phase only: period = horizon so the slot fills the run.
    let master = MasterConfig::new(BdAddr::new(0xA0_0000))
        .duty(DutyCycle::always_inquiry())
        .trains(TrainPolicy::spec());
    let slave_cfgs: Vec<SlaveConfig> = (0..slaves)
        .map(|i| {
            SlaveConfig::new(BdAddr::new(0x10_0000 + i as u64))
                .scan(ScanPattern::continuous_inquiry())
                .start_freq(StartFreq::Random)
                .halt_when_discovered(true)
        })
        .collect();
    let medium = MediumConfig {
        scan_freq_model: ScanFreqModel::SharedSequence,
        ..MediumConfig::default()
    };
    DiscoveryScenario::new(master, slave_cfgs, horizon).medium(medium)
}

/// Runs the S5-a sweep.
pub fn run_sweep(cfg: &DutySweepConfig) -> DutySweepResult {
    let points = cfg
        .inquiry_slots_s
        .iter()
        .map(|&inquiry_s| {
            let sc = scenario(inquiry_s, cfg.slaves);
            // Common random numbers across sweep points: the same trial
            // population is observed at every slot length, so the sweep
            // is monotone by construction and point-to-point differences
            // reflect the slot length, not the seed draw.
            let outs = sc.run_replications_jobs(cfg.seed, cfg.replications, cfg.jobs);
            let frac: f64 = outs
                .iter()
                .map(|o| o.fraction_discovered_by(SimDuration::from_secs_f64(inquiry_s)))
                .sum::<f64>()
                / outs.len() as f64;
            DutyPoint {
                inquiry_s,
                discovered: frac,
            }
        })
        .collect();
    DutySweepResult { points }
}

impl DutySweepResult {
    /// The discovered fraction at the sweep point closest to `s` seconds.
    pub fn at(&self, s: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| (a.inquiry_s - s).abs().total_cmp(&(b.inquiry_s - s).abs()))
            .map(|p| p.discovered)
            .unwrap_or(0.0)
    }

    /// Renders the sweep table.
    pub fn render(&self, slaves: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "S5-a — slaves discovered within a single inquiry slot ({slaves} slaves, random trains)"
        );
        let _ = writeln!(out, "{:>12} {:>12}", "slot (s)", "discovered");
        for p in &self.points {
            let marker = if (p.inquiry_s - 3.84).abs() < 1e-9 {
                "  ← paper: ≈95%"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:>12.2} {:>12}{}",
                p.inquiry_s,
                crate::pct(p.discovered),
                marker
            );
        }
        out
    }
}

/// The S5-b dwell-time and load computation.
#[derive(Debug, Clone, Copy)]
pub struct DwellResult {
    /// The paper's diameter/mean-speed estimate (≈15.38 s).
    pub paper_estimate_s: f64,
    /// Monte-Carlo mean over random chords and speeds.
    pub monte_carlo_s: f64,
    /// Tracking load with a 3.84 s inquiry slot per paper cycle.
    pub tracking_load: f64,
}

/// Runs the S5-b computation.
pub fn run_dwell(seed: u64) -> DwellResult {
    let paper = dwell::paper_estimate_secs();
    let mut rng = SimRng::seed_from(seed);
    let mc = dwell::monte_carlo_dwell_secs(
        10.0,
        dwell::SPEED_RANGE_M_S,
        dwell::DEFAULT_WALKING_FLOOR_M_S,
        50_000,
        &mut rng,
    );
    DwellResult {
        paper_estimate_s: paper,
        monte_carlo_s: mc,
        tracking_load: dwell::tracking_load(3.84, paper),
    }
}

impl DwellResult {
    /// Renders the dwell/load summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "S5-b — cell dwell time and tracking load");
        let _ = writeln!(
            out,
            "  paper estimate (20 m / 1.3 m/s):    {:6.2} s   (paper: 15.4 s)",
            self.paper_estimate_s
        );
        let _ = writeln!(
            out,
            "  Monte-Carlo (chords × speeds):      {:6.2} s",
            self.monte_carlo_s
        );
        let _ = writeln!(
            out,
            "  tracking load (3.84 s / cycle):     {:6.1}%   (paper: ≈24%)",
            self.tracking_load * 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_monotone_and_hits_95_at_3_84() {
        let r = run_sweep(&DutySweepConfig {
            inquiry_slots_s: vec![1.28, 2.56, 3.84, 5.12],
            slaves: 20,
            replications: 60,
            seed: 1,
            jobs: 0,
        });
        for w in r.points.windows(2) {
            assert!(
                w[1].discovered >= w[0].discovered - 0.03,
                "sweep not monotone: {:?}",
                w
            );
        }
        let at_384 = r.at(3.84);
        assert!(
            (0.85..=1.0).contains(&at_384),
            "3.84 s slot discovered {at_384}, paper says ≈95%"
        );
        // One train (2.56 s) covers only the same-train half well.
        let at_256 = r.at(2.56);
        assert!(at_256 < at_384, "{at_256} !< {at_384}");
    }

    #[test]
    fn dwell_numbers_match_paper() {
        let d = run_dwell(7);
        assert!((d.paper_estimate_s - 15.38).abs() < 0.01);
        assert!((0.2..0.3).contains(&d.tracking_load));
        // Chord-aware Monte Carlo is below the diameter estimate but the
        // same order of magnitude.
        assert!(d.monte_carlo_s > 5.0 && d.monte_carlo_s < 40.0);
    }

    #[test]
    fn render_mentions_paper_anchors() {
        let r = run_sweep(&DutySweepConfig {
            inquiry_slots_s: vec![3.84],
            slaves: 5,
            replications: 5,
            seed: 2,
            jobs: 0,
        });
        assert!(r.render(5).contains("95%"));
        assert!(run_dwell(1).render().contains("15.4 s"));
    }
}

/// The §5 trade-off the paper leaves implicit: a longer inquiry slot per
/// operational cycle detects room changes faster (and misses fewer short
/// visits) but burns more of the master's cycle. This experiment runs the
/// *full system* at several inquiry slots inside the paper's 15.4 s
/// cycle and reports detection latency vs. tracking load.
#[derive(Debug, Clone)]
pub struct TradeoffConfig {
    /// Inquiry slot lengths to evaluate, seconds (within the 15.4 s cycle).
    pub inquiry_slots_s: Vec<f64>,
    /// Walking users.
    pub users: usize,
    /// Virtual run length per point.
    pub duration_s: u64,
    /// Master seed.
    pub seed: u64,
    /// Sweep-point workers (`0` = `BIPS_JOBS` / machine width). Points
    /// are independent engines, so order and results are unaffected.
    pub jobs: usize,
}

impl Default for TradeoffConfig {
    fn default() -> Self {
        TradeoffConfig {
            inquiry_slots_s: vec![1.28, 2.56, 3.84, 7.68],
            users: 4,
            duration_s: 900,
            seed: 1540,
            jobs: 0,
        }
    }
}

/// One trade-off point.
#[derive(Debug, Clone, Copy)]
pub struct TradeoffPoint {
    /// Inquiry slot, seconds.
    pub inquiry_s: f64,
    /// Tracking load (inquiry fraction of the cycle).
    pub load: f64,
    /// Mean enter-cell → DB-presence latency, seconds.
    pub detection_latency_s: f64,
    /// Latency sample count.
    pub samples: u64,
    /// Cell visits that ended before the server noticed.
    pub missed: u64,
}

/// Runs the trade-off sweep on the full system.
pub fn run_tradeoff(cfg: &TradeoffConfig) -> Vec<TradeoffPoint> {
    use bips_core::system::{BipsSystem, SystemConfig, UserSpec};
    use bips_mobility::walker::WalkMode;
    use desim::SimTime;

    let jobs = desim::par::resolve_jobs(cfg.jobs);
    desim::par::run_indexed(cfg.inquiry_slots_s.len() as u64, jobs, |idx| {
        let inquiry_s = cfg.inquiry_slots_s[idx as usize];
        {
            let cycle = 15.4;
            let sys_cfg = SystemConfig {
                duty: DutyCycle::periodic(
                    SimDuration::from_secs_f64(inquiry_s),
                    SimDuration::from_secs_f64(cycle),
                ),
                ..SystemConfig::default()
            };
            let mut builder = BipsSystem::builder(sys_cfg);
            for i in 0..cfg.users {
                builder = builder.user(UserSpec::new(format!("u{i}"), i % 9).mode(
                    WalkMode::RandomWalk {
                        pause: (SimDuration::from_secs(10), SimDuration::from_secs(40)),
                    },
                ));
            }
            let mut engine = builder.into_engine(cfg.seed);
            engine.run_until(SimTime::ZERO + SimDuration::from_secs(cfg.duration_s));
            let sys = engine.world();
            let lat = sys.detection_latency();
            TradeoffPoint {
                inquiry_s,
                load: inquiry_s / cycle,
                detection_latency_s: lat.mean(),
                samples: lat.len(),
                missed: sys.stats().missed_detections,
            }
        }
    })
}

/// Renders the trade-off table.
pub fn render_tradeoff(points: &[TradeoffPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "S5-c — detection latency vs tracking load (full system, 15.4 s cycle)"
    );
    let _ = writeln!(
        out,
        "{:>10} {:>8} {:>16} {:>9} {:>8}",
        "slot (s)", "load", "latency (s)", "samples", "missed"
    );
    for p in points {
        let marker = if (p.inquiry_s - 3.84).abs() < 1e-9 {
            "  ← paper's operating point"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "{:>10.2} {:>8} {:>16.2} {:>9} {:>8}{}",
            p.inquiry_s,
            crate::pct(p.load),
            p.detection_latency_s,
            p.samples,
            p.missed,
            marker
        );
    }
    out
}

#[cfg(test)]
mod tradeoff_tests {
    use super::*;

    #[test]
    fn longer_inquiry_detects_faster_or_equal() {
        let pts = run_tradeoff(&TradeoffConfig {
            inquiry_slots_s: vec![1.28, 7.68],
            users: 3,
            duration_s: 500,
            seed: 3,
            jobs: 0,
        });
        assert_eq!(pts.len(), 2);
        assert!(
            pts[0].samples > 0 && pts[1].samples > 0,
            "no detections sampled"
        );
        // 7.68 s of inquiry per cycle must not be slower to detect than
        // 1.28 s (allow small noise).
        assert!(
            pts[1].detection_latency_s <= pts[0].detection_latency_s + 2.0,
            "latency did not improve: {:?}",
            pts
        );
        assert!(pts[0].load < pts[1].load);
    }
}
