//! Experiment F2 — the Figure 2 discovery-probability curves.
//!
//! Setup (paper §4.2): one master alternating 1 s of inquiry (train A
//! only) with 4 s of connection management; N ∈ {2,4,6,8,10,15,20}
//! slaves continuously in inquiry scan, starting on train A frequencies;
//! FHS response collisions enabled (the paper's BlueHoc extension);
//! discovered slaves proceed to enrollment and stop answering. The curve
//! is `P(discovered ≤ t)` for t ∈ [0, 14] s.
//!
//! Paper's headline readings: with ≤10 slaves ≈90 % are discovered in
//! the first 1 s phase and 100 % by the second cycle; 15–20 slaves are
//! all discovered within two cycles.

use bt_baseband::hop::Train;
use bt_baseband::params::{
    DutyCycle, MediumConfig, ScanFreqModel, ScanPattern, StartFreq, StartTrain, TrainPolicy,
};
use bt_baseband::{BdAddr, DiscoveryScenario, MasterConfig, SlaveConfig};
use desim::stats::EmpiricalCdf;
use desim::SimDuration;

/// Configuration of the Figure 2 reproduction.
#[derive(Debug, Clone)]
pub struct Figure2Config {
    /// The slave-count series (paper: 2, 4, 6, 8, 10, 15, 20).
    pub slave_counts: Vec<usize>,
    /// Replications per slave count.
    pub replications: u64,
    /// Measurement horizon (paper plots to 14 s).
    pub horizon: SimDuration,
    /// Inquiry phase length (paper: 1 s).
    pub inquiry: SimDuration,
    /// Full cycle (paper: 5 s).
    pub period: SimDuration,
    /// Grid points on the time axis.
    pub grid_points: usize,
    /// Whether FHS collisions destroy responses (paper: yes; disable for
    /// the vanilla-BlueHoc ablation).
    pub collisions: bool,
    /// Master seed. Per-curve seeds are `SeedDeriver` streams keyed by
    /// the slave count, so no two curves share or correlate replication
    /// streams.
    pub seed: u64,
    /// Replication workers (`0` = `BIPS_JOBS` / machine width). Results
    /// are bit-identical for every value (`desim::par`).
    pub jobs: usize,
}

impl Default for Figure2Config {
    fn default() -> Self {
        Figure2Config {
            slave_counts: vec![2, 4, 6, 8, 10, 15, 20],
            replications: 300,
            horizon: SimDuration::from_secs(14),
            inquiry: SimDuration::from_secs(1),
            period: SimDuration::from_secs(5),
            grid_points: 29, // every 0.5 s over [0, 14]
            collisions: true,
            // Bumped 1966 → 1967 when per-curve seeds moved from the
            // correlated `seed ^ (n << 32)` scheme onto `SeedDeriver`
            // streams (reference outputs re-baselined; CHANGELOG 0.3.0).
            seed: 1967,
            jobs: 0,
        }
    }
}

/// One curve of the figure.
#[derive(Debug, Clone)]
pub struct Figure2Curve {
    /// Number of slaves.
    pub slaves: usize,
    /// `(t seconds, P(discovered ≤ t))` points.
    pub points: Vec<(f64, f64)>,
}

impl Figure2Curve {
    /// The probability at the grid point closest to `t` seconds.
    pub fn probability_at(&self, t: f64) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| (a.0 - t).abs().total_cmp(&(b.0 - t).abs()))
            .map(|&(_, p)| p)
            .unwrap_or(0.0)
    }
}

/// The reproduced figure.
#[derive(Debug, Clone)]
pub struct Figure2Result {
    /// One curve per slave count.
    pub curves: Vec<Figure2Curve>,
}

/// The scenario for one slave count (exposed for the Criterion bench and
/// the ablation suite).
pub fn scenario(n: usize, cfg: &Figure2Config) -> DiscoveryScenario {
    let master = MasterConfig::new(BdAddr::new(0xA0_0000))
        .duty(DutyCycle::periodic(cfg.inquiry, cfg.period))
        .trains(TrainPolicy::Single)
        .start_train(StartTrain::Fixed(Train::A));
    let slaves: Vec<SlaveConfig> = (0..n)
        .map(|i| {
            SlaveConfig::new(BdAddr::new(0x10_0000 + i as u64))
                .scan(ScanPattern::continuous_inquiry())
                .start_freq(StartFreq::InTrain(Train::A))
                .halt_when_discovered(true)
        })
        .collect();
    let medium = MediumConfig {
        fhs_collisions: cfg.collisions,
        // BlueHoc models every slave on the shared GIAC-derived scan
        // sequence; collisions among simultaneous responders are the
        // dominant loss (DESIGN.md §5).
        scan_freq_model: ScanFreqModel::SharedSequence,
        ..MediumConfig::default()
    };
    DiscoveryScenario::new(master, slaves, cfg.horizon).medium(medium)
}

/// Runs the full figure.
pub fn run(cfg: &Figure2Config) -> Figure2Result {
    run_with_metrics(cfg).0
}

/// Runs the full figure, also accumulating the medium's counters across
/// every replication of every curve (for the JSON run report).
pub fn run_with_metrics(cfg: &Figure2Config) -> (Figure2Result, desim::MetricSet) {
    let mut metrics = desim::MetricSet::new();
    let horizon = cfg.horizon.as_secs_f64();
    // One independent seed stream per curve, keyed by the slave count.
    // The previous `cfg.seed ^ (n as u64) << 32` scheme bypassed
    // `SeedDeriver`: XORing structured values correlates the replication
    // streams across curves (all curve seeds agreed in their low 32
    // bits), which SeedDeriver's SplitMix64 mixing avoids.
    let curve_seeds = desim::SeedDeriver::new(cfg.seed);
    let curves = cfg
        .slave_counts
        .iter()
        .map(|&n| {
            let sc = scenario(n, cfg);
            let outs = sc.run_replications_with_metrics_jobs(
                curve_seeds.derive(n as u64),
                cfg.replications,
                &mut metrics,
                cfg.jobs,
            );
            let mut cdf = EmpiricalCdf::new();
            for o in &outs {
                for t in &o.times {
                    match t {
                        Some(d) => cdf.push(d.as_secs_f64()),
                        None => cdf.push_censored(),
                    }
                }
            }
            Figure2Curve {
                slaves: n,
                points: cdf.series(0.0, horizon, cfg.grid_points),
            }
        })
        .collect();
    (Figure2Result { curves }, metrics)
}

impl Figure2Result {
    /// Renders the curves as CSV (one column per slave count), matching
    /// the figure's axes.
    pub fn render_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "time_s");
        for c in &self.curves {
            let _ = write!(out, ",{}_slaves", c.slaves);
        }
        let _ = writeln!(out);
        if let Some(first) = self.curves.first() {
            for (i, &(t, _)) in first.points.iter().enumerate() {
                let _ = write!(out, "{t:.2}");
                for c in &self.curves {
                    let _ = write!(out, ",{:.4}", c.points[i].1);
                }
                let _ = writeln!(out);
            }
        }
        out
    }

    /// Renders the paper's headline readings next to ours.
    pub fn render_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Figure 2 — discovery probability (1 s inquiry / 5 s cycle, train A)"
        );
        let _ = writeln!(
            out,
            "{:>7} {:>12} {:>12} {:>12}",
            "slaves", "P(t≤1s)", "P(t≤6s)", "P(t≤14s)"
        );
        for c in &self.curves {
            let _ = writeln!(
                out,
                "{:>7} {:>12} {:>12} {:>12}",
                c.slaves,
                crate::pct(c.probability_at(1.0)),
                crate::pct(c.probability_at(6.0)),
                crate::pct(c.probability_at(14.0)),
            );
        }
        let _ = writeln!(
            out,
            "paper: ≤10 slaves ≈90% within the 1 s phase, 100% by cycle 2;"
        );
        let _ = writeln!(out, "       15–20 slaves all discovered within 2 cycles.");
        out
    }

    /// Builds the structured run report (without metrics — the binary
    /// attaches those). The full curve series rides along as a section,
    /// so the JSON artifact can regenerate the plot.
    pub fn to_report(&self, cfg: &Figure2Config) -> desim::RunReport {
        let mut report = desim::RunReport::new("figure2", cfg.seed);
        report
            .config("replications", cfg.replications)
            .config("horizon_s", cfg.horizon.as_secs_f64())
            .config("inquiry_s", cfg.inquiry.as_secs_f64())
            .config("period_s", cfg.period.as_secs_f64())
            .config("collisions", cfg.collisions)
            .config("jobs", desim::par::resolve_jobs(cfg.jobs) as u64);
        for c in &self.curves {
            let n = c.slaves;
            report
                .artifact(&format!("p_1s.{n}_slaves"), c.probability_at(1.0))
                .artifact(&format!("p_6s.{n}_slaves"), c.probability_at(6.0))
                .artifact(&format!("p_14s.{n}_slaves"), c.probability_at(14.0));
        }
        let mut series = desim::Json::object();
        for c in &self.curves {
            let mut points = Vec::with_capacity(c.points.len());
            for &(t, p) in &c.points {
                points.push(desim::Json::from(vec![t, p]));
            }
            series.set(&format!("{}_slaves", c.slaves), points);
        }
        report.section("series", series);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> Figure2Config {
        Figure2Config {
            slave_counts: vec![2, 10, 20],
            replications: 40,
            ..Figure2Config::default()
        }
    }

    #[test]
    fn curves_are_monotone_cdfs() {
        let r = run(&small_cfg());
        for c in &r.curves {
            for w in c.points.windows(2) {
                assert!(w[1].1 >= w[0].1, "non-monotone at {:?}", w);
            }
            assert!(c.points.iter().all(|&(_, p)| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn shape_matches_paper_readings() {
        let r = run(&small_cfg());
        let by_n = |n: usize| r.curves.iter().find(|c| c.slaves == n).unwrap();
        // Most small-N slaves land in the first phase.
        assert!(by_n(2).probability_at(1.0) > 0.9);
        assert!(by_n(10).probability_at(1.0) > 0.8);
        // 20 slaves lose more to collisions in phase 1 than 10 slaves...
        assert!(by_n(20).probability_at(1.0) <= by_n(10).probability_at(1.0) + 0.02);
        // ...but catch up by the second cycle.
        assert!(by_n(20).probability_at(6.0) > 0.9);
        // The curve is flat during the service phase (1 s → 5 s).
        let c20 = by_n(20);
        let p1 = c20.probability_at(1.5);
        let p4 = c20.probability_at(4.5);
        assert!((p4 - p1).abs() < 0.02, "curve moved during service phase");
    }

    #[test]
    fn disabling_collisions_lifts_the_first_phase() {
        let with = run(&small_cfg());
        let without = run(&Figure2Config {
            collisions: false,
            ..small_cfg()
        });
        let w = with
            .curves
            .iter()
            .find(|c| c.slaves == 20)
            .unwrap()
            .probability_at(1.0);
        let wo = without
            .curves
            .iter()
            .find(|c| c.slaves == 20)
            .unwrap()
            .probability_at(1.0);
        assert!(
            wo > w + 0.02,
            "collision-free should discover more in phase 1: {wo} vs {w}"
        );
    }

    /// The F2 artifact (CSV and SVG alike — both render from the same
    /// curves) is bit-identical whether replications run serially or on
    /// eight workers.
    #[test]
    fn parallel_jobs_are_bit_identical() {
        let cfg = |jobs| Figure2Config {
            jobs,
            ..small_cfg()
        };
        let serial = run(&cfg(1));
        let wide = run(&cfg(8));
        assert_eq!(serial.render_csv(), wide.render_csv());
        assert_eq!(serial.render_svg(), wide.render_svg());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let r = run(&Figure2Config {
            slave_counts: vec![2],
            replications: 5,
            grid_points: 5,
            ..Figure2Config::default()
        });
        let csv = r.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,2_slaves");
        assert_eq!(lines.len(), 6);
    }
}

impl Figure2Result {
    /// Renders the curves as a standalone SVG plot (discovery probability
    /// vs. time), visually comparable with the paper's Figure 2.
    pub fn render_svg(&self) -> String {
        use std::fmt::Write as _;
        const W: f64 = 640.0;
        const H: f64 = 420.0;
        const ML: f64 = 60.0; // margins
        const MR: f64 = 130.0;
        const MT: f64 = 30.0;
        const MB: f64 = 50.0;
        let pw = W - ML - MR;
        let ph = H - MT - MB;
        let t_max = self
            .curves
            .first()
            .and_then(|c| c.points.last())
            .map(|&(t, _)| t)
            .unwrap_or(14.0);
        let x = |t: f64| ML + t / t_max * pw;
        let y = |p: f64| MT + (1.0 - p) * ph;
        let colors = [
            "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2",
        ];
        let mut s = String::new();
        let _ = writeln!(
            s,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}">"#
        );
        let _ = writeln!(s, r#"<rect width="{W}" height="{H}" fill="white"/>"#);
        let _ = writeln!(
            s,
            r#"<text x="{}" y="18" font-family="sans-serif" font-size="13" text-anchor="middle">Discovery probability vs time (1 s inquiry / 5 s cycle)</text>"#,
            ML + pw / 2.0
        );
        // Axes and grid.
        for i in 0..=5 {
            let p = i as f64 / 5.0;
            let yy = y(p);
            let _ = writeln!(
                s,
                r##"<line x1="{ML}" y1="{yy:.1}" x2="{:.1}" y2="{yy:.1}" stroke="#ddd"/>"##,
                ML + pw
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="end">{p:.1}</text>"#,
                ML - 6.0,
                yy + 4.0
            );
        }
        let mut t_tick = 0.0;
        while t_tick <= t_max + 1e-9 {
            let xx = x(t_tick);
            let _ = writeln!(
                s,
                r##"<line x1="{xx:.1}" y1="{MT}" x2="{xx:.1}" y2="{:.1}" stroke="#eee"/>"##,
                MT + ph
            );
            let _ = writeln!(
                s,
                r#"<text x="{xx:.1}" y="{:.1}" font-family="sans-serif" font-size="11" text-anchor="middle">{t_tick:.0}</text>"#,
                MT + ph + 16.0
            );
            t_tick += 2.0;
        }
        let _ = writeln!(
            s,
            r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="12" text-anchor="middle">time (seconds)</text>"#,
            ML + pw / 2.0,
            H - 12.0
        );
        // Curves.
        for (i, c) in self.curves.iter().enumerate() {
            let color = colors[i % colors.len()];
            let mut d = String::new();
            for (j, &(t, p)) in c.points.iter().enumerate() {
                let cmd = if j == 0 { 'M' } else { 'L' };
                let _ = write!(d, "{cmd}{:.1},{:.1} ", x(t), y(p));
            }
            let _ = writeln!(
                s,
                r#"<path d="{d}" fill="none" stroke="{color}" stroke-width="1.8"/>"#
            );
            let ly = MT + 14.0 + 18.0 * i as f64;
            let _ = writeln!(
                s,
                r#"<line x1="{:.1}" y1="{ly:.1}" x2="{:.1}" y2="{ly:.1}" stroke="{color}" stroke-width="1.8"/>"#,
                ML + pw + 10.0,
                ML + pw + 34.0
            );
            let _ = writeln!(
                s,
                r#"<text x="{:.1}" y="{:.1}" font-family="sans-serif" font-size="11">{} slaves</text>"#,
                ML + pw + 40.0,
                ly + 4.0,
                c.slaves
            );
        }
        let _ = writeln!(s, "</svg>");
        s
    }
}

#[cfg(test)]
mod svg_tests {
    use super::*;

    #[test]
    fn svg_contains_all_curves_and_is_well_formed() {
        let r = run(&Figure2Config {
            slave_counts: vec![2, 10],
            replications: 10,
            grid_points: 8,
            ..Figure2Config::default()
        });
        let svg = r.render_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("2 slaves"));
        assert!(svg.contains("10 slaves"));
        assert_eq!(svg.matches("<path").count(), 2);
    }
}
