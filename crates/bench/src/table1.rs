//! Experiment T1 — the §4.1 discovery-time table.
//!
//! Setup (as in the paper): a master permanently in the inquiry state; a
//! single slave alternating inquiry-scan and page-scan windows of
//! 11.25 ms; 500 trials with random clock/scan phases; trials classified
//! by whether master and slave started on the same frequency train.
//!
//! Paper's measurements:
//!
//! | starting train | cases | T_average |
//! |----------------|-------|-----------|
//! | Same           | 236   | 1.6028 s  |
//! | Different      | 264   | 4.1320 s  |
//! | Mixed          | 500   | 2.865 s   |

use bt_baseband::params::ScanPattern;
use bt_baseband::{BdAddr, DiscoveryScenario, MasterConfig, SlaveConfig};
use desim::stats::OnlineStats;
use desim::SimDuration;

/// Configuration of the Table 1 reproduction.
#[derive(Debug, Clone, Copy)]
pub struct Table1Config {
    /// Number of inquiry trials (paper: 500).
    pub trials: u64,
    /// Per-trial horizon; undiscovered trials are reported separately.
    pub horizon: SimDuration,
    /// Master seed for the replication set.
    pub seed: u64,
    /// Replication workers (`0` = `BIPS_JOBS` / machine width). Results
    /// are bit-identical for every value (`desim::par`).
    pub jobs: usize,
}

impl Default for Table1Config {
    fn default() -> Self {
        Table1Config {
            trials: 500,
            horizon: SimDuration::from_secs(60),
            seed: 2003,
            jobs: 0,
        }
    }
}

/// One row of the reproduced table.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row label (`Same` / `Different` / `Mixed`).
    pub class: &'static str,
    /// Trial count in the class.
    pub cases: u64,
    /// Mean discovery time, seconds.
    pub mean_secs: f64,
    /// 95 % confidence half-width.
    pub ci95: f64,
    /// Median, seconds.
    pub median_secs: f64,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// Same / Different / Mixed rows.
    pub rows: Vec<Table1Row>,
    /// Trials not discovered within the horizon (expected 0).
    pub undiscovered: u64,
}

/// The scenario underlying the table (exposed for the Criterion bench).
pub fn scenario(horizon: SimDuration) -> DiscoveryScenario {
    DiscoveryScenario::new(
        MasterConfig::new(BdAddr::new(0xA0_0000)),
        vec![SlaveConfig::new(BdAddr::new(0x10_0000)).scan(ScanPattern::alternating())],
        horizon,
    )
}

/// Runs the experiment.
pub fn run(cfg: &Table1Config) -> Table1Result {
    run_with_metrics(cfg).0
}

/// Runs the experiment, also accumulating the medium's counters across
/// every trial (for the JSON run report; see `docs/OBSERVABILITY.md`).
pub fn run_with_metrics(cfg: &Table1Config) -> (Table1Result, desim::MetricSet) {
    let mut metrics = desim::MetricSet::new();
    let sc = scenario(cfg.horizon);
    let outs = sc.run_replications_with_metrics_jobs(cfg.seed, cfg.trials, &mut metrics, cfg.jobs);

    let mut same = OnlineStats::new();
    let mut diff = OnlineStats::new();
    let mut all = OnlineStats::new();
    let mut same_v = Vec::new();
    let mut diff_v = Vec::new();
    let mut all_v = Vec::new();
    let mut undiscovered = 0;
    for o in &outs {
        match o.times[0] {
            Some(t) => {
                let secs = t.as_secs_f64();
                all.push(secs);
                all_v.push(secs);
                if o.same_train(0) {
                    same.push(secs);
                    same_v.push(secs);
                } else {
                    diff.push(secs);
                    diff_v.push(secs);
                }
            }
            None => undiscovered += 1,
        }
    }

    fn median(v: &mut [f64]) -> f64 {
        if v.is_empty() {
            return f64::NAN;
        }
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    }

    let rows = vec![
        Table1Row {
            class: "Same",
            cases: same.len(),
            mean_secs: same.mean(),
            ci95: same.ci95_halfwidth(),
            median_secs: median(&mut same_v),
        },
        Table1Row {
            class: "Different",
            cases: diff.len(),
            mean_secs: diff.mean(),
            ci95: diff.ci95_halfwidth(),
            median_secs: median(&mut diff_v),
        },
        Table1Row {
            class: "Mixed",
            cases: all.len(),
            mean_secs: all.mean(),
            ci95: all.ci95_halfwidth(),
            median_secs: median(&mut all_v),
        },
    ];
    (Table1Result { rows, undiscovered }, metrics)
}

impl Table1Result {
    /// Renders the table next to the paper's numbers.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Table 1 — average device-discovery time by starting train"
        );
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>12} {:>9} {:>10}   {:>12}",
            "Train", "Cases", "T_avg (s)", "±95% (s)", "median (s)", "paper (s)"
        );
        let paper = [1.6028, 4.1320, 2.865];
        for (row, p) in self.rows.iter().zip(paper) {
            let _ = writeln!(
                out,
                "{:<10} {:>6} {:>12.4} {:>9.4} {:>10.4}   {:>12.4}",
                row.class, row.cases, row.mean_secs, row.ci95, row.median_secs, p
            );
        }
        if self.undiscovered > 0 {
            let _ = writeln!(out, "undiscovered within horizon: {}", self.undiscovered);
        }
        out
    }

    /// Builds the structured run report (without metrics — the binary
    /// attaches those).
    pub fn to_report(&self, cfg: &Table1Config) -> desim::RunReport {
        let mut report = desim::RunReport::new("table1", cfg.seed);
        report
            .config("trials", cfg.trials)
            .config("horizon_s", cfg.horizon.as_secs_f64())
            .config("jobs", desim::par::resolve_jobs(cfg.jobs) as u64);
        let paper = [1.6028, 4.1320, 2.865];
        for (row, paper_s) in self.rows.iter().zip(paper) {
            let key = row.class.to_ascii_lowercase();
            report
                .artifact(&format!("{key}.cases"), row.cases)
                .artifact(&format!("{key}.mean_secs"), row.mean_secs)
                .artifact(&format!("{key}.ci95_secs"), row.ci95)
                .artifact(&format!("{key}.median_secs"), row.median_secs)
                .artifact(&format!("{key}.paper_secs"), paper_s);
        }
        report.artifact("undiscovered", self.undiscovered);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_reproduces_the_ordering() {
        let r = run(&Table1Config {
            trials: 80,
            horizon: SimDuration::from_secs(45),
            seed: 9,
            ..Table1Config::default()
        });
        assert_eq!(r.undiscovered, 0);
        let same = &r.rows[0];
        let diff = &r.rows[1];
        let mixed = &r.rows[2];
        assert_eq!(same.cases + diff.cases, mixed.cases);
        // The load-bearing shape: different-train costs roughly one extra
        // 2.56 s train repetition.
        let delta = diff.mean_secs - same.mean_secs;
        assert!(
            (1.5..4.5).contains(&delta),
            "train-switch penalty off: {delta}"
        );
        assert!(mixed.mean_secs > same.mean_secs && mixed.mean_secs < diff.mean_secs);
    }

    #[test]
    fn near_even_class_split() {
        let r = run(&Table1Config {
            trials: 200,
            horizon: SimDuration::from_secs(45),
            seed: 10,
            ..Table1Config::default()
        });
        let same = r.rows[0].cases as f64;
        let frac = same / 200.0;
        assert!((0.35..0.65).contains(&frac), "split {frac}");
    }

    /// The T1 artifact is bit-identical whether replications run
    /// serially or on eight workers (and with the skip-ahead scheduler,
    /// which is on by default, in the loop).
    #[test]
    fn parallel_jobs_are_bit_identical() {
        let cfg = |jobs| Table1Config {
            trials: 40,
            horizon: SimDuration::from_secs(45),
            seed: 2003,
            jobs,
        };
        let serial = run(&cfg(1));
        let wide = run(&cfg(8));
        assert_eq!(serial.render(), wide.render());
    }

    #[test]
    fn render_contains_rows() {
        let r = run(&Table1Config {
            trials: 10,
            horizon: SimDuration::from_secs(45),
            seed: 1,
            ..Table1Config::default()
        });
        let s = r.render();
        assert!(s.contains("Same"));
        assert!(s.contains("Different"));
        assert!(s.contains("Mixed"));
    }
}
