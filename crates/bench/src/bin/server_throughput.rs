//! Serving-path load bench: seed server vs. sharded engine vs. sharded
//! engine with tracing.
//!
//! The workload driver lives in [`bips_bench::loadgen`]; this binary is
//! the CLI, the report writer, and the regression gate. Each workload
//! runs three modes:
//!
//! * **baseline** — the seed [`BipsServer`](bips_core::BipsServer);
//! * **sharded** — [`ShardedService`](bips_core::service::ShardedService),
//!   tracing off;
//! * **traced** — the same engine with a per-shard trace ring attached
//!   and a fresh span per query, under a flight-recorder panic guard
//!   (dumps land in `target/flight-recorder/`).
//!
//! All three checksums must match exactly, and the sharded and traced
//! ack checksums must match — the bench refuses to report numbers over
//! diverging answers, which is the standing proof that tracing is
//! non-perturbing.
//!
//! Usage:
//!   cargo run -p bips-bench --bin server_throughput --release -- \
//!       [--smoke] [--json PATH] [--check FILE] [--jobs N] [--mix Q:U]
//!
//! `--mix Q:U` re-tunes every workload to a query:update preset
//! (`80:20` default, `50:50`, `99:1`); non-default mixes suffix the
//! section names (`smoke` → `smoke_50_50`) so baselines never collide.
//! `--json PATH` writes a `bips-run-report/v1` document (see
//! `docs/OBSERVABILITY.md`) with a section per workload, including HDR
//! latency quantiles (p50/p99/p999/p9999, relative error < 1.5625%)
//! and a per-shard breakdown that `bips-top` renders. `--check FILE`
//! gates sharded *and* traced queries/sec against a committed baseline
//! (>20% regression fails) and, when the baseline section carries a
//! sharded `p999_us`, the sharded tail too (>20% above baseline plus a
//! 5 µs jitter floor fails — that is the mixed-workload gate against
//! `BENCH_PR8.json`). A same-run tracing-overhead circuit breaker
//! rounds it out: traced/untraced throughput ≥ 0.70 whenever the
//! untraced query phase ran long enough to measure (quiet-machine
//! overhead is 15–25%; the 30% budget catches structural regressions
//! such as an allocation sneaking onto the record path without flaking
//! on noise).

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use std::path::Path;
use std::sync::Arc;

use bips_bench::loadgen::{
    generate_trace, merge_shard_hdrs, run_baseline, run_sharded, run_sharded_traced,
    shard_latency_hdrs, Mix, ModeResult, Trace, Workload,
};
use bips_bench::telemetry::{take_flag, take_jobs};
use desim::metrics::MetricSet;
use desim::report::{hdr_json, Json, RunReport};
use desim::tracing::{FlightRecorder, Tracer};

/// Events per shard ring: enough to hold the last few ticks' worth of
/// query/ingest activity for a post-mortem window.
const RING_CAPACITY: usize = 4096;

/// Events drained into a flight-recorder dump.
const FLIGHT_LAST_N: usize = 256;

/// Where flight-recorder JSONL artifacts land; CI uploads this
/// directory when a bench job fails.
const FLIGHT_DIR: &str = "target/flight-recorder";

fn mode_json(r: &ModeResult) -> Json {
    let hdr = r.latency_hdr();
    let mut j = Json::object();
    j.set("queries_per_sec", r.queries_per_sec())
        .set("p50_us", r.percentile_us(0.50))
        .set("p99_us", r.percentile_us(0.99))
        .set("p999_us", hdr.quantile(0.999) as f64 / 1000.0)
        .set("latency_hdr_ns", hdr_json(&hdr))
        .set("query_secs", r.query_secs)
        .set("total_secs", r.total_secs)
        .set("found", r.found)
        .set("checksum", format!("{:016x}", r.checksum))
        .set("ack_checksum", format!("{:016x}", r.ack_checksum));
    j
}

fn shards_json(
    w: &Workload,
    trace: &Trace,
    traced: &ModeResult,
    tracer: &Tracer,
    metrics: &MetricSet,
) -> Json {
    let hdrs = shard_latency_hdrs(w, trace, traced);
    let mut rows = Vec::with_capacity(hdrs.len());
    for (i, h) in hdrs.iter().enumerate() {
        let mut row = Json::object();
        row.set("shard", i as u64)
            .set("queries", h.count())
            .set(
                "queries_per_sec",
                h.count() as f64 / traced.query_secs.max(1e-9),
            )
            .set("p50_us", h.quantile(0.50) as f64 / 1000.0)
            .set("p999_us", h.quantile(0.999) as f64 / 1000.0)
            .set(
                "read_retries",
                metrics
                    .counter_value(&format!("core.service.shard{i}.read_retries"))
                    .unwrap_or(0),
            );
        if let Some(ring) = tracer.ring(i) {
            row.set("ring_recorded", ring.recorded())
                .set("ring_occupancy", ring.occupancy());
        }
        rows.push(row);
    }
    Json::Arr(rows)
}

#[allow(clippy::too_many_arguments)]
fn section_json(
    w: &Workload,
    mix: Mix,
    trace: &Trace,
    baseline: &ModeResult,
    sharded: &ModeResult,
    traced: &ModeResult,
    tracer: &Tracer,
    traced_metrics: &MetricSet,
) -> Json {
    let mut config = Json::object();
    config
        .set("users", w.users)
        .set("cells", w.cells())
        .set("mix", mix.name())
        .set("updates_per_tick", w.updates_per_tick)
        .set("queries_per_tick", w.queries_per_tick)
        .set("ticks", w.ticks)
        .set("querier_pool", w.pool)
        .set("shards", w.shards)
        .set("ring_capacity", RING_CAPACITY)
        .set("seed", w.seed);
    let mut speedup = Json::object();
    speedup
        .set(
            "queries_per_sec",
            sharded.queries_per_sec() / baseline.queries_per_sec(),
        )
        .set(
            "tracing_overhead",
            traced.queries_per_sec() / sharded.queries_per_sec(),
        );
    let mut tracing = Json::object();
    tracing
        .set("recorded", tracer.recorded())
        .set("dropped", tracer.dropped());
    let mut j = Json::object();
    j.set("config", config)
        .set("baseline", mode_json(baseline))
        .set("sharded", mode_json(sharded))
        .set("traced", mode_json(traced))
        .set("speedup", speedup)
        .set("tracing", tracing)
        .set(
            "shards",
            shards_json(w, trace, traced, tracer, traced_metrics),
        );
    j
}

/// Extracts `"key": <number>` below `section` — same flat textual
/// extraction as `perf_baseline` (the schema is documented, no JSON
/// parser needed).
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

struct SectionResult {
    workload: Workload,
    sharded: ModeResult,
    traced: ModeResult,
}

fn check_against(baseline_json: &str, sections: &[SectionResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for s in sections {
        let name = s.workload.name;
        for (mode, r) in [("sharded", &s.sharded), ("traced", &s.traced)] {
            let Some(base_qps) = lookup(baseline_json, name, &[mode, "queries_per_sec"]) else {
                continue; // baseline lacks this mode — nothing to gate on
            };
            let qps = r.queries_per_sec();
            if qps < base_qps * 0.8 {
                violations.push(format!(
                    "{name}: {mode} throughput {qps:.0} q/s, >20% below baseline {base_qps:.0}"
                ));
            }
        }
        // Tail gate: only when the baseline records a sharded p999
        // (BENCH_PR8.json does; the older throughput baselines do
        // not). 20% over baseline plus a 5 µs jitter floor fails —
        // the floor keeps sub-10 µs tails from flaking on a single
        // scheduler hiccup while still catching a seqlock regression,
        // which costs hundreds of µs at the tail.
        if let Some(base_p999) = lookup(baseline_json, name, &["sharded", "p999_us"]) {
            let p999 = s.sharded.latency_hdr().quantile(0.999) as f64 / 1000.0;
            if p999 > base_p999 * 1.2 + 5.0 {
                violations.push(format!(
                    "{name}: sharded p999 {p999:.2} us, >20% above baseline {base_p999:.2} us"
                ));
            }
        }
        // Same-run overhead circuit breaker: tracing runs 15–25%
        // behind the untraced engine on a quiet machine, so the budget
        // is 30% — wide enough to absorb scheduler noise, narrow
        // enough to catch a structural regression (an allocation or a
        // lock sneaking onto the record path costs far more than 30%).
        // A ratio of two sub-0.2 s measurements is noise, not a gate —
        // workloads with a shorter untraced query phase (the CI smoke)
        // are covered by the committed `traced` qps gate above instead.
        if s.sharded.query_secs < 0.2 {
            continue;
        }
        let overhead = s.traced.queries_per_sec() / s.sharded.queries_per_sec();
        if overhead < 0.7 {
            violations.push(format!(
                "{name}: tracing costs {:.0}% throughput (traced/sharded = {overhead:.2}, budget 0.70)",
                (1.0 - overhead) * 100.0
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let (args, mix_arg) = take_flag(args, "--mix");
    let (args, jobs) = take_jobs(args);
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let mix = match &mix_arg {
        Some(s) => Mix::parse(s).unwrap_or_else(|| {
            eprintln!("--mix must be one of 80:20, 50:50, 99:1 (got {s})");
            std::process::exit(2);
        }),
        None => Mix::default(),
    };

    let workloads = if smoke_only {
        vec![Workload::smoke().with_mix(mix)]
    } else {
        vec![
            Workload::full().with_mix(mix),
            Workload::smoke().with_mix(mix),
        ]
    };

    let mut report = RunReport::new("server_throughput", workloads[0].seed);
    report.config("jobs", jobs as u64);
    report.artifact("flight_recorder_dir", FLIGHT_DIR);
    let mut results: Vec<SectionResult> = Vec::new();
    let mut total_dumps = 0u64;
    for w in workloads {
        eprintln!(
            "[{}] {} users, {} cells, {} ticks x ({} moves + {} queries) ...",
            w.name,
            w.users,
            w.cells(),
            w.ticks,
            w.updates_per_tick,
            w.queries_per_tick
        );
        let trace = generate_trace(&w);
        let baseline = run_baseline(&w, &trace);
        let (sharded, _metrics) = run_sharded(&w, &trace, jobs);
        let tracer = Arc::new(Tracer::new(w.shards, RING_CAPACITY));
        let recorder =
            FlightRecorder::new(Arc::clone(&tracer), Path::new(FLIGHT_DIR), FLIGHT_LAST_N);
        let (traced, traced_metrics) = {
            let _guard = recorder.guard(w.name);
            run_sharded_traced(&w, &trace, jobs, &tracer, Some(&recorder))
        };
        total_dumps += recorder.dumps();
        assert_eq!(
            baseline.checksum, sharded.checksum,
            "{}: the two serving models answered differently",
            w.name
        );
        assert_eq!(
            sharded.checksum, traced.checksum,
            "{}: tracing perturbed the answers",
            w.name
        );
        assert_eq!(
            sharded.ack_checksum, traced.ack_checksum,
            "{}: tracing perturbed the flush acks",
            w.name
        );
        assert_eq!(baseline.latencies_ns.len() as u64, w.queries());
        println!("== {} ==", w.name);
        for (label, r) in [
            ("baseline", &baseline),
            ("sharded ", &sharded),
            ("traced  ", &traced),
        ] {
            let hdr = r.latency_hdr();
            println!(
                "  {label}: {:>10.0} q/s  p50 {:>7.2} us  p99 {:>7.2} us  p999 {:>8.2} us  ({:.2} s queries, {:.2} s total)",
                r.queries_per_sec(),
                r.percentile_us(0.50),
                r.percentile_us(0.99),
                hdr.quantile(0.999) as f64 / 1000.0,
                r.query_secs,
                r.total_secs,
            );
        }
        println!(
            "  speedup: {:.2}x queries/sec, tracing overhead {:.1}%  (checksum {:016x}, {} found, {} events)",
            sharded.queries_per_sec() / baseline.queries_per_sec(),
            (1.0 - traced.queries_per_sec() / sharded.queries_per_sec()) * 100.0,
            traced.checksum,
            traced.found,
            tracer.recorded(),
        );
        report.section(
            w.name,
            section_json(
                &w,
                mix,
                &trace,
                &baseline,
                &sharded,
                &traced,
                &tracer,
                &traced_metrics,
            ),
        );
        if w.name == "full" {
            report.metrics(&traced_metrics);
        }
        // Overall HDR for the section, merged shard-by-shard in index
        // order — the same deterministic merge the proptests pin down.
        let merged = merge_shard_hdrs(&shard_latency_hdrs(&w, &trace, &traced));
        report.artifact(
            &format!("{}_traced_latency_hdr_ns", w.name),
            hdr_json(&merged),
        );
        results.push(SectionResult {
            workload: w,
            sharded,
            traced,
        });
    }
    report.artifact("flight_recorder_dumps", total_dumps);

    if let Some(path) = &json_path {
        report.write_json(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let violations = check_against(&baseline, &results);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
