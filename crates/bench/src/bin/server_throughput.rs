//! Serving-path load generator (PR 4): seed server vs. sharded engine.
//!
//! Drives a closed-loop, tick-structured WhereIs workload — a
//! building's worth of users moving between cells while a pool of
//! queriers asks where everyone is — against both serving models:
//!
//! * **baseline** — the seed [`BipsServer`]: string-keyed requests,
//!   hash-map chains, a fresh path vector per answer;
//! * **sharded** — [`ShardedService`]: interned ids, per-shard hot
//!   slots, batched flushes, zero-allocation path queries.
//!
//! Each tick applies a block of update-on-change moves (both modes see
//! them at the tick boundary), then runs a block of queries. The trace
//! is derived deterministically from the seed, every answer is folded
//! into a checksum, and the two modes' checksums must match exactly —
//! the bench refuses to report a speedup over diverging answers.
//!
//! Usage:
//!   cargo run -p bips-bench --bin server_throughput --release -- \
//!       [--smoke] [--json PATH] [--check FILE] [--jobs N]
//!
//! `--json PATH` writes a `bips-run-report/v1` document (see
//! `docs/OBSERVABILITY.md`) with a section per workload; `--check FILE`
//! gates the smoke section's sharded queries/sec against a committed
//! baseline (>20% regression fails, like `perf_baseline`).

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use bips_bench::telemetry::{take_flag, take_jobs};
use bips_core::graph::WsGraph;
use bips_core::protocol::{LocateOutcome, Request, Response};
use bips_core::registry::{AccessRights, Registry};
use bips_core::service::{ShardedService, WhereIs};
use bips_core::BipsServer;
use bt_baseband::BdAddr;
use desim::metrics::MetricSet;
use desim::report::{Json, RunReport};
use desim::{SeedDeriver, SimTime};

/// One load-bench workload: a population on a square-grid building.
struct Workload {
    name: &'static str,
    users: u64,
    /// Grid side; the building has `side * side` cells.
    side: usize,
    /// Moves applied per tick (each move = present(new) + absent(old)).
    updates_per_tick: usize,
    /// Queries served per tick (4x the updates: an 80:20 mix).
    queries_per_tick: usize,
    ticks: usize,
    /// Queriers are drawn from the first `pool` users — the handful of
    /// receptionists and dispatchers who actually run queries all day.
    pool: u64,
    shards: usize,
    seed: u64,
}

impl Workload {
    fn full() -> Workload {
        Workload {
            name: "full",
            users: 1_000_000,
            side: 16,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 6250, // 1.6M queries + 400k moves = 2M ops, 80:20
            pool: 4096,
            shards: 16,
            seed: 2003,
        }
    }

    fn smoke() -> Workload {
        Workload {
            name: "smoke",
            users: 100_000,
            side: 8,
            updates_per_tick: 64,
            queries_per_tick: 256,
            ticks: 625, // 160k queries + 40k moves = 200k ops
            pool: 1024,
            shards: 8,
            seed: 2003,
        }
    }

    fn cells(&self) -> usize {
        self.side * self.side
    }

    fn queries(&self) -> u64 {
        (self.ticks * self.queries_per_tick) as u64
    }
}

/// A pre-generated, mode-independent trace: per tick, a block of moves
/// and a block of queries.
struct Trace {
    /// `(uid, old_cell, new_cell)` per move, tick-major.
    moves: Vec<(u64, u32, u32)>,
    /// `(querier_uid, target_uid, from_cell)` per query, tick-major.
    queries: Vec<(u64, u64, u32)>,
    /// Initial cell per user.
    initial: Vec<u32>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn generate_trace(w: &Workload) -> Trace {
    let seeds = SeedDeriver::new(w.seed);
    let cells = w.cells() as u64;
    let initial: Vec<u32> = (0..w.users).map(|u| (u % cells) as u32).collect();
    let mut current = initial.clone();

    let mut mv_state = seeds.derive(1);
    let mut moves = Vec::with_capacity(w.ticks * w.updates_per_tick);
    let mut q_state = seeds.derive(2);
    let mut queries = Vec::with_capacity(w.ticks * w.queries_per_tick);
    for _tick in 0..w.ticks {
        for _ in 0..w.updates_per_tick {
            let r = splitmix(&mut mv_state);
            let uid = r % w.users;
            let old = current[uid as usize];
            // Step to a different cell (never a redundant re-announce).
            let new = (u64::from(old) + 1 + (r >> 32) % (cells - 1)) % cells;
            current[uid as usize] = new as u32;
            moves.push((uid, old, new as u32));
        }
        for _ in 0..w.queries_per_tick {
            let r = splitmix(&mut q_state);
            let querier = r % w.pool;
            let target = (r >> 20) % w.users;
            let from_cell = (r >> 52) % cells;
            queries.push((querier, target, from_cell as u32));
        }
    }
    Trace {
        moves,
        queries,
        initial,
    }
}

fn addr(uid: u64) -> BdAddr {
    BdAddr::new(0x1_0000 + uid)
}

/// Folds one answer into the cross-mode checksum (FNV-1a 64).
fn fold(sum: &mut u64, kind: u64, cell: u64, dist_bits: u64, path: &[u32]) {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = *sum;
    for word in [kind, cell, dist_bits, path.len() as u64] {
        h = (h ^ word).wrapping_mul(PRIME);
    }
    for &c in path {
        h = (h ^ u64::from(c)).wrapping_mul(PRIME);
    }
    *sum = h;
}

/// Result of one mode over one workload.
struct ModeResult {
    /// Wall seconds spent inside query blocks only.
    query_secs: f64,
    /// Wall seconds for the whole replay (updates included).
    total_secs: f64,
    /// Per-query latencies, nanoseconds.
    latencies_ns: Vec<u64>,
    checksum: u64,
    found: u64,
}

impl ModeResult {
    fn queries_per_sec(&self) -> f64 {
        self.latencies_ns.len() as f64 / self.query_secs
    }

    fn percentile_us(&self, p: f64) -> f64 {
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
        sorted[idx] as f64 / 1000.0
    }
}

fn grid(side: usize) -> WsGraph {
    let mut g = WsGraph::new(side * side);
    for r in 0..side {
        for c in 0..side {
            let at = r * side + c;
            if c + 1 < side {
                g.add_edge(at, at + 1, 10.0);
            }
            if r + 1 < side {
                g.add_edge(at, at + side, 10.0);
            }
        }
    }
    g
}

fn registry(users: u64) -> Registry {
    let mut reg = Registry::new();
    for i in 0..users {
        reg.register(&format!("user{i}"), "pw", AccessRights::open())
            .unwrap();
    }
    reg
}

/// Replays the trace against the seed server.
fn run_baseline(w: &Workload, trace: &Trace) -> ModeResult {
    let g = grid(w.side);
    let mut server = BipsServer::new(registry(w.users), &g);
    let names: Vec<String> = (0..w.users).map(|i| format!("user{i}")).collect();
    let mut ts: u64 = 0;
    for uid in 0..w.users {
        server
            .registry_mut()
            .login(&names[uid as usize], "pw", addr(uid))
            .expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        server.handle(
            Request::Presence {
                cell: trace.initial[uid as usize],
                addr: addr(uid),
                present: true,
            },
            SimTime::from_micros(ts),
        );
    }

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: new,
                    addr: addr(uid),
                    present: true,
                },
                SimTime::from_micros(ts),
            );
            ts += 1;
            server.handle(
                Request::Presence {
                    cell: old,
                    addr: addr(uid),
                    present: false,
                },
                SimTime::from_micros(ts),
            );
        }
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let resp = server.handle(
                Request::Locate {
                    from: addr(querier),
                    target: names[target as usize].clone(),
                    from_cell,
                },
                SimTime::from_micros(ts),
            );
            let now = Instant::now();
            latencies_ns.push((now - prev).as_nanos() as u64);
            prev = now;
            let Response::LocateResult(out) = resp else {
                panic!("unexpected response");
            };
            match out {
                LocateOutcome::Found {
                    cell,
                    path,
                    distance,
                } => {
                    found += 1;
                    fold(&mut checksum, 0, u64::from(cell), distance.to_bits(), &path);
                }
                other => fold(&mut checksum, 1 + other_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    ModeResult {
        query_secs,
        total_secs: start.elapsed().as_secs_f64(),
        latencies_ns,
        checksum,
        found,
    }
}

fn other_code(out: &LocateOutcome) -> u64 {
    match out {
        LocateOutcome::Found { .. } => 0,
        LocateOutcome::NotLoggedIn => 1,
        LocateOutcome::OutOfCoverage => 2,
        LocateOutcome::NoSuchUser => 3,
        LocateOutcome::Denied => 4,
        LocateOutcome::QuerierNotLoggedIn => 5,
        LocateOutcome::BadQuery(_) => 6,
    }
}

/// Replays the trace against the sharded engine.
fn run_sharded(w: &Workload, trace: &Trace, jobs: usize) -> (ModeResult, MetricSet) {
    let g = grid(w.side);
    let reg = registry(w.users);
    let svc = ShardedService::new(&reg, g.precompute_all_pairs(), w.shards);
    let mut ts: u64 = 0;
    for uid in 0..w.users {
        svc.login(uid, "pw", addr(uid)).expect("setup login");
    }
    for uid in 0..w.users {
        ts += 1;
        svc.ingest(addr(uid), trace.initial[uid as usize], true, ts);
    }
    svc.flush(jobs);

    let mut latencies_ns = Vec::with_capacity(trace.queries.len());
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    let mut found = 0u64;
    let mut query_secs = 0.0;
    let mut path = Vec::new();
    let mut path32 = Vec::new();
    let start = Instant::now();
    for tick in 0..w.ticks {
        for &(uid, old, new) in
            &trace.moves[tick * w.updates_per_tick..(tick + 1) * w.updates_per_tick]
        {
            ts += 1;
            svc.ingest(addr(uid), new, true, ts);
            ts += 1;
            svc.ingest(addr(uid), old, false, ts);
        }
        svc.flush(jobs);
        let block = Instant::now();
        let mut prev = block;
        for &(querier, target, from_cell) in
            &trace.queries[tick * w.queries_per_tick..(tick + 1) * w.queries_per_tick]
        {
            let out = svc.where_is(querier, target, from_cell as usize, &mut path);
            let now = Instant::now();
            latencies_ns.push((now - prev).as_nanos() as u64);
            prev = now;
            match out {
                WhereIs::Found { cell, distance } => {
                    found += 1;
                    path32.clear();
                    path32.extend(path.iter().map(|&n| n as u32));
                    fold(
                        &mut checksum,
                        0,
                        u64::from(cell),
                        distance.to_bits(),
                        &path32,
                    );
                }
                other => fold(&mut checksum, 1 + where_code(&other), 0, 0, &[]),
            }
        }
        query_secs += block.elapsed().as_secs_f64();
    }
    let mut metrics = MetricSet::new();
    svc.export_metrics(&mut metrics);
    (
        ModeResult {
            query_secs,
            total_secs: start.elapsed().as_secs_f64(),
            latencies_ns,
            checksum,
            found,
        },
        metrics,
    )
}

fn where_code(out: &WhereIs) -> u64 {
    match out {
        WhereIs::Found { .. } => 0,
        WhereIs::NotLoggedIn => 1,
        WhereIs::OutOfCoverage => 2,
        WhereIs::NoSuchUser => 3,
        WhereIs::Denied => 4,
        WhereIs::QuerierNotLoggedIn => 5,
        WhereIs::BadQuery(_) => 6,
    }
}

fn mode_json(r: &ModeResult) -> Json {
    let mut j = Json::object();
    j.set("queries_per_sec", r.queries_per_sec())
        .set("p50_us", r.percentile_us(0.50))
        .set("p99_us", r.percentile_us(0.99))
        .set("query_secs", r.query_secs)
        .set("total_secs", r.total_secs)
        .set("found", r.found)
        .set("checksum", format!("{:016x}", r.checksum));
    j
}

fn section_json(w: &Workload, baseline: &ModeResult, sharded: &ModeResult) -> Json {
    let mut config = Json::object();
    config
        .set("users", w.users)
        .set("cells", w.cells())
        .set("updates_per_tick", w.updates_per_tick)
        .set("queries_per_tick", w.queries_per_tick)
        .set("ticks", w.ticks)
        .set("querier_pool", w.pool)
        .set("shards", w.shards)
        .set("seed", w.seed);
    let mut speedup = Json::object();
    speedup.set(
        "queries_per_sec",
        sharded.queries_per_sec() / baseline.queries_per_sec(),
    );
    let mut j = Json::object();
    j.set("config", config)
        .set("baseline", mode_json(baseline))
        .set("sharded", mode_json(sharded))
        .set("speedup", speedup);
    j
}

/// Extracts `"key": <number>` below `section` — same flat textual
/// extraction as `perf_baseline` (the schema is documented, no JSON
/// parser needed).
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn check_against(
    baseline: &str,
    sections: &[(&Workload, &ModeResult, &ModeResult)],
) -> Vec<String> {
    let mut violations = Vec::new();
    for (w, _base, sharded) in sections {
        let Some(base_qps) = lookup(baseline, w.name, &["sharded", "queries_per_sec"]) else {
            continue; // baseline lacks this section — nothing to gate on
        };
        let qps = sharded.queries_per_sec();
        if qps < base_qps * 0.8 {
            violations.push(format!(
                "{}: sharded throughput {qps:.0} q/s, >20% below baseline {base_qps:.0}",
                w.name
            ));
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let (args, jobs) = take_jobs(args);
    let smoke_only = args.iter().any(|a| a == "--smoke");

    let workloads = if smoke_only {
        vec![Workload::smoke()]
    } else {
        vec![Workload::full(), Workload::smoke()]
    };

    let mut report = RunReport::new("server_throughput", workloads[0].seed);
    report.config("jobs", jobs as u64);
    let mut results = Vec::new();
    for w in &workloads {
        eprintln!(
            "[{}] {} users, {} cells, {} ticks x ({} moves + {} queries) ...",
            w.name,
            w.users,
            w.cells(),
            w.ticks,
            w.updates_per_tick,
            w.queries_per_tick
        );
        let trace = generate_trace(w);
        let baseline = run_baseline(w, &trace);
        let (sharded, metrics) = run_sharded(w, &trace, jobs);
        assert_eq!(
            baseline.checksum, sharded.checksum,
            "{}: the two serving models answered differently",
            w.name
        );
        assert_eq!(baseline.latencies_ns.len() as u64, w.queries());
        println!("== {} ==", w.name);
        for (label, r) in [("baseline", &baseline), ("sharded ", &sharded)] {
            println!(
                "  {label}: {:>10.0} q/s  p50 {:>7.2} us  p99 {:>7.2} us  ({:.2} s queries, {:.2} s total)",
                r.queries_per_sec(),
                r.percentile_us(0.50),
                r.percentile_us(0.99),
                r.query_secs,
                r.total_secs,
            );
        }
        println!(
            "  speedup: {:.2}x queries/sec  (checksum {:016x}, {} found)",
            sharded.queries_per_sec() / baseline.queries_per_sec(),
            sharded.checksum,
            sharded.found,
        );
        report.section(w.name, section_json(w, &baseline, &sharded));
        if w.name == "full" {
            report.metrics(&metrics);
        }
        results.push((w, baseline, sharded));
    }

    if let Some(path) = &json_path {
        report.write_json(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let sections: Vec<(&Workload, &ModeResult, &ModeResult)> =
            results.iter().map(|(w, b, s)| (*w, b, s)).collect();
        let violations = check_against(&baseline, &sections);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
