//! Regenerates the paper's §4.2/§5 sizing numbers (experiment S5).
//!
//! Usage: `cargo run -p bips-bench --bin duty_cycle --release [replications] [seed]`

use bips_bench::duty::{render_tradeoff, run_dwell, run_sweep, run_tradeoff, DutySweepConfig, TradeoffConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = DutySweepConfig::default();
    if let Some(r) = args.next() {
        cfg.replications = r.parse().expect("replications must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let sweep = run_sweep(&cfg);
    print!("{}", sweep.render(cfg.slaves));
    println!();
    print!("{}", run_dwell(cfg.seed).render());
    println!();
    let tradeoff = run_tradeoff(&TradeoffConfig::default());
    print!("{}", render_tradeoff(&tradeoff));
}
