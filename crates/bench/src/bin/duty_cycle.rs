//! Regenerates the paper's §4.2/§5 sizing numbers (experiment S5).
//!
//! Usage: `cargo run -p bips-bench --bin duty_cycle --release [replications] [seed] [--json PATH]`
//!
//! With `--json PATH`, a structured run report (config, seed, sweep and
//! trade-off series) is written to `PATH`.

use bips_bench::duty::{
    render_tradeoff, run_dwell, run_sweep, run_tradeoff, DutySweepConfig, TradeoffConfig,
};
use bips_bench::telemetry;
use desim::{Json, RunReport};

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let mut args = args.into_iter();
    let mut cfg = DutySweepConfig::default();
    if let Some(r) = args.next() {
        cfg.replications = r.parse().expect("replications must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let sweep = run_sweep(&cfg);
    print!("{}", sweep.render(cfg.slaves));
    println!();
    let dwell = run_dwell(cfg.seed);
    print!("{}", dwell.render());
    println!();
    let tradeoff = run_tradeoff(&TradeoffConfig::default());
    print!("{}", render_tradeoff(&tradeoff));

    if let Some(path) = json_path {
        let mut report = RunReport::new("duty_cycle", cfg.seed);
        report
            .config("replications", cfg.replications)
            .config("slaves", cfg.slaves);
        report
            .artifact("dwell.paper_estimate_s", dwell.paper_estimate_s)
            .artifact("dwell.monte_carlo_s", dwell.monte_carlo_s)
            .artifact("dwell.tracking_load", dwell.tracking_load);
        let mut sweep_json = Json::object();
        for p in &sweep.points {
            sweep_json.set(&format!("{:.2}s", p.inquiry_s), p.discovered);
        }
        report.section("sweep_discovered", sweep_json);
        let mut trade = Vec::new();
        for p in &tradeoff {
            let mut row = Json::object();
            row.set("inquiry_s", p.inquiry_s)
                .set("load", p.load)
                .set("detection_latency_s", p.detection_latency_s)
                .set("samples", p.samples)
                .set("missed", p.missed);
            trade.push(row);
        }
        report.section("tradeoff", Json::from(trade));
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
