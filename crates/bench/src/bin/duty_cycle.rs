//! Regenerates the paper's §4.2/§5 sizing numbers (experiment S5).
//!
//! Usage: `cargo run -p bips-bench --bin duty_cycle --release [replications] [seed] [--jobs N] [--json PATH]`
//!
//! `--jobs N` sets the replication/sweep worker count (`0` / absent =
//! the `BIPS_JOBS` env var, else the machine width). Results are
//! bit-identical for every value; see `docs/OBSERVABILITY.md`.
//!
//! With `--json PATH`, a structured run report (config, seed, sweep and
//! trade-off series) is written to `PATH`.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use bips_bench::duty::{
    render_tradeoff, run_dwell, run_sweep, run_tradeoff, DutySweepConfig, TradeoffConfig,
};
use bips_bench::telemetry;
use desim::{Json, RunReport};

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let (args, jobs) = telemetry::take_jobs(args);
    let mut args = args.into_iter();
    let mut cfg = DutySweepConfig {
        jobs,
        ..DutySweepConfig::default()
    };
    if let Some(r) = args.next() {
        cfg.replications = r.parse().expect("replications must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let wall_start = std::time::Instant::now();
    let sweep = run_sweep(&cfg);
    print!("{}", sweep.render(cfg.slaves));
    println!();
    let dwell = run_dwell(cfg.seed);
    print!("{}", dwell.render());
    println!();
    let tradeoff = run_tradeoff(&TradeoffConfig {
        jobs,
        ..TradeoffConfig::default()
    });
    print!("{}", render_tradeoff(&tradeoff));
    let wall_secs = wall_start.elapsed().as_secs_f64();
    eprintln!(
        "[jobs={}, {:.2} s wall]",
        desim::par::resolve_jobs(jobs),
        wall_secs
    );

    if let Some(path) = json_path {
        let mut report = RunReport::new("duty_cycle", cfg.seed);
        report
            .config("replications", cfg.replications)
            .config("slaves", cfg.slaves)
            .config("jobs", desim::par::resolve_jobs(jobs) as u64);
        report.artifact("wall_secs", wall_secs);
        report
            .artifact("dwell.paper_estimate_s", dwell.paper_estimate_s)
            .artifact("dwell.monte_carlo_s", dwell.monte_carlo_s)
            .artifact("dwell.tracking_load", dwell.tracking_load);
        let mut sweep_json = Json::object();
        for p in &sweep.points {
            sweep_json.set(&format!("{:.2}s", p.inquiry_s), p.discovered);
        }
        report.section("sweep_discovered", sweep_json);
        let mut trade = Vec::new();
        for p in &tradeoff {
            let mut row = Json::object();
            row.set("inquiry_s", p.inquiry_s)
                .set("load", p.load)
                .set("detection_latency_s", p.detection_latency_s)
                .set("samples", p.samples)
                .set("missed", p.missed);
            trade.push(row);
        }
        report.section("tradeoff", Json::from(trade));
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
