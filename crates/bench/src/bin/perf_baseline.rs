//! Perf baseline for the skip-ahead inquiry scheduler (PR 3).
//!
//! Runs the Figure 2 inquiry workload twice — once with the naive
//! slot-ticking `InqTx` chain (`skip_ahead = false`) and once with the
//! skip-ahead scheduler — and reports dispatched-event counts and wall
//! time for both, plus the derived speedups. The two modes are
//! bit-identical in every observable (see
//! `crates/baseband/tests/skip_ahead_equivalence.rs`); this harness
//! measures only how much work the calendar avoids.
//!
//! Usage:
//!   cargo run -p bips-bench --bin perf_baseline --release -- \
//!       [--smoke] [--json PATH] [--check FILE]
//!
//! By default both the `full` section (the committed-baseline workload)
//! and the `smoke` section (a seconds-scale subset for CI) are run.
//! `--smoke` runs the smoke section only. `--json PATH` writes the run
//! as a `BENCH_PR3.json`-schema report (see `docs/PERF.md`). `--check
//! FILE` compares the run against a committed baseline: the job fails
//! if skip-ahead dispatches >20% more events than the baseline (event
//! counts are deterministic) or its events-per-wall-second falls >20%
//! below the baseline figure.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use bips_bench::telemetry::take_flag;
use bt_baseband::hop::Train;
use bt_baseband::params::{
    DutyCycle, MediumConfig, ScanFreqModel, ScanPattern, StartFreq, StartTrain, TrainPolicy,
};
use bt_baseband::world::BasebandWorld;
use bt_baseband::{BdAddr, MasterConfig, SlaveConfig};
use desim::{SeedDeriver, SimDuration, SimTime};

/// One benchmark workload: the Figure 2 scenario family.
struct Workload {
    name: &'static str,
    slave_counts: Vec<usize>,
    replications: u64,
    horizon: SimDuration,
    seed: u64,
}

impl Workload {
    fn full() -> Workload {
        Workload {
            name: "full",
            slave_counts: vec![2, 4, 6, 8, 10, 15, 20],
            replications: 50,
            horizon: SimDuration::from_secs(14),
            seed: 1967,
        }
    }

    fn smoke() -> Workload {
        // Still seconds-scale, but large enough that the wall-clock
        // denominator of the events/sec gate is not timer noise.
        Workload {
            name: "smoke",
            slave_counts: vec![2, 6, 10],
            replications: 25,
            horizon: SimDuration::from_secs(14),
            seed: 1967,
        }
    }
}

/// Aggregate measurements for one scheduler mode over a workload.
struct ModeResult {
    wall_secs: f64,
    events: u64,
    discoveries: u64,
    virtual_secs: f64,
}

impl ModeResult {
    fn events_per_wall_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
}

/// The Figure 2 scenario (1 s / 5 s duty cycle, single train A, shared
/// scan sequence, FHS collisions, halting slaves) with the scheduler
/// mode overridden.
fn build_world(n: usize, skip_ahead: bool) -> BasebandWorld {
    let mut builder = BasebandWorld::builder().medium(MediumConfig {
        fhs_collisions: true,
        scan_freq_model: ScanFreqModel::SharedSequence,
        skip_ahead,
        ..MediumConfig::default()
    });
    builder = builder.master(
        MasterConfig::new(BdAddr::new(0xA0_0000))
            .duty(DutyCycle::periodic(
                SimDuration::from_secs(1),
                SimDuration::from_secs(5),
            ))
            .trains(TrainPolicy::Single)
            .start_train(StartTrain::Fixed(Train::A)),
    );
    for i in 0..n {
        builder = builder.slave(
            SlaveConfig::new(BdAddr::new(0x10_0000 + i as u64))
                .scan(ScanPattern::continuous_inquiry())
                .start_freq(StartFreq::InTrain(Train::A))
                .halt_when_discovered(true),
        );
    }
    builder.build()
}

fn run_mode(w: &Workload, skip_ahead: bool) -> ModeResult {
    // Replication seeding mirrors `figure2::run_with_metrics`: one
    // SeedDeriver stream per curve, keyed by the slave count.
    let curve_seeds = SeedDeriver::new(w.seed);
    let start = Instant::now();
    let mut events = 0u64;
    let mut discoveries = 0u64;
    for &n in &w.slave_counts {
        let rep_seeds = SeedDeriver::new(curve_seeds.derive(n as u64));
        for i in 0..w.replications {
            let mut engine = build_world(n, skip_ahead).into_engine(rep_seeds.derive(i));
            engine.run_until(SimTime::ZERO + w.horizon);
            events += engine.steps();
            discoveries += engine.world().baseband().discoveries().len() as u64;
        }
    }
    ModeResult {
        wall_secs: start.elapsed().as_secs_f64(),
        events,
        discoveries,
        virtual_secs: w.horizon.as_secs_f64()
            * (w.replications * w.slave_counts.len() as u64) as f64,
    }
}

fn run_workload(w: &Workload) -> (ModeResult, ModeResult) {
    let naive = run_mode(w, false);
    let skip = run_mode(w, true);
    // The equivalence suite proves bit-identity; this cheap cross-check
    // catches a build that silently diverges.
    assert_eq!(
        naive.discoveries, skip.discoveries,
        "modes disagree on total discoveries — scheduler equivalence broken"
    );
    (naive, skip)
}

fn mode_json(r: &ModeResult) -> String {
    format!(
        "{{\"wall_secs\": {:.6}, \"events\": {}, \"events_per_wall_sec\": {:.1}, \"virtual_secs_per_wall_sec\": {:.1}}}",
        r.wall_secs,
        r.events,
        r.events_per_wall_sec(),
        r.virtual_secs / r.wall_secs
    )
}

fn section_json(w: &Workload, naive: &ModeResult, skip: &ModeResult) -> String {
    let counts: Vec<String> = w.slave_counts.iter().map(|n| n.to_string()).collect();
    format!(
        "  \"{}\": {{\n    \"config\": {{\"slave_counts\": [{}], \"replications\": {}, \"horizon_s\": {}, \"seed\": {}}},\n    \"naive\": {},\n    \"skip_ahead\": {},\n    \"speedup\": {{\"events\": {:.2}, \"wall\": {:.2}}}\n  }}",
        w.name,
        counts.join(", "),
        w.replications,
        w.horizon.as_secs_f64(),
        w.seed,
        mode_json(naive),
        mode_json(skip),
        naive.events as f64 / skip.events as f64,
        naive.wall_secs / skip.wall_secs,
    )
}

/// Extracts `"key": <number>` from `section` of a BENCH_PR3-schema
/// report. The schema is flat enough (see `docs/PERF.md`) for textual
/// extraction; avoids a JSON-parser dependency.
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Compares the finished run against a committed baseline report;
/// returns the list of violated gates.
fn check_against(
    baseline: &str,
    sections: &[(&Workload, &ModeResult, &ModeResult)],
) -> Vec<String> {
    let mut violations = Vec::new();
    for (w, _naive, skip) in sections {
        let Some(base_events) = lookup(baseline, w.name, &["skip_ahead", "events"]) else {
            continue; // baseline lacks this section — nothing to gate on
        };
        if skip.events as f64 > base_events * 1.2 {
            violations.push(format!(
                "{}: skip-ahead dispatched {} events, >20% above baseline {}",
                w.name, skip.events, base_events
            ));
        }
        if let Some(base_rate) = lookup(baseline, w.name, &["skip_ahead", "events_per_wall_sec"]) {
            let rate = skip.events_per_wall_sec();
            if rate < base_rate * 0.8 {
                violations.push(format!(
                    "{}: skip-ahead throughput {rate:.1} ev/s, >20% below baseline {base_rate:.1}",
                    w.name
                ));
            }
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let smoke_only = args.iter().any(|a| a == "--smoke");

    let workloads = if smoke_only {
        vec![Workload::smoke()]
    } else {
        vec![Workload::full(), Workload::smoke()]
    };

    let mut results = Vec::new();
    for w in &workloads {
        eprintln!(
            "[{}] {} slave counts x {} replications, {:?} horizon ...",
            w.name,
            w.slave_counts.len(),
            w.replications,
            w.horizon
        );
        let (naive, skip) = run_workload(w);
        println!("== {} ==", w.name);
        println!(
            "  naive:      {:>10} events  {:>8.3} s wall  {:>12.0} ev/s",
            naive.events,
            naive.wall_secs,
            naive.events_per_wall_sec()
        );
        println!(
            "  skip-ahead: {:>10} events  {:>8.3} s wall  {:>12.0} ev/s",
            skip.events,
            skip.wall_secs,
            skip.events_per_wall_sec()
        );
        println!(
            "  speedup:    {:>9.1}x events  {:>6.1}x wall",
            naive.events as f64 / skip.events as f64,
            naive.wall_secs / skip.wall_secs
        );
        results.push((w, naive, skip));
    }

    if let Some(path) = &json_path {
        let sections: Vec<String> = results
            .iter()
            .map(|(w, n, s)| section_json(w, n, s))
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"perf_baseline\",\n  \"schema\": 1,\n{}\n}}\n",
            sections.join(",\n")
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let sections: Vec<(&Workload, &ModeResult, &ModeResult)> =
            results.iter().map(|(w, n, s)| (*w, n, s)).collect();
        let violations = check_against(&baseline, &sections);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
