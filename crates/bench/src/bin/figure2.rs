//! Regenerates the paper's Figure 2 (experiment F2).
//!
//! Prints a summary table and the full CSV series.
//!
//! Usage: `cargo run -p bips-bench --bin figure2 --release [replications] [seed] [svg-path]`
//!
//! When an `svg-path` is given, the figure is also written as an SVG plot.

use bips_bench::figure2::{run, Figure2Config};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = Figure2Config::default();
    if let Some(r) = args.next() {
        cfg.replications = r.parse().expect("replications must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let svg_path = args.next();
    let result = run(&cfg);
    print!("{}", result.render_summary());
    println!();
    print!("{}", result.render_csv());
    if let Some(path) = svg_path {
        std::fs::write(&path, result.render_svg()).expect("write svg");
        eprintln!("wrote {path}");
    }
}
