//! Regenerates the paper's Figure 2 (experiment F2).
//!
//! Prints a summary table and the full CSV series.
//!
//! Usage: `cargo run -p bips-bench --bin figure2 --release [replications] [seed] [svg-path] [--jobs N] [--json PATH]`
//!
//! `--jobs N` sets the replication worker count (`0` / absent = the
//! `BIPS_JOBS` env var, else the machine width). Results are
//! bit-identical for every value; see `docs/OBSERVABILITY.md`.
//!
//! When an `svg-path` is given, the figure is also written as an SVG plot.
//! With `--json PATH`, a structured run report (config, seed, curve
//! readings + series, full metric snapshot) is written to `PATH`; see
//! `docs/OBSERVABILITY.md`.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use bips_bench::figure2::{run_with_metrics, Figure2Config};
use bips_bench::telemetry::{self, SnapshotConfig};

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let (args, jobs) = telemetry::take_jobs(args);
    let mut args = args.into_iter();
    let mut cfg = Figure2Config {
        jobs,
        ..Figure2Config::default()
    };
    if let Some(r) = args.next() {
        cfg.replications = r.parse().expect("replications must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let svg_path = args.next();
    let wall_start = std::time::Instant::now();
    let (result, mut metrics) = run_with_metrics(&cfg);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    eprintln!(
        "[{} replications/curve, jobs={}, {:.2} s wall]",
        cfg.replications,
        desim::par::resolve_jobs(cfg.jobs),
        wall_secs
    );
    print!("{}", result.render_summary());
    println!();
    print!("{}", result.render_csv());
    println!("\n— telemetry (accumulated over all curves) —");
    print!("{metrics}");
    if let Some(path) = svg_path {
        std::fs::write(&path, result.render_svg()).expect("write svg");
        eprintln!("wrote {path}");
    }

    if let Some(path) = json_path {
        // Fold in a small full-deployment run so the report carries the
        // complete metric catalog (lan.*, mobility.*, core.*, engine.*).
        let snapshot = telemetry::system_snapshot(&SnapshotConfig {
            seed: cfg.seed,
            ..SnapshotConfig::default()
        });
        metrics.merge(&snapshot);
        let mut report = result.to_report(&cfg);
        report.artifact("wall_secs", wall_secs);
        report.metrics(&metrics);
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
