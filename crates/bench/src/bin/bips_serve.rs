//! `bips-serve` — the sharded location engine behind a real socket.
//!
//! Builds the load-bench workload's server-side state (registry, APSP
//! grid, every user logged in), binds a listener, prints a single
//! `LISTENING <addr>` line on stdout, and serves `lan::rpc` frames
//! until a client sends `Shutdown`. The serving loop lives in
//! [`bips_bench::serve`]; the protocol subset is documented in
//! `docs/PROTOCOLS.md`.
//!
//! Usage:
//!   cargo run -p bips-bench --bin bips-serve --release -- \
//!       [--workload full|smoke|tiny] [--listen HOST:PORT] [--uds PATH] \
//!       [--jobs N] [--mix Q:U] [--mode seqlock|locked]
//!
//! Defaults: smoke workload, TCP on `127.0.0.1:0` (the `LISTENING`
//! line carries the actual port), flush jobs 4, the 80:20 mix, and
//! the seqlock read path. `--mix` re-tunes the workload's per-tick
//! blocks (clients must drive the same mix for checksums to line up);
//! `--mode locked` serves on the legacy lock-based slot reads for
//! locked-vs-seqlock socket comparisons. At exit the run's `serve.*`
//! counters print to stderr.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use bips_bench::loadgen::{build_service_with, Mix, Workload};
use bips_bench::serve::{Bind, Server};
use bips_bench::telemetry::take_flag;
use bips_core::service::ReadPath;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, workload) = take_flag(args, "--workload");
    let (args, listen) = take_flag(args, "--listen");
    let (args, uds) = take_flag(args, "--uds");
    let (args, jobs) = take_flag(args, "--jobs");
    let (args, mix_arg) = take_flag(args, "--mix");
    let (args, mode) = take_flag(args, "--mode");
    if let Some(stray) = args.first() {
        eprintln!("unknown argument: {stray}");
        std::process::exit(2);
    }

    let mix = match &mix_arg {
        Some(s) => Mix::parse(s).unwrap_or_else(|| {
            eprintln!("--mix must be one of 80:20, 50:50, 99:1 (got {s})");
            std::process::exit(2);
        }),
        None => Mix::default(),
    };
    let w = match workload.as_deref().unwrap_or("smoke") {
        "full" => Workload::full(),
        "smoke" => Workload::smoke(),
        "tiny" => Workload::tiny(),
        other => {
            eprintln!("unknown workload {other:?} (expected full, smoke, or tiny)");
            std::process::exit(2);
        }
    }
    .with_mix(mix);
    let read_path = match &mode {
        Some(s) => ReadPath::parse(s).unwrap_or_else(|| {
            eprintln!("--mode must be seqlock or locked (got {s})");
            std::process::exit(2);
        }),
        None => ReadPath::default(),
    };
    let jobs: usize = jobs.map_or(4, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--jobs must be a non-negative integer");
            std::process::exit(2);
        })
    });
    let bind = match (listen, uds) {
        (Some(_), Some(_)) => {
            eprintln!("--listen and --uds are mutually exclusive");
            std::process::exit(2);
        }
        (_, Some(path)) => Bind::Uds(PathBuf::from(path)),
        (listen, None) => Bind::Tcp(listen.unwrap_or_else(|| "127.0.0.1:0".to_string())),
    };

    eprintln!(
        "[bips-serve] building {} workload: {} users, {} cells, {} shards, {} reads ...",
        w.name,
        w.users,
        w.cells(),
        w.shards,
        read_path.name()
    );
    let svc = Arc::new(build_service_with(&w, read_path));
    let server = Server::bind(&bind, svc, jobs).unwrap_or_else(|e| {
        eprintln!("cannot bind {bind:?}: {e}");
        std::process::exit(1);
    });
    // The readiness line CI (and any other harness) greps for.
    println!("LISTENING {}", server.addr_string());
    let _ = std::io::stdout().flush();

    let stats = server.serve();
    eprintln!(
        "[bips-serve] drained: {} conns, {} frames, {} bytes in, {} bytes out, {} dropped",
        stats.conns.load(Ordering::Relaxed),
        stats.frames.load(Ordering::Relaxed),
        stats.bytes_in.load(Ordering::Relaxed),
        stats.bytes_out.load(Ordering::Relaxed),
        stats.dropped.load(Ordering::Relaxed),
    );
}
