//! `bips-top` — terminal dashboard for the serving engine.
//!
//! Renders per-shard queries/sec, HDR latency quantiles, and
//! trace-ring occupancy from a `bips-run-report/v1` document written by
//! `server_throughput --json`:
//!
//!   cargo run -p bips-bench --bin bips-top -- report.json
//!   cargo run -p bips-bench --bin bips-top -- report.json --section full
//!   cargo run -p bips-bench --bin bips-top -- report.json --watch 2
//!
//! `--watch SECS` re-reads and re-renders the file every `SECS`
//! seconds — point it at the report path a long bench run is writing
//! to and it becomes a live snapshot view.

// Operator binary: sleeping between refreshes is its whole job.
#![allow(clippy::disallowed_methods)]

use bips_bench::telemetry::take_flag;
use bips_bench::toprender::render;
use desim::report::Json;

fn render_once(path: &str, section: Option<&str>) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let json = Json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    render(&json, section)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, section) = take_flag(args, "--section");
    let (args, watch) = take_flag(args, "--watch");
    let Some(path) = args.first() else {
        eprintln!("usage: bips-top REPORT.json [--section NAME] [--watch SECS]");
        std::process::exit(2);
    };
    let period = watch.map(|w| {
        w.parse::<u64>().unwrap_or_else(|_| {
            eprintln!("--watch wants whole seconds, got {w:?}");
            std::process::exit(2);
        })
    });

    loop {
        match render_once(path, section.as_deref()) {
            Ok(out) => {
                if period.is_some() {
                    // Clear screen + home, like top(1).
                    print!("\x1b[2J\x1b[H");
                }
                print!("{out}");
            }
            Err(e) => {
                eprintln!("{e}");
                if period.is_none() {
                    std::process::exit(1);
                }
            }
        }
        match period {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => break,
        }
    }
}
