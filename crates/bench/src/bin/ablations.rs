//! Runs the ablation suite (design-choice sensitivity).
//!
//! Usage: `cargo run -p bips-bench --bin ablations --release [replications] [seed]`

use bips_bench::ablations;

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: u64 = args
        .next()
        .map(|r| r.parse().expect("replications must be an integer"))
        .unwrap_or(150);
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(7);
    print!(
        "{}",
        ablations::render(
            "A1 — FHS collision handling (20 slaves)",
            &ablations::collision_handling(reps, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablations::render(
            "A2 — response backoff bound (20 slaves)",
            &ablations::backoff_bound(reps, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablations::render(
            "A3 — scan-frequency model (10 slaves)",
            &ablations::scan_freq_model(reps, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablations::render(
            "A4 — slave scan duty (10 slaves)",
            &ablations::scan_duty(reps, seed)
        )
    );
    println!();
    print!(
        "{}",
        ablations::render(
            "A5 — channel errors (10 slaves; paper assumes error-free)",
            &ablations::channel_errors(reps, seed)
        )
    );
}
