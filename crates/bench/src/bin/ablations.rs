//! Runs the ablation suite (design-choice sensitivity).
//!
//! Usage: `cargo run -p bips-bench --bin ablations --release [replications] [seed] [--jobs N] [--json PATH]`
//!
//! `--jobs N` sets the replication worker count (`0` / absent = the
//! `BIPS_JOBS` env var, else the machine width). Results are
//! bit-identical for every value; see `docs/OBSERVABILITY.md`.
//!
//! With `--json PATH`, a structured run report (one section per ablation)
//! is written to `PATH`.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use bips_bench::ablations;
use bips_bench::telemetry;
use desim::{Json, RunReport};

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let (args, jobs) = telemetry::take_jobs(args);
    let mut args = args.into_iter();
    let reps: u64 = args
        .next()
        .map(|r| r.parse().expect("replications must be an integer"))
        .unwrap_or(150);
    // Default bumped 7 -> 8 when per-arm seed streams moved to
    // `SeedDeriver` (the old `seed ^ b` / `seed ^ p.to_bits()` arms were
    // correlated); reference numbers are re-baselined in EXPERIMENTS.md.
    let seed: u64 = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(8);

    let wall_start = std::time::Instant::now();
    let suite = [
        (
            "a1_collision_handling",
            "A1 — FHS collision handling (20 slaves)",
            ablations::collision_handling(reps, seed, jobs),
        ),
        (
            "a2_backoff_bound",
            "A2 — response backoff bound (20 slaves)",
            ablations::backoff_bound(reps, seed, jobs),
        ),
        (
            "a3_scan_freq_model",
            "A3 — scan-frequency model (10 slaves)",
            ablations::scan_freq_model(reps, seed, jobs),
        ),
        (
            "a4_scan_duty",
            "A4 — slave scan duty (10 slaves)",
            ablations::scan_duty(reps, seed, jobs),
        ),
        (
            "a5_channel_errors",
            "A5 — channel errors (10 slaves; paper assumes error-free)",
            ablations::channel_errors(reps, seed, jobs),
        ),
    ];
    let wall_secs = wall_start.elapsed().as_secs_f64();
    eprintln!(
        "[{} replications/arm, jobs={}, {:.2} s wall]",
        reps,
        desim::par::resolve_jobs(jobs),
        wall_secs
    );

    let mut first = true;
    for (_, title, points) in &suite {
        if !first {
            println!();
        }
        first = false;
        print!("{}", ablations::render(title, points));
    }

    if let Some(path) = json_path {
        let mut report = RunReport::new("ablations", seed);
        report
            .config("replications", reps)
            .config("jobs", desim::par::resolve_jobs(jobs) as u64);
        report.artifact("wall_secs", wall_secs);
        for (key, _, points) in &suite {
            let mut rows = Vec::new();
            for p in points {
                let mut row = Json::object();
                row.set("label", p.label.as_str())
                    .set("in_first_phase", p.in_first_phase)
                    .set("in_horizon", p.in_horizon);
                rows.push(row);
            }
            report.section(key, Json::from(rows));
        }
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
