//! Churn bench + CI gate for the dynamic shortest-path engine (PR 9).
//!
//! Replays the campus-scale churn scenario the paper's offline APSP
//! cannot survive: 10k and 100k cells with 1% of cells flapping per
//! virtual minute (node down/up plus congestion reweights) under a
//! mixed path-query load from a warm source pool. For each section it
//! reports:
//!
//! - the **estimated full-rebuild cost** (mean of 32 sampled Dijkstra
//!   runs × n sources — actually rebuilding 10k–100k sources per
//!   mutation is exactly the cost this PR removes),
//! - the **mean per-mutation repair cost** of the dynamic engine,
//! - **query throughput under churn vs quiet** on the same engine, and
//! - the process **VmHWM** high-water mark, proving the 100k-cell run
//!   holds no O(n²) table (that table alone would be ~120 GB).
//!
//! Usage:
//!   cargo run -p bips-bench --bin path_churn --release -- \
//!       [--smoke] [--json PATH] [--check FILE]
//!
//! By default both the `cells_*` full sections and the seconds-scale
//! `smoke_*` sections run. `--smoke` runs the smoke sections only.
//! `--json PATH` writes a `BENCH_PR9.json`-schema report (see
//! `docs/PERF.md`). `--check FILE` gates the run: per-mutation repair
//! must beat the estimated rebuild by ≥20x, query throughput under
//! churn must hold ≥0.8x of quiet and ≥0.8x of the committed baseline,
//! mutation counts must match the baseline exactly (they are
//! deterministic), and memory-checked sections must stay under 2 GiB.

// Bench binary: wall-clock reads feed the perf report, not simulation
// results.
#![allow(clippy::disallowed_methods)]

use std::time::Instant;

use bips_bench::telemetry::take_flag;
use bips_core::graph::{random_connected_graph, PathEngine, PathEngineKind};
use desim::metrics::MetricSet;
use desim::SimRng;

/// Gate thresholds (see ISSUE 9 acceptance criteria / docs/PERF.md).
const MIN_REPAIR_SPEEDUP: f64 = 20.0;
const MIN_CHURN_OVER_QUIET: f64 = 0.8;
const MIN_QPS_VS_BASELINE: f64 = 0.8;
const MAX_VM_HWM_MB: f64 = 2048.0;

/// One churn scenario: `cells` nodes, 1% flapping per virtual minute.
struct Workload {
    name: &'static str,
    cells: usize,
    extra_edges: usize,
    /// Virtual minutes; each applies `cells / 100` mutations.
    ticks: u64,
    queries_per_tick: u64,
    /// Query sources are confined to this pool so sparse-mode queries
    /// hit warm trees (the serving pattern the cache is sized for).
    warm_sources: usize,
    seed: u64,
    /// Gate VmHWM (the no-O(n²)-table proof) for this section.
    check_memory: bool,
}

impl Workload {
    fn full() -> Vec<Workload> {
        vec![
            Workload {
                name: "cells_10k",
                cells: 10_000,
                extra_edges: 20_000,
                ticks: 20,
                queries_per_tick: 100_000,
                warm_sources: 16,
                seed: 2003,
                check_memory: false,
            },
            Workload {
                name: "cells_100k",
                cells: 100_000,
                extra_edges: 200_000,
                ticks: 5,
                queries_per_tick: 50_000,
                warm_sources: 16,
                seed: 2003,
                check_memory: true,
            },
        ]
    }

    fn smoke() -> Vec<Workload> {
        vec![
            Workload {
                name: "smoke_10k",
                cells: 10_000,
                extra_edges: 20_000,
                ticks: 5,
                queries_per_tick: 50_000,
                warm_sources: 16,
                seed: 2003,
                check_memory: false,
            },
            Workload {
                name: "smoke_100k",
                cells: 100_000,
                extra_edges: 200_000,
                ticks: 2,
                queries_per_tick: 25_000,
                warm_sources: 8,
                seed: 2003,
                check_memory: true,
            },
        ]
    }

    fn flaps_per_tick(&self) -> usize {
        (self.cells / 100).max(1)
    }
}

struct SectionResult {
    engine: &'static str,
    sampled_sssp: u64,
    mean_sssp_secs: f64,
    est_rebuild_secs: f64,
    mutations: u64,
    repair_secs: f64,
    churn_queries: u64,
    churn_query_secs: f64,
    quiet_queries: u64,
    quiet_query_secs: f64,
    found: u64,
    unreachable: u64,
    vm_hwm_mb: Option<f64>,
    counters: Vec<(&'static str, u64)>,
}

impl SectionResult {
    fn mean_repair_secs(&self) -> f64 {
        self.repair_secs / self.mutations.max(1) as f64
    }

    fn repair_speedup(&self) -> f64 {
        self.est_rebuild_secs / self.mean_repair_secs()
    }

    fn churn_qps(&self) -> f64 {
        self.churn_queries as f64 / self.churn_query_secs
    }

    fn quiet_qps(&self) -> f64 {
        self.quiet_queries as f64 / self.quiet_query_secs
    }

    fn churn_over_quiet(&self) -> f64 {
        self.churn_qps() / self.quiet_qps()
    }
}

/// Process peak resident set from `/proc/self/status`, in MiB.
fn vm_hwm_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

fn run_section(w: &Workload) -> SectionResult {
    let g = random_connected_graph(w.cells, w.extra_edges, w.seed);
    let mut rng = SimRng::seed_from(w.seed ^ 0x9e37_79b9);

    // Sample the rebuild cost this engine avoids: a full
    // `precompute_all_pairs` is n Dijkstra runs, so estimate it as
    // (mean sampled SSSP) × n instead of spending hours measuring it.
    let sampled = 32u64.min(w.cells as u64);
    let t = Instant::now();
    for _ in 0..sampled {
        let s = rng.below(w.cells as u64) as usize;
        std::hint::black_box(g.dijkstra(s));
    }
    let mean_sssp_secs = t.elapsed().as_secs_f64() / sampled as f64;
    let est_rebuild_secs = mean_sssp_secs * w.cells as f64;

    let mut engine = PathEngine::new(PathEngineKind::Dynamic, g);
    for s in 0..w.warm_sources {
        engine.warm(s);
    }

    // Churn phase: every tick (one virtual minute) flaps 1% of cells —
    // a blend of congestion reweights and node down/up toggles (downed
    // cells come back the next minute) — then serves the query load.
    let mut downed: Vec<usize> = Vec::new();
    let mut mutations = 0u64;
    let mut repair_secs = 0.0f64;
    let mut churn_query_secs = 0.0f64;
    let (mut found, mut unreachable) = (0u64, 0u64);
    let mut buf = Vec::new();
    let mut run_queries =
        |engine: &mut PathEngine, rng: &mut SimRng, found: &mut u64, unreachable: &mut u64| {
            let t = Instant::now();
            for _ in 0..w.queries_per_tick {
                let src = rng.below(w.warm_sources as u64) as usize;
                let dst = rng.below(w.cells as u64) as usize;
                match engine.query(src, dst, &mut buf) {
                    Ok(Some(_)) => *found += 1,
                    Ok(None) => *unreachable += 1,
                    Err(e) => panic!("path corruption under churn: {e}"),
                }
            }
            t.elapsed().as_secs_f64()
        };

    for _tick in 0..w.ticks {
        let t = Instant::now();
        for x in downed.drain(..) {
            mutations += u64::from(engine.set_node_up(x, true).unwrap_or(false));
        }
        for _ in 0..w.flaps_per_tick() {
            if rng.below(4) == 0 {
                let x = rng.below(w.cells as u64) as usize;
                if engine.set_node_up(x, false) == Ok(true) {
                    downed.push(x);
                    mutations += 1;
                }
            } else {
                let a = rng.below(w.cells as u64) as usize;
                let es = engine.graph().edges(a);
                if es.is_empty() {
                    continue;
                }
                let b = es[rng.below(es.len() as u64) as usize].0;
                let weight = rng.uniform(0.5, 50.0);
                // A down endpoint is a legitimate rejection mid-churn.
                mutations += u64::from(engine.set_edge_weight(a, b, weight).unwrap_or(false));
            }
        }
        // Maintenance includes re-warming the hot pool: a repair that
        // blew the per-tree budget left its slot stale, and recomputing
        // it here (not on the first unlucky query) is the serving
        // discipline the ratio gate models. Charged to repair cost.
        for s in 0..w.warm_sources {
            engine.warm(s);
        }
        repair_secs += t.elapsed().as_secs_f64();
        churn_query_secs += run_queries(&mut engine, &mut rng, &mut found, &mut unreachable);
    }

    // Quiet phase: the same query volume with churn stopped — the
    // denominator of the "throughput under churn" ratio.
    let mut quiet_query_secs = 0.0f64;
    let (mut qfound, mut qunreachable) = (0u64, 0u64);
    for _tick in 0..w.ticks {
        quiet_query_secs += run_queries(&mut engine, &mut rng, &mut qfound, &mut qunreachable);
    }

    let mut ms = MetricSet::new();
    engine.export_metrics(&mut ms);
    let counters = [
        "core.graph.tree_repairs",
        "core.graph.vertices_touched",
        "core.graph.epoch_invalidations",
        "core.graph.cache_misses",
        "core.graph.cache_hits",
    ]
    .into_iter()
    .map(|name| (name, ms.counter_value(name).unwrap_or(0)))
    .collect();

    SectionResult {
        engine: engine.name(),
        sampled_sssp: sampled,
        mean_sssp_secs,
        est_rebuild_secs,
        mutations,
        repair_secs,
        churn_queries: w.ticks * w.queries_per_tick,
        churn_query_secs,
        quiet_queries: w.ticks * w.queries_per_tick,
        quiet_query_secs,
        found: found + qfound,
        unreachable: unreachable + qunreachable,
        vm_hwm_mb: vm_hwm_mb(),
        counters,
    }
}

fn section_json(w: &Workload, r: &SectionResult) -> String {
    let counters: Vec<String> = r
        .counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    let vm = match r.vm_hwm_mb {
        Some(mb) => format!("{mb:.1}"),
        None => "null".to_string(),
    };
    format!(
        "  \"{}\": {{\n    \"config\": {{\"cells\": {}, \"extra_edges\": {}, \"ticks\": {}, \"flaps_per_tick\": {}, \"queries_per_tick\": {}, \"warm_sources\": {}, \"seed\": {}}},\n    \"engine\": \"{}\",\n    \"rebuild_est\": {{\"sampled_sssp\": {}, \"mean_sssp_secs\": {:.9}, \"est_full_secs\": {:.6}}},\n    \"repair\": {{\"mutations\": {}, \"total_secs\": {:.6}, \"mean_secs\": {:.9}}},\n    \"repair_speedup\": {:.1},\n    \"queries\": {{\"churn_qps\": {:.1}, \"quiet_qps\": {:.1}, \"churn_over_quiet\": {:.4}, \"found\": {}, \"unreachable\": {}}},\n    \"vm_hwm_mb\": {},\n    \"metrics\": {{{}}}\n  }}",
        w.name,
        w.cells,
        w.extra_edges,
        w.ticks,
        w.flaps_per_tick(),
        w.queries_per_tick,
        w.warm_sources,
        w.seed,
        r.engine,
        r.sampled_sssp,
        r.mean_sssp_secs,
        r.est_rebuild_secs,
        r.mutations,
        r.repair_secs,
        r.mean_repair_secs(),
        r.repair_speedup(),
        r.churn_qps(),
        r.quiet_qps(),
        r.churn_over_quiet(),
        r.found,
        r.unreachable,
        vm,
        counters.join(", "),
    )
}

/// Extracts `"key": <number>` below `section` of a BENCH_PR9-schema
/// report; flat enough for textual extraction (no JSON parser dep).
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Applies the gates; returns the list of violations. The speedup,
/// churn/quiet, and memory gates are absolute (the run's own numbers);
/// the qps and mutation-count gates compare against the committed
/// baseline when it has the section.
fn check_against(baseline: &str, sections: &[(&Workload, SectionResult)]) -> Vec<String> {
    let mut violations = Vec::new();
    for (w, r) in sections {
        if r.repair_speedup() < MIN_REPAIR_SPEEDUP {
            violations.push(format!(
                "{}: per-mutation repair only {:.1}x cheaper than rebuild (gate: >={}x)",
                w.name,
                r.repair_speedup(),
                MIN_REPAIR_SPEEDUP
            ));
        }
        if r.churn_over_quiet() < MIN_CHURN_OVER_QUIET {
            violations.push(format!(
                "{}: churn qps is {:.2}x quiet qps (gate: >={})",
                w.name,
                r.churn_over_quiet(),
                MIN_CHURN_OVER_QUIET
            ));
        }
        if w.check_memory {
            match r.vm_hwm_mb {
                Some(mb) if mb >= MAX_VM_HWM_MB => violations.push(format!(
                    "{}: VmHWM {mb:.1} MiB (gate: <{MAX_VM_HWM_MB} — an O(n²) table would be ~120 GB)",
                    w.name
                )),
                Some(_) => {}
                None => violations.push(format!(
                    "{}: VmHWM unavailable — cannot prove bounded memory",
                    w.name
                )),
            }
        }
        if let Some(base_muts) = lookup(baseline, w.name, &["repair", "mutations"]) {
            if r.mutations as f64 != base_muts {
                violations.push(format!(
                    "{}: applied {} mutations, baseline applied {} — churn schedule diverged",
                    w.name, r.mutations, base_muts
                ));
            }
        }
        if let Some(base_qps) = lookup(baseline, w.name, &["queries", "churn_qps"]) {
            let qps = r.churn_qps();
            if qps < base_qps * MIN_QPS_VS_BASELINE {
                violations.push(format!(
                    "{}: churn throughput {qps:.1} q/s, >20% below baseline {base_qps:.1}",
                    w.name
                ));
            }
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let smoke_only = args.iter().any(|a| a == "--smoke");

    let workloads = if smoke_only {
        Workload::smoke()
    } else {
        let mut all = Workload::full();
        all.extend(Workload::smoke());
        all
    };

    let mut results = Vec::new();
    for w in &workloads {
        eprintln!(
            "[{}] {} cells, {} ticks x {} flaps + {} queries ...",
            w.name,
            w.cells,
            w.ticks,
            w.flaps_per_tick(),
            w.queries_per_tick
        );
        let r = run_section(w);
        println!("== {} ({}) ==", w.name, r.engine);
        println!(
            "  rebuild est: {:>10.3} ms   repair mean: {:>10.3} us   speedup: {:>8.0}x",
            r.est_rebuild_secs * 1e3,
            r.mean_repair_secs() * 1e6,
            r.repair_speedup()
        );
        println!(
            "  churn qps: {:>12.0}   quiet qps: {:>12.0}   ratio: {:.3}",
            r.churn_qps(),
            r.quiet_qps(),
            r.churn_over_quiet()
        );
        println!(
            "  mutations: {:>12}   found/unreachable: {}/{}   VmHWM: {} MiB",
            r.mutations,
            r.found,
            r.unreachable,
            r.vm_hwm_mb.map_or("?".to_string(), |m| format!("{m:.0}"))
        );
        results.push((w, r));
    }

    if let Some(path) = &json_path {
        let sections: Vec<String> = results.iter().map(|(w, r)| section_json(w, r)).collect();
        let json = format!(
            "{{\n  \"bench\": \"path_churn\",\n  \"schema\": 1,\n{}\n}}\n",
            sections.join(",\n")
        );
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let violations = check_against(&baseline, &results);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
