//! Runs the full BIPS deployment end to end (experiment E2E).
//!
//! Usage: `cargo run -p bips-bench --bin tracking_e2e --release [users] [seconds] [seed] [--json PATH]`
//!
//! With `--json PATH`, a structured run report (config, seed, pipeline
//! numbers, full metric snapshot) is written to `PATH`.

use bips_bench::e2e::{run_with_metrics, E2eConfig};
use bips_bench::telemetry;
use desim::SimDuration;

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let mut args = args.into_iter();
    let mut cfg = E2eConfig::default();
    if let Some(u) = args.next() {
        cfg.users = u.parse().expect("users must be an integer");
    }
    if let Some(d) = args.next() {
        cfg.duration = SimDuration::from_secs(d.parse().expect("seconds must be an integer"));
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let (result, metrics) = run_with_metrics(&cfg);
    print!("{}", result.render());
    println!("\n— telemetry —");
    print!("{metrics}");

    if let Some(path) = json_path {
        let mut report = result.to_report(&cfg);
        report.metrics(&metrics);
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
