//! Runs the full BIPS deployment end to end (experiment E2E).
//!
//! Usage: `cargo run -p bips-bench --bin tracking_e2e --release [users] [seconds] [seed]`

use bips_bench::e2e::{run, E2eConfig};
use desim::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = E2eConfig::default();
    if let Some(u) = args.next() {
        cfg.users = u.parse().expect("users must be an integer");
    }
    if let Some(d) = args.next() {
        cfg.duration = SimDuration::from_secs(d.parse().expect("seconds must be an integer"));
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let result = run(&cfg);
    print!("{}", result.render());
}
