//! Runs the full BIPS deployment end to end (experiment E2E).
//!
//! Usage: `cargo run -p bips-bench --bin tracking_e2e --release [users] [seconds] [seed] [--jobs N] [--json PATH]`
//!
//! `--jobs N` is accepted for CLI uniformity and recorded in the run
//! report; the e2e run is a single coupled engine with nothing to
//! parallelise.
//!
//! With `--json PATH`, a structured run report (config, seed, pipeline
//! numbers, full metric snapshot) is written to `PATH`.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use bips_bench::e2e::{run_with_metrics, E2eConfig};
use bips_bench::telemetry;
use desim::SimDuration;

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let (args, jobs) = telemetry::take_jobs(args);
    let mut args = args.into_iter();
    let mut cfg = E2eConfig {
        jobs,
        ..E2eConfig::default()
    };
    if let Some(u) = args.next() {
        cfg.users = u.parse().expect("users must be an integer");
    }
    if let Some(d) = args.next() {
        cfg.duration = SimDuration::from_secs(d.parse().expect("seconds must be an integer"));
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let wall_start = std::time::Instant::now();
    let (result, metrics) = run_with_metrics(&cfg);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    print!("{}", result.render());
    println!("\n— telemetry —");
    print!("{metrics}");

    if let Some(path) = json_path {
        let mut report = result.to_report(&cfg);
        report.artifact("wall_secs", wall_secs);
        report.metrics(&metrics);
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
