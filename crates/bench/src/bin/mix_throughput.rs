//! Mixed-workload locked-vs-seqlock bench: the `BENCH_PR8.json` gate.
//!
//! For every [`Mix`] preset (80:20, 50:50, 99:1 query:update) this
//! binary measures the engine's two slot-read protocols side by side:
//!
//! * **barriered** — [`run_sharded_with`] on the seqlock and on the
//!   locked path. Queries never race flushes here, so the two paths
//!   must be *bit-identical* (answer checksum, ack checksum, found
//!   count) — the bench refuses to report numbers over diverging
//!   answers — and their throughputs show the uncontended cost of each
//!   scheme.
//! * **contended** — [`run_contended`] on both paths: reader threads
//!   race a continuously flushing writer, which is the scenario where
//!   the locked path's tail collapses (a reader queues behind every
//!   flush holding the shard's writer lock) and the seqlock path keeps
//!   serving. The headline number is `speedup.p999_contended` =
//!   locked / seqlock write-burst p999 — the tail over only the
//!   queries that overlapped a flush, which is the subset the read
//!   protocol actually decides (overall percentiles additionally carry
//!   coordinated-omission-corrected scheduler noise that hits both
//!   paths alike).
//!
//! The seqlock contended run arms the flight recorder's retry-storm
//! trigger ([`FlightRecorder::with_retry_threshold`]); a query burning
//! more than [`RETRY_STORM_THRESHOLD`] retries dumps a post-mortem
//! window to `target/flight-recorder/`.
//!
//! Usage:
//!   cargo run -p bips-bench --bin mix_throughput --release -- \
//!       [--smoke] [--json PATH] [--check FILE] [--jobs N] [--readers N]
//!
//! `--json PATH` writes a `bips-run-report/v1` document with one
//! section per workload-mix (`full_50_50`, `smoke_99_1`, …; the
//! default mix keeps bare names). Each section's `sharded` block is
//! schema-compatible with `server_throughput`'s, so
//! `server_throughput --mix 50:50 --smoke --check BENCH_PR8.json`
//! gates its own smoke run against this bench's committed baseline.
//! `--check FILE` gates barriered seqlock queries/sec (>20% below
//! baseline fails) and contended seqlock p999 (>20% above baseline
//! plus a 5 µs jitter floor fails).

// Bench binary: wall-clock reads feed the perf report, not simulation
// results.
#![allow(clippy::disallowed_methods)]

use std::path::Path;
use std::sync::Arc;

use bips_bench::loadgen::{
    generate_trace, run_burst_model, run_contended, run_sharded_with, BurstModelResult,
    ContendedResult, Mix, ModeResult, Workload,
};
use bips_bench::telemetry::{take_flag, take_jobs};
use bips_core::service::ReadPath;
use desim::report::{hdr_json, Json, RunReport};
use desim::tracing::{FlightRecorder, Tracer};

/// Reader threads racing the writer in contended mode (override with
/// `--readers`): one per spare hardware thread after the writer's,
/// between 2 and 4 — oversubscribing a small machine only adds
/// scheduler noise to the tails.
fn default_readers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .saturating_sub(1)
        .clamp(2, 4)
}

/// Ticks the contended writer accumulates per flush: one flush then
/// applies `64 * 2 * updates_per_tick` notices as a single per-shard
/// batch — the inquiry-sweep write burst. Under the 50:50 mix that is
/// a multi-thousand-notice batch whose lock hold time is exactly what
/// the locked read path's tail pays and the seqlock path does not.
const WRITE_BURST_TICKS: usize = 64;

/// Notices the contended writer ingests+flushes per run, regardless of
/// mix: the writer replays the move schedule for however many passes
/// reach this volume, so every contended measurement races readers
/// against a comparable amount of write traffic and the mixes differ
/// only in burst size and flush cadence.
const CONTENDED_NOTICES_TARGET: u64 = 4_000_000;

/// Writer passes over the move schedule needed to reach
/// [`CONTENDED_NOTICES_TARGET`] (at least one, at most 64 so the
/// read-saturated mixes stay seconds-scale).
fn contended_passes(w: &Workload) -> usize {
    let per_pass = (w.ticks * 2 * w.updates_per_tick) as u64;
    (CONTENDED_NOTICES_TARGET / per_pass.max(1)).clamp(1, 64) as usize
}

/// Evenly spaced open-loop arrivals replayed through the deterministic
/// write-burst model (`run_burst_model`) per path and mix.
const MODEL_ARRIVALS: usize = 1_000_000;

/// Seqlock retries on one query beyond which the flight recorder dumps
/// a retry-storm artifact. Normal contention costs single-digit
/// retries; thousands mean a writer is starving its readers.
const RETRY_STORM_THRESHOLD: u64 = 1_000;

/// Events per tracer ring backing the retry-storm recorder.
const RING_CAPACITY: usize = 4096;

/// Events drained into a flight-recorder dump.
const FLIGHT_LAST_N: usize = 256;

/// Where flight-recorder JSONL artifacts land.
const FLIGHT_DIR: &str = "target/flight-recorder";

fn barriered_json(r: &ModeResult) -> Json {
    let hdr = r.latency_hdr();
    let mut j = Json::object();
    j.set("queries_per_sec", r.queries_per_sec())
        .set("p50_us", r.percentile_us(0.50))
        .set("p99_us", r.percentile_us(0.99))
        .set("p999_us", hdr.quantile(0.999) as f64 / 1000.0)
        .set("p9999_us", hdr.quantile(0.9999) as f64 / 1000.0)
        .set("query_secs", r.query_secs)
        .set("total_secs", r.total_secs)
        .set("found", r.found)
        .set("checksum", format!("{:016x}", r.checksum))
        .set("ack_checksum", format!("{:016x}", r.ack_checksum));
    j
}

fn contended_json(r: &ContendedResult) -> Json {
    let mut j = Json::object();
    j.set("queries_per_sec", r.queries_per_sec())
        .set("p50_us", r.hdr.quantile(0.50) as f64 / 1000.0)
        .set("p99_us", r.hdr.quantile(0.99) as f64 / 1000.0)
        .set("p999_us", r.hdr.quantile(0.999) as f64 / 1000.0)
        .set("p9999_us", r.hdr.quantile(0.9999) as f64 / 1000.0)
        .set("burst_queries", r.burst_hdr.count())
        .set("burst_p50_us", r.burst_quantile(0.50) as f64 / 1000.0)
        .set("burst_p99_us", r.burst_quantile(0.99) as f64 / 1000.0)
        .set("burst_p999_us", r.burst_quantile(0.999) as f64 / 1000.0)
        .set("burst_p9999_us", r.burst_quantile(0.9999) as f64 / 1000.0)
        .set("latency_hdr_ns", hdr_json(&r.hdr))
        .set("queries", r.queries)
        .set("found", r.found)
        .set("read_retries", r.read_retries)
        .set("retries_per_query", r.retries_per_query())
        .set("slot_publishes", r.slot_publishes)
        .set("wall_secs", r.wall_secs);
    j
}

fn print_barriered(label: &str, r: &ModeResult) {
    let hdr = r.latency_hdr();
    println!(
        "  {label}: {:>10.0} q/s  p50 {:>7.2} us  p99 {:>7.2} us  p999 {:>8.2} us",
        r.queries_per_sec(),
        r.percentile_us(0.50),
        r.percentile_us(0.99),
        hdr.quantile(0.999) as f64 / 1000.0,
    );
}

fn burst_model_json(m: &BurstModelResult) -> Json {
    let mut j = Json::object();
    j.set("p50_us", m.hdr.quantile(0.50) as f64 / 1000.0)
        .set("p99_us", m.hdr.quantile(0.99) as f64 / 1000.0)
        .set("p999_us", m.hdr.quantile(0.999) as f64 / 1000.0)
        .set("p9999_us", m.hdr.quantile(0.9999) as f64 / 1000.0)
        .set("ingest_ms", m.ingest_secs * 1e3)
        .set("flush_ms", m.flush_secs * 1e3)
        .set("hold_us", m.hold_ns as f64 / 1000.0)
        .set("duty", m.duty);
    j
}

fn print_contended(label: &str, r: &ContendedResult) {
    println!(
        "  {label}: {:>10.0} q/s  burst p50 {:>7.2} us  p99 {:>8.2} us  p999 {:>8.2} us  ({} burst queries, {} retries, {} publishes)",
        r.queries_per_sec(),
        r.burst_quantile(0.50) as f64 / 1000.0,
        r.burst_quantile(0.99) as f64 / 1000.0,
        r.burst_quantile(0.999) as f64 / 1000.0,
        r.burst_hdr.count(),
        r.read_retries,
        r.slot_publishes,
    );
}

/// Same flat textual extraction as `server_throughput` (documented
/// schema, no JSON parser needed).
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

struct SectionResult {
    name: &'static str,
    sharded: ModeResult,
    burst_model_seqlock_p999_us: f64,
}

fn check_against(baseline_json: &str, sections: &[SectionResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for s in sections {
        let name = s.name;
        // Throughput is advisory here, not gating: a smoke query phase
        // is tens of milliseconds of wall clock, and on shared one-core
        // runners a single preemption swings it 3x. The hard qps gate
        // lives in server_throughput, whose measurement windows are
        // long enough to average the noise out.
        if let Some(base_qps) = lookup(baseline_json, name, &["sharded", "queries_per_sec"]) {
            let qps = s.sharded.queries_per_sec();
            if qps < base_qps * 0.8 {
                eprintln!(
                    "warning: {name}: seqlock throughput {qps:.0} q/s, \
                     >20% below baseline {base_qps:.0} (advisory, not gated)"
                );
            }
        }
        // Write-burst tail gate on the deterministic burst model: 20%
        // over baseline plus a 5 µs jitter floor, the same budget
        // server_throughput's p999 gate uses.
        if let Some(base_p999) = lookup(baseline_json, name, &["burst_model_seqlock", "p999_us"]) {
            let p999 = s.burst_model_seqlock_p999_us;
            if p999 > base_p999 * 1.2 + 5.0 {
                violations.push(format!(
                    "{name}: write-burst p999 {p999:.2} us, >20% above baseline {base_p999:.2} us"
                ));
            }
        }
    }
    violations
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let (args, readers_arg) = take_flag(args, "--readers");
    let (args, jobs) = take_jobs(args);
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let readers: usize = readers_arg.map_or_else(default_readers, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--readers must be a positive integer");
            std::process::exit(2);
        })
    });

    let bases: Vec<fn() -> Workload> = if smoke_only {
        vec![Workload::smoke]
    } else {
        vec![Workload::full, Workload::smoke]
    };

    let mut report = RunReport::new("mix_throughput", Workload::smoke().seed);
    report.config("jobs", jobs as u64);
    report.config("readers", readers as u64);
    report.artifact("flight_recorder_dir", FLIGHT_DIR);
    let mut results: Vec<SectionResult> = Vec::new();
    let mut total_dumps = 0u64;
    for base in bases {
        for mix in Mix::ALL {
            let w = base().with_mix(mix);
            eprintln!(
                "[{}] {} users, mix {}: {} ticks x ({} moves + {} queries), {} readers ...",
                w.name,
                w.users,
                mix.name(),
                w.ticks,
                w.updates_per_tick,
                w.queries_per_tick,
                readers,
            );
            let trace = generate_trace(&w);
            // Unmeasured warmup replay: the first section of a fresh
            // process otherwise pays cold caches/page faults that later
            // sections don't, which skews --smoke runs (section order
            // differs from the committed full run) enough to trip the
            // qps gate.
            let _ = run_sharded_with(&w, &trace, jobs, ReadPath::Seqlock);
            let (sharded, _) = run_sharded_with(&w, &trace, jobs, ReadPath::Seqlock);
            let (locked, _) = run_sharded_with(&w, &trace, jobs, ReadPath::Locked);
            assert_eq!(
                sharded.checksum, locked.checksum,
                "{}: the two read paths answered differently",
                w.name
            );
            assert_eq!(
                sharded.ack_checksum, locked.ack_checksum,
                "{}: the two read paths acked differently",
                w.name
            );
            assert_eq!(sharded.found, locked.found);

            let tracer = Arc::new(Tracer::new(w.shards, RING_CAPACITY));
            let recorder =
                FlightRecorder::new(Arc::clone(&tracer), Path::new(FLIGHT_DIR), FLIGHT_LAST_N)
                    .with_retry_threshold(RETRY_STORM_THRESHOLD);
            let passes = contended_passes(&w);
            let cont_seq = run_contended(
                &w,
                &trace,
                readers,
                WRITE_BURST_TICKS,
                passes,
                ReadPath::Seqlock,
                Some(&recorder),
            );
            total_dumps += recorder.dumps();
            let cont_locked = run_contended(
                &w,
                &trace,
                readers,
                WRITE_BURST_TICKS,
                passes,
                ReadPath::Locked,
                None,
            );
            let model_seq = run_burst_model(
                &w,
                &trace,
                WRITE_BURST_TICKS,
                MODEL_ARRIVALS,
                ReadPath::Seqlock,
                &sharded.latency_hdr(),
            );
            let model_lck = run_burst_model(
                &w,
                &trace,
                WRITE_BURST_TICKS,
                MODEL_ARRIVALS,
                ReadPath::Locked,
                &locked.latency_hdr(),
            );

            println!("== {} ==", w.name);
            print_barriered("seqlock ", &sharded);
            print_barriered("locked  ", &locked);
            print_contended("cont-seq", &cont_seq);
            print_contended("cont-lck", &cont_locked);
            let seq_p999 = model_seq.hdr.quantile(0.999).max(1) as f64;
            let lck_p999 = model_lck.hdr.quantile(0.999).max(1) as f64;
            println!(
                "  burst model: hold {:.1} us, duty {:.1}%  ->  p999 locked {:.2} us vs seqlock {:.2} us",
                model_lck.hold_ns as f64 / 1000.0,
                model_lck.duty * 100.0,
                lck_p999 / 1000.0,
                seq_p999 / 1000.0,
            );
            println!(
                "  write-burst p999: locked/seqlock = {:.1}x  (checksum {:016x})",
                lck_p999 / seq_p999,
                sharded.checksum,
            );

            let mut config = Json::object();
            config
                .set("users", w.users)
                .set("cells", w.cells())
                .set("mix", mix.name())
                .set("updates_per_tick", w.updates_per_tick)
                .set("queries_per_tick", w.queries_per_tick)
                .set("ticks", w.ticks)
                .set("querier_pool", w.pool)
                .set("shards", w.shards)
                .set("readers", readers as u64)
                .set("write_burst_ticks", WRITE_BURST_TICKS)
                .set("writer_passes", passes as u64)
                .set("seed", w.seed);
            let mut speedup = Json::object();
            speedup
                .set("p999_write_burst", lck_p999 / seq_p999)
                .set(
                    "p999_contended",
                    cont_locked.burst_quantile(0.999).max(1) as f64
                        / cont_seq.burst_quantile(0.999).max(1) as f64,
                )
                .set(
                    "queries_per_sec_barriered",
                    sharded.queries_per_sec() / locked.queries_per_sec(),
                )
                .set(
                    "queries_per_sec_contended",
                    cont_seq.queries_per_sec() / cont_locked.queries_per_sec().max(1e-9),
                );
            let mut section = Json::object();
            section
                .set("config", config)
                .set("sharded", barriered_json(&sharded))
                .set("locked", barriered_json(&locked))
                .set("contended_seqlock", contended_json(&cont_seq))
                .set("contended_locked", contended_json(&cont_locked))
                .set("burst_model_seqlock", burst_model_json(&model_seq))
                .set("burst_model_locked", burst_model_json(&model_lck))
                .set("speedup", speedup);
            report.section(w.name, section);
            results.push(SectionResult {
                name: w.name,
                sharded,
                burst_model_seqlock_p999_us: model_seq.hdr.quantile(0.999) as f64 / 1000.0,
            });
        }
    }
    report.artifact("flight_recorder_dumps", total_dumps);

    if let Some(path) = &json_path {
        report.write_json(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let violations = check_against(&baseline, &results);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
