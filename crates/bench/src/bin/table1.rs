//! Regenerates the paper's §4.1 table (experiment T1).
//!
//! Usage: `cargo run -p bips-bench --bin table1 --release [trials] [seed]`

use bips_bench::table1::{run, Table1Config};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = Table1Config::default();
    if let Some(t) = args.next() {
        cfg.trials = t.parse().expect("trials must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let result = run(&cfg);
    print!("{}", result.render());
}
