//! Regenerates the paper's §4.1 table (experiment T1).
//!
//! Usage: `cargo run -p bips-bench --bin table1 --release [trials] [seed] [--jobs N] [--json PATH]`
//!
//! `--jobs N` sets the replication worker count (`0` / absent = the
//! `BIPS_JOBS` env var, else the machine width). Results are
//! bit-identical for every value; see `docs/OBSERVABILITY.md`.
//!
//! With `--json PATH`, a structured run report (config, seed, table rows,
//! full metric snapshot) is written to `PATH`; see `docs/OBSERVABILITY.md`.

// Bench binary: wall-clock reads feed the perf report
// (artifacts.wall_secs), not simulation results.
#![allow(clippy::disallowed_methods)]

use bips_bench::table1::{run_with_metrics, Table1Config};
use bips_bench::telemetry::{self, SnapshotConfig};

fn main() {
    let (args, json_path) = telemetry::take_flag(std::env::args().skip(1).collect(), "--json");
    let (args, jobs) = telemetry::take_jobs(args);
    let mut args = args.into_iter();
    let mut cfg = Table1Config {
        jobs,
        ..Table1Config::default()
    };
    if let Some(t) = args.next() {
        cfg.trials = t.parse().expect("trials must be an integer");
    }
    if let Some(s) = args.next() {
        cfg.seed = s.parse().expect("seed must be an integer");
    }
    let wall_start = std::time::Instant::now();
    let (result, mut metrics) = run_with_metrics(&cfg);
    let wall_secs = wall_start.elapsed().as_secs_f64();
    print!("{}", result.render());
    eprintln!(
        "[{} trials, jobs={}, {:.2} s wall]",
        cfg.trials,
        desim::par::resolve_jobs(cfg.jobs),
        wall_secs
    );
    println!("\n— telemetry (accumulated over {} trials) —", cfg.trials);
    print!("{metrics}");

    if let Some(path) = json_path {
        // The discovery experiment only exercises the baseband; fold in a
        // small full-deployment run so the report carries the complete
        // metric catalog (lan.*, mobility.*, core.*, engine.*).
        let snapshot = telemetry::system_snapshot(&SnapshotConfig {
            seed: cfg.seed,
            ..SnapshotConfig::default()
        });
        metrics.merge(&snapshot);
        let mut report = result.to_report(&cfg);
        report.artifact("wall_secs", wall_secs);
        report.metrics(&metrics);
        report.write_json(&path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }
}
