//! Networked serving-path load bench: the 1M-user `server_throughput`
//! workload driven through `bips-serve` over real loopback sockets.
//!
//! For each workload this binary first replays the trace in-process
//! ([`run_sharded`] at jobs 1, 4, and 8 — all three must agree
//! bit-for-bit), then serves the same trace over loopback TCP at 1, 4,
//! and 8 client connections (an in-process `bips-serve` thread per
//! config, flush jobs matching the connection count). Every socket
//! run's answer checksum and flush-ack checksum must equal the
//! in-process ones — the standing proof that framing, batching, and
//! connection interleaving are invisible in the answers — and the
//! refusal to report numbers over diverging answers carries over from
//! `server_throughput`.
//!
//! Usage:
//!   cargo run -p bips-bench --bin net_throughput --release -- \
//!       [--smoke] [--json PATH] [--check FILE] [--mix Q:U] \
//!       [--connect HOST:PORT [--conns N]]
//!
//! `--mix Q:U` re-tunes the workloads to a query:update preset
//! (`80:20` default, `50:50`, `99:1`); non-default mixes suffix the
//! section names (`smoke` → `smoke_50_50`). In `--connect` mode the
//! external `bips-serve` only holds login state, so any mix works
//! against the same server instance.
//!
//! `--json PATH` writes a `bips-run-report/v1` document with a section
//! per workload holding `socket_c{N}` blocks (end-to-end RTT HDR
//! quantiles — p50/p99/p999 — queries/sec, checksums; schema in
//! `docs/OBSERVABILITY.md`). `--check FILE` gates end-to-end p99
//! latency against a committed baseline: more than 20% above the
//! baseline's `socket_c{N}.p99_us` fails.
//!
//! `--connect HOST:PORT` is the two-process mode CI's network smoke
//! job uses: instead of spawning in-process servers, the client drives
//! one externally launched `bips-serve` (which must carry the same
//! workload), verifies the checksums against an in-process replay, and
//! shuts the server down over the socket.

// Bench binary: wall-clock reads feed the perf report, not simulation
// results.
#![allow(clippy::disallowed_methods)]

use std::sync::Arc;

use bips_bench::loadgen::{
    build_service, generate_trace, run_sharded, run_socket, Dial, Mix, ModeResult, Workload,
};
use bips_bench::serve::{Bind, Server};
use bips_bench::telemetry::take_flag;
use desim::report::{hdr_json, Json, RunReport};

/// Client connection counts exercised in in-process mode; server flush
/// jobs follow the same values.
const CONNS: [usize; 3] = [1, 4, 8];

fn socket_json(r: &ModeResult) -> Json {
    let hdr = r.latency_hdr();
    let mut j = Json::object();
    j.set("queries_per_sec", r.queries_per_sec())
        .set("p50_us", r.percentile_us(0.50))
        .set("p99_us", r.percentile_us(0.99))
        .set("p999_us", hdr.quantile(0.999) as f64 / 1000.0)
        .set("latency_hdr_ns", hdr_json(&hdr))
        .set("query_secs", r.query_secs)
        .set("total_secs", r.total_secs)
        .set("found", r.found)
        .set("checksum", format!("{:016x}", r.checksum))
        .set("ack_checksum", format!("{:016x}", r.ack_checksum));
    j
}

fn print_row(label: &str, r: &ModeResult) {
    let hdr = r.latency_hdr();
    println!(
        "  {label}: {:>9.0} q/s  e2e p50 {:>8.2} us  p99 {:>8.2} us  p999 {:>9.2} us  ({:.2} s queries)",
        r.queries_per_sec(),
        r.percentile_us(0.50),
        r.percentile_us(0.99),
        hdr.quantile(0.999) as f64 / 1000.0,
        r.query_secs,
    );
}

/// Same flat textual extraction as `server_throughput` (documented
/// schema, no JSON parser needed).
fn lookup(json: &str, section: &str, path: &[&str]) -> Option<f64> {
    let mut at = json.find(&format!("\"{section}\""))?;
    for key in path {
        at += json[at..].find(&format!("\"{key}\""))?;
    }
    let rest = &json[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

struct SocketResult {
    workload_name: &'static str,
    conns: usize,
    result: ModeResult,
}

/// End-to-end p99 gate: each socket config must stay within 20% of the
/// committed baseline's p99.
fn check_against(baseline_json: &str, results: &[SocketResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for s in results {
        let key = format!("socket_c{}", s.conns);
        let Some(base_p99) = lookup(baseline_json, s.workload_name, &[&key, "p99_us"]) else {
            continue; // baseline lacks this config — nothing to gate on
        };
        let p99 = s.result.percentile_us(0.99);
        if p99 > base_p99 * 1.2 {
            violations.push(format!(
                "{}: {key} e2e p99 {p99:.2} us, >20% above baseline {base_p99:.2} us",
                s.workload_name
            ));
        }
    }
    violations
}

/// In-process replay at jobs 1/4/8; all three must agree bit-for-bit.
/// Returns the jobs-1 run as the reference.
fn inproc_reference(w: &Workload, trace: &bips_bench::loadgen::Trace) -> ModeResult {
    let mut reference: Option<ModeResult> = None;
    for jobs in [1usize, 4, 8] {
        let (r, _) = run_sharded(w, trace, jobs);
        if let Some(base) = &reference {
            assert_eq!(
                r.checksum, base.checksum,
                "{}: in-process checksum differs between jobs 1 and {jobs}",
                w.name
            );
            assert_eq!(
                r.ack_checksum, base.ack_checksum,
                "{}: in-process ack checksum differs between jobs 1 and {jobs}",
                w.name
            );
        } else {
            reference = Some(r);
        }
    }
    reference.expect("at least one jobs config ran")
}

fn verify(w: &Workload, conns: usize, socket: &ModeResult, reference: &ModeResult) {
    assert_eq!(
        socket.checksum, reference.checksum,
        "{}: socket answers at {conns} conns diverged from in-process",
        w.name
    );
    assert_eq!(
        socket.ack_checksum, reference.ack_checksum,
        "{}: socket flush acks at {conns} conns diverged from in-process",
        w.name
    );
    assert_eq!(socket.found, reference.found);
    assert_eq!(socket.latencies_ns.len() as u64, w.queries());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (args, json_path) = take_flag(args, "--json");
    let (args, check_path) = take_flag(args, "--check");
    let (args, connect) = take_flag(args, "--connect");
    let (args, conns_flag) = take_flag(args, "--conns");
    let (args, mix_arg) = take_flag(args, "--mix");
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let mix = match &mix_arg {
        Some(s) => Mix::parse(s).unwrap_or_else(|| {
            eprintln!("--mix must be one of 80:20, 50:50, 99:1 (got {s})");
            std::process::exit(2);
        }),
        None => Mix::default(),
    };

    let mut report = RunReport::new("net_throughput", Workload::smoke().seed);
    let mut results: Vec<SocketResult> = Vec::new();

    if let Some(addr) = connect {
        // Two-process mode: one run against an external bips-serve.
        let w = if smoke_only {
            Workload::smoke().with_mix(mix)
        } else {
            Workload::full().with_mix(mix)
        };
        let conns: usize = conns_flag.map_or(4, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("--conns must be a positive integer");
                std::process::exit(2);
            })
        });
        eprintln!("[{}] in-process reference ...", w.name);
        let trace = generate_trace(&w);
        let (reference, _) = run_sharded(&w, &trace, 1);
        eprintln!(
            "[{}] socket replay against {addr} ({conns} conns) ...",
            w.name
        );
        let r = run_socket(&w, &trace, &Dial::Tcp(addr.clone()), conns, true).unwrap_or_else(|e| {
            eprintln!("socket replay against {addr} failed: {e}");
            std::process::exit(2);
        });
        verify(&w, conns, &r, &reference);
        println!("== {} over {addr} ==", w.name);
        print_row(&format!("socket_c{conns}"), &r);
        println!(
            "  checksums match in-process ({:016x} / {:016x})",
            r.checksum, r.ack_checksum
        );
        let mut section = Json::object();
        section.set(&format!("socket_c{conns}"), socket_json(&r));
        report.section(w.name, section);
        results.push(SocketResult {
            workload_name: w.name,
            conns,
            result: r,
        });
    } else {
        let workloads = if smoke_only {
            vec![Workload::smoke().with_mix(mix)]
        } else {
            vec![
                Workload::full().with_mix(mix),
                Workload::smoke().with_mix(mix),
            ]
        };
        for w in workloads {
            eprintln!(
                "[{}] {} users, {} cells, {} ticks x ({} moves + {} queries)",
                w.name,
                w.users,
                w.cells(),
                w.ticks,
                w.updates_per_tick,
                w.queries_per_tick
            );
            eprintln!("[{}] in-process reference at jobs 1/4/8 ...", w.name);
            let trace = generate_trace(&w);
            let reference = inproc_reference(&w, &trace);
            let mut section = Json::object();
            let mut config = Json::object();
            config
                .set("users", w.users)
                .set("cells", w.cells())
                .set("mix", mix.name())
                .set("ticks", w.ticks)
                .set("shards", w.shards)
                .set("seed", w.seed);
            section.set("config", config);
            section.set("inproc_jobs1", socket_json(&reference));
            println!("== {} ==", w.name);
            print_row("inproc   ", &reference);
            for conns in CONNS {
                eprintln!("[{}] socket replay at {conns} conns ...", w.name);
                let svc = Arc::new(build_service(&w));
                let server = Server::bind(&Bind::Tcp("127.0.0.1:0".to_string()), svc, conns)
                    .unwrap_or_else(|e| {
                        eprintln!("cannot bind loopback listener: {e}");
                        std::process::exit(2);
                    });
                let Some(addr) = server.tcp_addr() else {
                    eprintln!("tcp listener lost its address");
                    std::process::exit(2);
                };
                let handle = std::thread::spawn(move || server.serve());
                let r = run_socket(&w, &trace, &Dial::Tcp(addr.to_string()), conns, true)
                    .unwrap_or_else(|e| {
                        eprintln!("socket replay at {conns} conns failed: {e}");
                        std::process::exit(2);
                    });
                let stats = handle.join().unwrap_or_else(|_| {
                    eprintln!("server thread panicked");
                    std::process::exit(2);
                });
                verify(&w, conns, &r, &reference);
                print_row(&format!("socket_c{conns}"), &r);
                section.set(&format!("socket_c{conns}"), socket_json(&r));
                let mut metrics = desim::metrics::MetricSet::new();
                stats.export_metrics(&mut metrics);
                if w.name == "full" && conns == 4 {
                    report.metrics(&metrics);
                }
                results.push(SocketResult {
                    workload_name: w.name,
                    conns,
                    result: r,
                });
            }
            println!(
                "  all socket checksums match in-process at jobs 1/4/8 ({:016x} / {:016x})",
                reference.checksum, reference.ack_checksum
            );
            report.section(w.name, section);
        }
    }

    if let Some(path) = &json_path {
        report.write_json(path).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {path}");
    }

    if let Some(path) = &check_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        let violations = check_against(&baseline, &results);
        if violations.is_empty() {
            eprintln!("check against {path}: ok");
        } else {
            for v in &violations {
                eprintln!("REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}
