//! # bips-bench — the experiment harness
//!
//! One module per paper artifact. Each experiment is a plain function
//! from a config + seed to a result struct with a `render()` that prints
//! the same rows/series the paper reports; the `bin/` targets call these
//! and the Criterion benches time their building blocks.
//!
//! | paper artifact | module | binary |
//! |----------------|--------|--------|
//! | §4.1 Table 1 (discovery time by starting train) | [`table1`] | `table1` |
//! | Figure 2 (discovery probability vs time, 2–20 slaves) | [`figure2`] | `figure2` |
//! | §4.2/§5 (3.84 s → ≈95 %, 15.4 s dwell, 24 % load) | [`duty`] | `duty_cycle` |
//! | §2 (update-on-change tracking, offline paths) | [`e2e`] | `tracking_e2e` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod duty;
pub mod e2e;
pub mod figure2;
pub mod loadgen;
pub mod serve;
pub mod table1;
pub mod telemetry;
pub mod toprender;

/// Formats a probability in the paper's percent style.
pub fn pct(p: f64) -> String {
    format!("{:5.1}%", p * 100.0)
}
