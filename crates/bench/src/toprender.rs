//! Rendering for `bips-top`, the serving-engine operator view.
//!
//! Takes a `bips-run-report/v1` document produced by
//! `server_throughput --json` and renders a terminal dashboard: one
//! header block with the three modes' throughput and the tracing
//! overhead, then one row per shard with queries/sec, HDR latency
//! quantiles, the seqlock read-retry rate, and trace-ring occupancy.
//! Pure string-in/string-out so the binary stays a thin I/O shell and
//! the layout is unit-testable.

use desim::report::Json;

/// Reads a number out of any numeric [`Json`] variant.
fn num(j: &Json) -> Option<f64> {
    match j {
        Json::UInt(v) => Some(*v as f64),
        Json::Int(v) => Some(*v as f64),
        Json::Num(v) => Some(*v),
        _ => None,
    }
}

fn get_num(obj: &Json, key: &str) -> Option<f64> {
    obj.get(key).and_then(num)
}

/// A fixed-width unicode occupancy bar in `[0, 1]`.
fn bar(frac: f64, width: usize) -> String {
    let frac = frac.clamp(0.0, 1.0);
    let filled = (frac * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

/// Picks the section to render: `name` if given, else the first
/// top-level object that carries a `shards` array.
fn pick_section<'a>(
    report: &'a Json,
    name: Option<&'a str>,
) -> Result<(&'a str, &'a Json), String> {
    if let Some(n) = name {
        let s = report
            .get(n)
            .ok_or_else(|| format!("no section {n:?} in report"))?;
        return Ok((n, s));
    }
    let Json::Obj(pairs) = report else {
        return Err("report root is not an object".to_string());
    };
    pairs
        .iter()
        .find(|(_, v)| v.get("shards").is_some())
        .map(|(k, v)| (k.as_str(), v))
        .ok_or_else(|| "report has no section with a shards array".to_string())
}

/// Renders the dashboard for one section of `report`.
///
/// `section`: section name to render (e.g. `full`, `smoke`); `None`
/// picks the first section that has a per-shard breakdown.
pub fn render(report: &Json, section: Option<&str>) -> Result<String, String> {
    let (name, sec) = pick_section(report, section)?;
    let experiment = match report.get("experiment") {
        Some(Json::Str(s)) => s.as_str(),
        _ => "?",
    };
    let mut out = String::new();
    out.push_str(&format!("bips-top — {experiment} [{name}]\n"));

    if let Some(cfg) = sec.get("config") {
        out.push_str(&format!(
            "workload: {:.0} users, {:.0} cells, {:.0} shards, seed {:.0}\n",
            get_num(cfg, "users").unwrap_or(0.0),
            get_num(cfg, "cells").unwrap_or(0.0),
            get_num(cfg, "shards").unwrap_or(0.0),
            get_num(cfg, "seed").unwrap_or(0.0),
        ));
    }
    for mode in ["baseline", "sharded", "traced"] {
        let Some(m) = sec.get(mode) else { continue };
        let qps = get_num(m, "queries_per_sec").unwrap_or(0.0);
        let p99 = get_num(m, "p99_us").unwrap_or(0.0);
        let p999 = m
            .get("latency_hdr_ns")
            .and_then(|h| get_num(h, "p999"))
            .map(|ns| ns / 1000.0);
        match p999 {
            Some(p999) => out.push_str(&format!(
                "{mode:>9}: {qps:>10.0} q/s   p99 {p99:>8.2} us   p999 {p999:>8.2} us\n"
            )),
            None => out.push_str(&format!("{mode:>9}: {qps:>10.0} q/s   p99 {p99:>8.2} us\n")),
        }
    }
    if let Some(speedup) = sec.get("speedup") {
        if let Some(ovh) = get_num(speedup, "tracing_overhead") {
            out.push_str(&format!(
                "tracing overhead: {:.1}% of untraced throughput\n",
                (1.0 - ovh) * 100.0
            ));
        }
    }
    if let Some(tr) = sec.get("tracing") {
        out.push_str(&format!(
            "trace events: {:.0} recorded, {:.0} dropped\n",
            get_num(tr, "recorded").unwrap_or(0.0),
            get_num(tr, "dropped").unwrap_or(0.0),
        ));
    }

    let Some(Json::Arr(rows)) = sec.get("shards") else {
        return Err(format!("section {name:?} has no shards array"));
    };
    out.push('\n');
    out.push_str("shard      q/s   queries   p50 us   p999 us  retry/kq  ring occupancy\n");
    for row in rows {
        let shard = get_num(row, "shard").unwrap_or(-1.0);
        let qps = get_num(row, "queries_per_sec").unwrap_or(0.0);
        let queries = get_num(row, "queries").unwrap_or(0.0);
        let p50 = get_num(row, "p50_us").unwrap_or(0.0);
        let p999 = get_num(row, "p999_us").unwrap_or(0.0);
        // Seqlock read retries per thousand queries; reports from
        // before the seqlock engine simply render 0.
        let retries = get_num(row, "read_retries").unwrap_or(0.0);
        let per_kq = if queries > 0.0 {
            retries * 1000.0 / queries
        } else {
            0.0
        };
        let occ = get_num(row, "ring_occupancy").unwrap_or(0.0);
        out.push_str(&format!(
            "{shard:>5.0} {qps:>8.0} {queries:>9.0} {p50:>8.2} {p999:>9.2} {per_kq:>9.2}  [{}] {:>3.0}%\n",
            bar(occ, 20),
            occ * 100.0
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Json {
        Json::parse(
            r#"{
              "schema": "bips-run-report/v1",
              "experiment": "server_throughput",
              "smoke": {
                "config": {"users": 100000, "cells": 64, "shards": 2, "seed": 2003},
                "baseline": {"queries_per_sec": 12000.5, "p99_us": 80.0},
                "sharded": {"queries_per_sec": 2000000.0, "p99_us": 1.5},
                "traced": {"queries_per_sec": 1900000.0, "p99_us": 1.6,
                           "latency_hdr_ns": {"p999": 9000}},
                "speedup": {"queries_per_sec": 166.0, "tracing_overhead": 0.95},
                "tracing": {"recorded": 360000, "dropped": 0},
                "shards": [
                  {"shard": 0, "queries": 80000, "queries_per_sec": 950000.0,
                   "p50_us": 0.4, "p999_us": 9.0, "read_retries": 400,
                   "ring_recorded": 180000, "ring_occupancy": 1.0},
                  {"shard": 1, "queries": 80000, "queries_per_sec": 950000.0,
                   "p50_us": 0.4, "p999_us": 8.0,
                   "ring_recorded": 180000, "ring_occupancy": 0.5}
                ]
              }
            }"#,
        )
        .expect("sample parses")
    }

    #[test]
    fn renders_header_modes_and_shard_rows() {
        let out = render(&sample_report(), None).expect("render");
        assert!(out.contains("server_throughput [smoke]"));
        assert!(out.contains("baseline:"));
        assert!(out.contains("traced:"));
        assert!(out.contains("p999     9.00 us"));
        assert!(out.contains("tracing overhead: 5.0%"));
        assert!(out.contains("360000 recorded"));
        // Two shard rows, occupancy bars at 100% and 50%. Shard 0's
        // 400 retries over 80k queries is 5/kq; shard 1's missing
        // read_retries (a pre-seqlock report) renders as 0.
        assert!(out.contains("retry/kq"));
        assert!(out.contains("     5.00  [####################] 100%"));
        assert!(out.contains("     0.00  [##########..........]  50%"));
    }

    #[test]
    fn explicit_section_and_missing_section() {
        let r = sample_report();
        assert!(render(&r, Some("smoke")).is_ok());
        let err = render(&r, Some("full")).expect_err("missing section");
        assert!(err.contains("no section"));
    }

    #[test]
    fn report_without_shards_is_an_error() {
        let r = Json::parse(r#"{"experiment": "x", "smoke": {"config": {}}}"#).expect("parses");
        assert!(render(&r, None).is_err());
        assert!(render(&r, Some("smoke")).is_err());
    }

    #[test]
    fn bar_clamps_and_scales() {
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(bar(0.5, 4), "##..");
        assert_eq!(bar(7.0, 4), "####");
        assert_eq!(bar(-1.0, 4), "....");
    }
}
