//! `bips-serve`: the sharded engine behind a real socket.
//!
//! Serves a [`ShardedService`] over loopback TCP or a Unix-domain
//! socket using the exact `lan::rpc` frame format the simulated
//! deployment speaks, length-delimited for the byte stream by
//! `lan::stream` (`[len u32 LE][rpc frame]`). The design is
//! thread-per-connection over blocking std sockets — no event-loop
//! dependency exists in this workspace and none is added:
//!
//! * **Incremental reframing.** Each connection owns a
//!   [`StreamReframer`]; reads land in a fixed 64 KiB buffer and frames
//!   are cut zero-copy ([`RpcCodec::decode_ref_bytes`] borrows straight
//!   from the reframer's buffer). Partial reads, coalesced frames, and
//!   frames straddling reads all reassemble identically — the stream
//!   proptests pin this down.
//! * **Coalesced writes.** All responses produced by one read batch are
//!   encoded back-to-back into one write buffer (in place:
//!   [`begin_stream_frame`] / [`RpcCodec::append_response_header`] /
//!   [`ShardedService::serve_payload`] / [`end_stream_frame`], no
//!   per-response allocation) and flushed with a single `write_all`.
//! * **Bounded backpressure.** The server reads at most 64 KiB before
//!   serving and responding, and flushes the write buffer whenever it
//!   crosses the coalesce limit (256 KiB) mid-batch. A client that
//!   pipelines faster than the engine serves is throttled by the
//!   socket's own flow control; per-connection memory stays bounded by
//!   the reframer cap plus the coalesce limit.
//! * **Graceful shutdown.** A [`Request::Shutdown`] frame acks, stops
//!   the acceptor, and drains: every live connection keeps being served
//!   until its peer closes, and the acceptor joins them all before
//!   [`Server::serve`] returns.
//!
//! Protocol errors — bytes that do not deframe, frames that are not
//! RPC requests, payloads outside the serving subset — drop that
//! connection (counted in `serve.dropped`) without disturbing others.
//!
//! [`Request::Shutdown`]: bips_core::protocol::Request::Shutdown

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bips_core::service::{Served, ShardedService};
use bips_lan::network::HostId;
use bips_lan::rpc::{RpcCodec, RpcFrame};
use bips_lan::stream::{begin_stream_frame, end_stream_frame, StreamReframer};
use desim::metrics::MetricSet;

/// Read buffer size per connection; also the most the server ingests
/// from one peer before serving what it has.
const READ_BUF: usize = 64 * 1024;

/// Flush the coalesced write buffer once it grows past this, bounding
/// per-connection memory under deep client pipelining.
const WRITE_COALESCE_LIMIT: usize = 256 * 1024;

/// Where to listen: loopback TCP or a Unix-domain socket path.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP on the given address, e.g. `127.0.0.1:0` for an ephemeral
    /// port.
    Tcp(String),
    /// Unix-domain socket at the given path (unlinked on bind).
    Uds(PathBuf),
}

enum Listener {
    Tcp(TcpListener),
    Uds(UnixListener, PathBuf),
}

enum Conn {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Uds(s) => s.flush(),
        }
    }
}

/// Lifetime counters for one [`Server::serve`] run, shared across connection
/// threads.
#[derive(Default)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns: AtomicU64,
    /// Request frames served.
    pub frames: AtomicU64,
    /// Bytes read off sockets.
    pub bytes_in: AtomicU64,
    /// Bytes written to sockets.
    pub bytes_out: AtomicU64,
    /// Connections dropped on protocol errors (bad frame, non-request,
    /// unserveable payload).
    pub dropped: AtomicU64,
}

impl ServeStats {
    /// Exports the counters as `serve.*` metrics (catalogued in
    /// `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, metrics: &mut MetricSet) {
        metrics.set_counter("serve.conns", self.conns.load(Ordering::Relaxed));
        metrics.set_counter("serve.frames", self.frames.load(Ordering::Relaxed));
        metrics.set_counter("serve.bytes_in", self.bytes_in.load(Ordering::Relaxed));
        metrics.set_counter("serve.bytes_out", self.bytes_out.load(Ordering::Relaxed));
        metrics.set_counter("serve.dropped", self.dropped.load(Ordering::Relaxed));
    }
}

/// A bound, not-yet-serving server: split from [`Server::serve`] so callers
/// can learn the actual address (ephemeral ports) before the first
/// client connects.
pub struct Server {
    listener: Listener,
    svc: Arc<ShardedService>,
    flush_jobs: usize,
}

impl Server {
    /// Binds the listener. For [`Bind::Uds`], a stale socket file at
    /// the path is unlinked first.
    pub fn bind(bind: &Bind, svc: Arc<ShardedService>, flush_jobs: usize) -> io::Result<Server> {
        let listener = match bind {
            Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr)?),
            Bind::Uds(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Uds(UnixListener::bind(path)?, path.clone())
            }
        };
        Ok(Server {
            listener,
            svc,
            flush_jobs,
        })
    }

    /// The bound TCP address, if TCP.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Uds(..) => None,
        }
    }

    /// Human-readable listen address for the `LISTENING` stdout line.
    pub fn addr_string(&self) -> String {
        match &self.listener {
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|e| format!("<tcp addr error: {e}>")),
            Listener::Uds(_, path) => path.display().to_string(),
        }
    }

    /// Accepts and serves connections until a client sends
    /// [`Request::Shutdown`](bips_core::protocol::Request::Shutdown),
    /// then drains every live connection and returns the run's
    /// counters.
    pub fn serve(self) -> ServeStats {
        let stats = Arc::new(ServeStats::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        let mut next_host: usize = 1;
        loop {
            let conn = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
                Listener::Uds(l, _) => l.accept().map(|(s, _)| Conn::Uds(s)),
            };
            if shutdown.load(Ordering::SeqCst) {
                break; // the accept above was the shutdown wake-up
            }
            let conn = match conn {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("accept error: {e}");
                    continue;
                }
            };
            stats.conns.fetch_add(1, Ordering::Relaxed);
            let svc = Arc::clone(&self.svc);
            let stats_c = Arc::clone(&stats);
            let shutdown_c = Arc::clone(&shutdown);
            let wake = self.wake_target();
            let host = HostId::new(next_host);
            next_host += 1;
            let jobs = self.flush_jobs;
            let handle = std::thread::Builder::new()
                .name(format!("bips-serve-conn-{next_host}"))
                .spawn(move || {
                    if let Err(e) = serve_conn(conn, host, &svc, jobs, &stats_c, &shutdown_c, &wake)
                    {
                        // Peer resets mid-write are business as usual
                        // for a drain; anything else is worth a line.
                        if e.kind() != io::ErrorKind::ConnectionReset
                            && e.kind() != io::ErrorKind::BrokenPipe
                        {
                            eprintln!("connection error: {e}");
                        }
                    }
                });
            match handle {
                Ok(h) => workers.push(h),
                Err(e) => eprintln!("spawn error: {e}"),
            }
        }
        // Drain: serve every live connection to its close.
        for h in workers {
            let _ = h.join();
        }
        if let Listener::Uds(_, path) = &self.listener {
            let _ = std::fs::remove_file(path);
        }
        match Arc::try_unwrap(stats) {
            Ok(s) => s,
            Err(arc) => ServeStats {
                conns: AtomicU64::new(arc.conns.load(Ordering::Relaxed)),
                frames: AtomicU64::new(arc.frames.load(Ordering::Relaxed)),
                bytes_in: AtomicU64::new(arc.bytes_in.load(Ordering::Relaxed)),
                bytes_out: AtomicU64::new(arc.bytes_out.load(Ordering::Relaxed)),
                dropped: AtomicU64::new(arc.dropped.load(Ordering::Relaxed)),
            },
        }
    }

    /// The address a shutdown handler dials to unblock `accept`.
    fn wake_target(&self) -> Bind {
        match &self.listener {
            Listener::Tcp(l) => Bind::Tcp(
                l.local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| String::new()),
            ),
            Listener::Uds(_, path) => Bind::Uds(path.clone()),
        }
    }
}

/// Dials the listener once so a blocked `accept` returns and observes
/// the shutdown flag.
fn wake_acceptor(bind: &Bind) {
    match bind {
        Bind::Tcp(addr) => drop(TcpStream::connect(addr)),
        Bind::Uds(path) => drop(UnixStream::connect(path)),
    }
}

/// Serves one connection to EOF, protocol error, or shutdown.
fn serve_conn(
    mut conn: Conn,
    host: HostId,
    svc: &ShardedService,
    flush_jobs: usize,
    stats: &ServeStats,
    shutdown: &AtomicBool,
    wake: &Bind,
) -> io::Result<()> {
    let mut reframer = StreamReframer::new();
    let mut rbuf = vec![0u8; READ_BUF];
    let mut wbuf: Vec<u8> = Vec::with_capacity(4096);
    let mut path_scratch = Vec::new();
    'conn: loop {
        let n = match conn.read(&mut rbuf) {
            Ok(0) => break 'conn,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        stats.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
        reframer.extend(&rbuf[..n]);
        // Cut and serve every complete frame this read delivered,
        // coalescing the responses into one write.
        wbuf.clear();
        loop {
            let frame = match reframer.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => {
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                    flush_out(&mut conn, &mut wbuf, stats)?;
                    break 'conn; // oversized prefix: drop conn
                }
            };
            let Some(RpcFrame::Request { corr, payload, .. }) =
                RpcCodec::decode_ref_bytes(host, frame)
            else {
                stats.dropped.fetch_add(1, Ordering::Relaxed);
                flush_out(&mut conn, &mut wbuf, stats)?;
                break 'conn; // not an rpc request: drop conn
            };
            // Encode the response in place: [len][dir corr][payload].
            let frame_at = begin_stream_frame(&mut wbuf);
            RpcCodec::append_response_header(&mut wbuf, corr);
            match svc.serve_payload(payload, flush_jobs, &mut path_scratch, &mut wbuf) {
                Served::Reply => {
                    end_stream_frame(&mut wbuf, frame_at);
                    stats.frames.fetch_add(1, Ordering::Relaxed);
                }
                Served::Shutdown => {
                    end_stream_frame(&mut wbuf, frame_at);
                    stats.frames.fetch_add(1, Ordering::Relaxed);
                    flush_out(&mut conn, &mut wbuf, stats)?;
                    if !shutdown.swap(true, Ordering::SeqCst) {
                        wake_acceptor(wake);
                    }
                    break 'conn;
                }
                Served::Malformed(_) | Served::Unsupported => {
                    wbuf.truncate(frame_at);
                    stats.dropped.fetch_add(1, Ordering::Relaxed);
                    flush_out(&mut conn, &mut wbuf, stats)?;
                    break 'conn;
                }
            }
            if wbuf.len() >= WRITE_COALESCE_LIMIT {
                flush_out(&mut conn, &mut wbuf, stats)?;
            }
        }
        flush_out(&mut conn, &mut wbuf, stats)?;
    }
    Ok(())
}

/// Writes and clears the coalesced response buffer.
fn flush_out(conn: &mut Conn, wbuf: &mut Vec<u8>, stats: &ServeStats) -> io::Result<()> {
    if wbuf.is_empty() {
        return Ok(());
    }
    conn.write_all(wbuf)?;
    stats
        .bytes_out
        .fetch_add(wbuf.len() as u64, Ordering::Relaxed);
    wbuf.clear();
    Ok(())
}
