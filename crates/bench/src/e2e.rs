//! Experiment E2E — the full tracking pipeline (§2).
//!
//! The paper's architecture claims two efficiency properties that the
//! evaluation section does not measure directly but the design leans on:
//!
//! 1. **update-on-change** presence reporting keeps the LAN/server load
//!    far below naive per-sweep re-announcement;
//! 2. the **offline all-pairs** path table keeps location queries cheap
//!    at run time.
//!
//! This experiment runs the complete deployment — building, radios,
//! walkers, LAN, server — and reports tracking accuracy, presence-update
//! counts vs. the naive alternative, login convergence, and end-to-end
//! query latency.

use bips_core::protocol::LocateOutcome;
use bips_core::system::{BipsSystem, SysEvent, SystemConfig, UserSpec};
use bips_mobility::walker::WalkMode;
use desim::stats::OnlineStats;
use desim::{SimDuration, SimTime};

/// Configuration of the end-to-end run.
#[derive(Debug, Clone)]
pub struct E2eConfig {
    /// Number of mobile users walking the department.
    pub users: usize,
    /// Virtual run length.
    pub duration: SimDuration,
    /// Sampling period for tracking accuracy.
    pub accuracy_sample: SimDuration,
    /// Master seed.
    pub seed: u64,
    /// Worker knob, recorded in the run report for provenance. The e2e
    /// run is one coupled engine, so there is nothing to parallelise;
    /// the knob exists so every experiment CLI accepts `--jobs`.
    pub jobs: usize,
    /// Fold mobility crossing counters into path weights each sweep
    /// round, so the pipeline exercises real topology churn.
    pub congestion: bool,
}

impl Default for E2eConfig {
    fn default() -> Self {
        E2eConfig {
            users: 6,
            duration: SimDuration::from_secs(1200),
            accuracy_sample: SimDuration::from_secs(30),
            seed: 42,
            jobs: 0,
            congestion: true,
        }
    }
}

/// The end-to-end report.
#[derive(Debug, Clone)]
pub struct E2eResult {
    /// Users that completed login.
    pub logged_in: usize,
    /// Total users.
    pub users: usize,
    /// Mean tracking accuracy over the sampled timeline.
    pub accuracy: OnlineStats,
    /// Update-on-change messages actually sent.
    pub updates_sent: u64,
    /// What naive per-sweep reporting would have sent.
    pub naive_updates: u64,
    /// End-to-end query latencies, seconds.
    pub query_latency: OnlineStats,
    /// Queries that found their target.
    pub queries_found: u64,
    /// Queries issued.
    pub queries_issued: u64,
}

/// Runs the experiment.
pub fn run(cfg: &E2eConfig) -> E2eResult {
    run_with_metrics(cfg).0
}

/// Runs the experiment, also exporting the deployment's full metric
/// snapshot (every substrate) at the end of the run.
pub fn run_with_metrics(cfg: &E2eConfig) -> (E2eResult, desim::MetricSet) {
    let sys_cfg = SystemConfig {
        congestion_weights: cfg.congestion,
        ..SystemConfig::default()
    };
    let mut builder = BipsSystem::builder(sys_cfg);
    for i in 0..cfg.users {
        builder = builder.user(UserSpec::new(format!("user{i}"), i % 9).mode(
            WalkMode::RandomWalk {
                pause: (SimDuration::from_secs(10), SimDuration::from_secs(60)),
            },
        ));
    }
    let mut engine = builder.into_engine(cfg.seed);

    // Warm-up: give everyone time to be discovered and logged in.
    let warmup = SimTime::ZERO + SimDuration::from_secs(120);
    engine.run_until(warmup);

    // Issue a query between a fixed pair every 90 s.
    if cfg.users >= 2 {
        let mut t = warmup + SimDuration::from_secs(10);
        let end = SimTime::ZERO + cfg.duration;
        let mut flip = false;
        while t < end {
            let (a, b) = if flip { (1, 0) } else { (0, 1) };
            engine.schedule(t, SysEvent::locate(format!("user{a}"), format!("user{b}")));
            flip = !flip;
            t += SimDuration::from_secs(90);
        }
    }

    // Sample accuracy along the run.
    let mut accuracy = OnlineStats::new();
    let mut t = warmup;
    let end = SimTime::ZERO + cfg.duration;
    while t < end {
        t += cfg.accuracy_sample;
        engine.run_until(t.min(end));
        accuracy.push(engine.world().tracking_accuracy());
    }

    let sys = engine.world();
    let stats = sys.stats();
    let mut query_latency = OnlineStats::new();
    let mut queries_found = 0;
    for q in sys.queries() {
        if let (Some(ans), Some(outcome)) = (q.answered_at, q.outcome.as_ref()) {
            query_latency.push((ans - q.issued_at).as_secs_f64());
            if matches!(outcome, LocateOutcome::Found { .. }) {
                queries_found += 1;
            }
        }
    }
    let logged_in = (0..cfg.users)
        .filter(|i| sys.is_logged_in(&format!("user{i}")))
        .count();

    let mut metrics = desim::MetricSet::new();
    sys.export_metrics(&mut metrics, end);

    (
        E2eResult {
            logged_in,
            users: cfg.users,
            accuracy,
            updates_sent: stats.presence_updates_sent,
            naive_updates: stats.naive_announcements,
            query_latency,
            queries_found,
            queries_issued: stats.queries_issued,
        },
        metrics,
    )
}

impl E2eResult {
    /// Renders the report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "E2E — full BIPS tracking pipeline");
        let _ = writeln!(
            out,
            "  users logged in:         {}/{}",
            self.logged_in, self.users
        );
        let _ = writeln!(
            out,
            "  tracking accuracy:       {} (mean over samples)",
            crate::pct(self.accuracy.mean())
        );
        let _ = writeln!(
            out,
            "  presence updates sent:   {:>8}  (update-on-change)",
            self.updates_sent
        );
        let _ = writeln!(
            out,
            "  naive would have sent:   {:>8}  ({}x more)",
            self.naive_updates,
            if self.updates_sent > 0 {
                self.naive_updates / self.updates_sent.max(1)
            } else {
                0
            }
        );
        let _ = writeln!(
            out,
            "  queries found target:    {}/{}",
            self.queries_found, self.queries_issued
        );
        if !self.query_latency.is_empty() {
            let _ = writeln!(
                out,
                "  query latency:           {:.2} s mean (n={})",
                self.query_latency.mean(),
                self.query_latency.len()
            );
        }
        out
    }

    /// Builds the structured run report (without metrics — the binary
    /// attaches those).
    pub fn to_report(&self, cfg: &E2eConfig) -> desim::RunReport {
        let mut report = desim::RunReport::new("tracking_e2e", cfg.seed);
        report
            .config("users", cfg.users)
            .config("duration_s", cfg.duration.as_secs_f64())
            .config("jobs", desim::par::resolve_jobs(cfg.jobs) as u64)
            .config("congestion", u64::from(cfg.congestion));
        report
            .artifact("logged_in", self.logged_in)
            .artifact("tracking_accuracy_mean", self.accuracy.mean())
            .artifact("presence_updates_sent", self.updates_sent)
            .artifact("naive_updates", self.naive_updates)
            .artifact("queries_found", self.queries_found)
            .artifact("queries_issued", self.queries_issued)
            .artifact("query_latency_mean_s", self.query_latency.mean());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> E2eConfig {
        E2eConfig {
            users: 3,
            duration: SimDuration::from_secs(500),
            accuracy_sample: SimDuration::from_secs(25),
            seed: 5,
            ..E2eConfig::default()
        }
    }

    #[test]
    fn pipeline_converges_saves_messages_and_answers_queries() {
        let r = run(&small());
        assert_eq!(r.logged_in, r.users, "not everyone logged in");
        assert!(
            r.accuracy.mean() > 0.6,
            "tracking accuracy too low: {}",
            r.accuracy.mean()
        );
        assert!(r.updates_sent > 0);
        // Mobile users churn cells, so the saving is smaller than for
        // stationary ones (cf. the 5x system-level test) but must remain
        // a clear win.
        assert!(
            r.naive_updates as f64 > 1.5 * r.updates_sent as f64,
            "update-on-change saved little: {} vs {}",
            r.updates_sent,
            r.naive_updates
        );
        assert!(r.queries_issued > 0);
        assert!(
            r.query_latency.len() + 1 >= r.queries_issued,
            "most queries should complete: answered {} of {}",
            r.query_latency.len(),
            r.queries_issued
        );
    }

    #[test]
    fn report_renders() {
        let r = run(&E2eConfig {
            users: 2,
            duration: SimDuration::from_secs(300),
            accuracy_sample: SimDuration::from_secs(50),
            seed: 6,
            ..E2eConfig::default()
        });
        let s = r.render();
        assert!(s.contains("tracking accuracy"));
        assert!(s.contains("presence updates"));
    }
}
