//! Ablations over the design choices DESIGN.md calls out.
//!
//! Each ablation re-runs a paper experiment with one mechanism altered,
//! quantifying how much that mechanism matters:
//!
//! * **collision handling** (the paper's BlueHoc extension) on/off;
//! * **response backoff bound** (spec 1023 slots) swept down to 0;
//! * **scan-frequency model** (shared BlueHoc sequence vs per-device);
//! * **slave scan interval** (the 1.28 s default vs sparser scanning).

use bt_baseband::hop::Train;
use bt_baseband::params::{DutyCycle, StartTrain};
use bt_baseband::params::{MediumConfig, ScanFreqModel, ScanPattern, StartFreq, TrainPolicy};
use bt_baseband::{BdAddr, DiscoveryScenario, MasterConfig, SlaveConfig};
use desim::{SeedDeriver, SimDuration};

/// Shared shape for an ablation outcome: a label and the fraction of
/// slaves discovered within the first inquiry phase and the horizon.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Variant label.
    pub label: String,
    /// Mean fraction discovered within the first 1 s inquiry phase.
    pub in_first_phase: f64,
    /// Mean fraction discovered within 14 s.
    pub in_horizon: f64,
}

fn fig2_like_scenario(
    slaves: usize,
    collisions: bool,
    scan_model: ScanFreqModel,
    backoff: u64,
    scan: ScanPattern,
) -> DiscoveryScenario {
    fig2_like_scenario_with_errors(slaves, collisions, scan_model, backoff, scan, 1.0)
}

fn fig2_like_scenario_with_errors(
    slaves: usize,
    collisions: bool,
    scan_model: ScanFreqModel,
    backoff: u64,
    scan: ScanPattern,
    packet_success: f64,
) -> DiscoveryScenario {
    let master = MasterConfig::new(BdAddr::new(0xA0_0000))
        .duty(DutyCycle::periodic(
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        ))
        .trains(TrainPolicy::Single)
        .start_train(StartTrain::Fixed(Train::A));
    let slave_cfgs: Vec<SlaveConfig> = (0..slaves)
        .map(|i| {
            SlaveConfig::new(BdAddr::new(0x10_0000 + i as u64))
                .scan(scan)
                .start_freq(StartFreq::InTrain(Train::A))
                .backoff_max_slots(backoff)
                .halt_when_discovered(true)
        })
        .collect();
    let medium = MediumConfig {
        fhs_collisions: collisions,
        scan_freq_model: scan_model,
        packet_success,
        ..MediumConfig::default()
    };
    DiscoveryScenario::new(master, slave_cfgs, SimDuration::from_secs(14)).medium(medium)
}

fn measure(
    sc: &DiscoveryScenario,
    seed: u64,
    reps: u64,
    jobs: usize,
    label: impl Into<String>,
) -> AblationPoint {
    let outs = sc.run_replications_jobs(seed, reps, jobs);
    let first: f64 = outs
        .iter()
        .map(|o| o.fraction_discovered_by(SimDuration::from_secs(1)))
        .sum::<f64>()
        / outs.len() as f64;
    let horizon: f64 = outs
        .iter()
        .map(|o| o.fraction_discovered_by(SimDuration::from_secs(14)))
        .sum::<f64>()
        / outs.len() as f64;
    AblationPoint {
        label: label.into(),
        in_first_phase: first,
        in_horizon: horizon,
    }
}

/// Ablation A1: FHS collision handling on/off (20 slaves).
pub fn collision_handling(reps: u64, seed: u64, jobs: usize) -> Vec<AblationPoint> {
    let base = ScanPattern::continuous_inquiry();
    vec![
        measure(
            &fig2_like_scenario(20, true, ScanFreqModel::SharedSequence, 1023, base),
            seed,
            reps,
            jobs,
            "collisions modeled (paper)",
        ),
        measure(
            &fig2_like_scenario(20, false, ScanFreqModel::SharedSequence, 1023, base),
            seed,
            reps,
            jobs,
            "collisions ignored (vanilla BlueHoc)",
        ),
    ]
}

/// Ablation A2: response-backoff bound sweep (20 slaves, collisions on).
pub fn backoff_bound(reps: u64, seed: u64, jobs: usize) -> Vec<AblationPoint> {
    let base = ScanPattern::continuous_inquiry();
    // One SeedDeriver stream per arm, keyed by the bound. The previous
    // `seed ^ b` collided with the master seed at `b = 0`, making the
    // zero-backoff arm share every replication stream with any other
    // experiment run off the bare seed.
    let arms = SeedDeriver::new(seed);
    [0u64, 127, 255, 511, 1023, 2047]
        .iter()
        .map(|&b| {
            measure(
                &fig2_like_scenario(20, true, ScanFreqModel::SharedSequence, b, base),
                arms.derive(b),
                reps,
                jobs,
                format!("backoff ≤ {b} slots"),
            )
        })
        .collect()
}

/// Ablation A3: scan-frequency model (10 slaves).
pub fn scan_freq_model(reps: u64, seed: u64, jobs: usize) -> Vec<AblationPoint> {
    let base = ScanPattern::continuous_inquiry();
    vec![
        measure(
            &fig2_like_scenario(10, true, ScanFreqModel::SharedSequence, 1023, base),
            seed,
            reps,
            jobs,
            "shared sequence (BlueHoc)",
        ),
        measure(
            &fig2_like_scenario(10, true, ScanFreqModel::PerDevice, 1023, base),
            seed,
            reps,
            jobs,
            "per-device phases (spec clocks)",
        ),
    ]
}

/// Ablation A4: slave scan duty (10 slaves): continuous vs spec windows.
pub fn scan_duty(reps: u64, seed: u64, jobs: usize) -> Vec<AblationPoint> {
    vec![
        measure(
            &fig2_like_scenario(
                10,
                true,
                ScanFreqModel::SharedSequence,
                1023,
                ScanPattern::continuous_inquiry(),
            ),
            seed,
            reps,
            jobs,
            "continuous inquiry scan (Fig. 2)",
        ),
        measure(
            &fig2_like_scenario(
                10,
                true,
                ScanFreqModel::SharedSequence,
                1023,
                ScanPattern::spec_inquiry(),
            ),
            seed,
            reps,
            jobs,
            "spec 11.25 ms / 1.28 s windows",
        ),
        measure(
            &fig2_like_scenario(
                10,
                true,
                ScanFreqModel::SharedSequence,
                1023,
                ScanPattern::alternating(),
            ),
            seed,
            reps,
            jobs,
            "alternating inquiry/page scan (Tab. 1)",
        ),
    ]
}

/// Ablation A5: channel errors (10 slaves). The paper assumes an
/// error-free environment; this quantifies how much a lossy cell edge
/// slows discovery.
pub fn channel_errors(reps: u64, seed: u64, jobs: usize) -> Vec<AblationPoint> {
    let base = ScanPattern::continuous_inquiry();
    // One SeedDeriver stream per arm, keyed by the arm index. The
    // previous `seed ^ p.to_bits()` XORed raw float bit patterns into
    // the seed — correlated streams across arms (and a collision with
    // the master seed whenever `p.to_bits()` XORs to zero structure).
    let arms = SeedDeriver::new(seed);
    [1.0f64, 0.9, 0.7, 0.5]
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            measure(
                &fig2_like_scenario_with_errors(
                    10,
                    true,
                    ScanFreqModel::SharedSequence,
                    1023,
                    base,
                    p,
                ),
                arms.derive(i as u64),
                reps,
                jobs,
                format!("packet success {:.0}%", p * 100.0),
            )
        })
        .collect()
}

/// Renders a set of ablation points.
pub fn render(title: &str, points: &[AblationPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "  {:<42} {:>10} {:>10}", "variant", "≤1s", "≤14s");
    for p in points {
        let _ = writeln!(
            out,
            "  {:<42} {:>10} {:>10}",
            p.label,
            crate::pct(p.in_first_phase),
            crate::pct(p.in_horizon)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collisions_hurt_first_phase() {
        let pts = collision_handling(30, 1, 0);
        assert!(pts[1].in_first_phase > pts[0].in_first_phase + 0.01);
    }

    #[test]
    fn tiny_backoff_collapses_under_shared_scanning() {
        let pts = backoff_bound(20, 2, 0);
        let zero = &pts[0];
        let spec = pts.iter().find(|p| p.label.contains("1023")).unwrap();
        assert!(
            zero.in_horizon < spec.in_horizon,
            "no backoff should be strictly worse: {} vs {}",
            zero.in_horizon,
            spec.in_horizon
        );
    }

    #[test]
    fn per_device_phases_have_fewer_collisions() {
        let pts = scan_freq_model(30, 3, 0);
        let shared = &pts[0];
        let per_dev = &pts[1];
        assert!(per_dev.in_first_phase >= shared.in_first_phase - 0.02);
    }

    #[test]
    fn sparser_scanning_discovers_slower() {
        let pts = scan_duty(20, 4, 0);
        let continuous = &pts[0];
        let spec = &pts[1];
        assert!(
            spec.in_first_phase < continuous.in_first_phase,
            "windowed scan cannot beat continuous: {} vs {}",
            spec.in_first_phase,
            continuous.in_first_phase
        );
    }

    #[test]
    fn channel_errors_slow_discovery() {
        let pts = channel_errors(25, 5, 0);
        let clean = &pts[0];
        let lossy = pts.last().unwrap();
        assert!(
            lossy.in_first_phase < clean.in_first_phase,
            "50% packet loss must hurt: {} vs {}",
            lossy.in_first_phase,
            clean.in_first_phase
        );
    }

    #[test]
    fn render_lists_variants() {
        let s = render("A1", &collision_handling(5, 5, 0));
        assert!(s.contains("vanilla BlueHoc"));
    }
}
