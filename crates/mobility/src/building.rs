//! The physical building: rooms, doors, coverage zones.
//!
//! A [`Building`] is the geometric twin of the BIPS workstation graph
//! (paper §2): one node per significant room, an edge where a physical
//! path connects two rooms, and a circular Bluetooth coverage zone
//! (~10 m radius) around each workstation. `bips-core` derives its
//! weighted shortest-path graph from exactly this structure.

use crate::geometry::Point;

/// Default coverage radius of a BIPS workstation (paper: "circles with a
/// radius of 10 meter").
pub const DEFAULT_COVERAGE_RADIUS_M: f64 = 10.0;

/// Identifies a room within one [`Building`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoomId(usize);

impl RoomId {
    /// Creates an id from a raw index (as returned by
    /// [`Building::add_room`]).
    pub fn new(index: usize) -> RoomId {
        RoomId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A circular radio coverage zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellZone {
    /// The room whose workstation provides this cell.
    pub room: RoomId,
    /// Center of coverage (the workstation position).
    pub center: Point,
    /// Coverage radius in meters.
    pub radius: f64,
}

#[derive(Debug, Clone)]
struct Room {
    name: String,
    position: Point,
    coverage_radius: f64,
    neighbors: Vec<(RoomId, f64)>,
}

/// A building floor plan: named rooms with positions, coverage radii and
/// door connections.
///
/// # Example
///
/// ```
/// use bips_mobility::{Building, Point};
/// let mut b = Building::new();
/// let lobby = b.add_room("lobby", Point::new(0.0, 0.0));
/// let lab = b.add_room("lab", Point::new(18.0, 0.0));
/// b.connect(lobby, lab);
/// assert_eq!(b.distance(lobby, lab), Some(18.0));
/// assert_eq!(b.neighbors(lobby), vec![lab]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Building {
    rooms: Vec<Room>,
}

impl Building {
    /// An empty building.
    pub fn new() -> Building {
        Building::default()
    }

    /// Adds a room with the default 10 m coverage radius.
    pub fn add_room(&mut self, name: impl Into<String>, position: Point) -> RoomId {
        self.add_room_with_radius(name, position, DEFAULT_COVERAGE_RADIUS_M)
    }

    /// Adds a room with an explicit coverage radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn add_room_with_radius(
        &mut self,
        name: impl Into<String>,
        position: Point,
        radius: f64,
    ) -> RoomId {
        assert!(radius > 0.0 && radius.is_finite(), "bad radius {radius}");
        let id = RoomId(self.rooms.len());
        self.rooms.push(Room {
            name: name.into(),
            position,
            coverage_radius: radius,
            neighbors: Vec::new(),
        });
        id
    }

    /// Connects two rooms with a door/corridor whose length is the
    /// Euclidean distance between them.
    ///
    /// # Panics
    ///
    /// Panics if either id is invalid, `a == b`, or they are already
    /// connected.
    pub fn connect(&mut self, a: RoomId, b: RoomId) {
        let d = self.position(a).distance(self.position(b));
        self.connect_with_distance(a, b, d);
    }

    /// Connects two rooms with an explicit walking distance (e.g. around a
    /// corner, longer than the straight line).
    ///
    /// # Panics
    ///
    /// Panics if either id is invalid, `a == b`, the rooms are already
    /// connected, or `distance` is not positive and finite.
    pub fn connect_with_distance(&mut self, a: RoomId, b: RoomId, distance: f64) {
        assert!(a.0 < self.rooms.len(), "invalid room {a:?}");
        assert!(b.0 < self.rooms.len(), "invalid room {b:?}");
        assert!(a != b, "cannot connect a room to itself");
        assert!(
            distance > 0.0 && distance.is_finite(),
            "bad distance {distance}"
        );
        assert!(
            !self.rooms[a.0].neighbors.iter().any(|&(n, _)| n == b),
            "rooms already connected"
        );
        self.rooms[a.0].neighbors.push((b, distance));
        self.rooms[b.0].neighbors.push((a, distance));
    }

    /// Number of rooms.
    pub fn num_rooms(&self) -> usize {
        self.rooms.len()
    }

    /// All room ids.
    pub fn rooms(&self) -> impl Iterator<Item = RoomId> + '_ {
        (0..self.rooms.len()).map(RoomId)
    }

    /// A room's display name.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn name(&self, r: RoomId) -> &str {
        &self.rooms[r.0].name
    }

    /// A room's workstation position.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn position(&self, r: RoomId) -> Point {
        self.rooms[r.0].position
    }

    /// A room's coverage zone.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn cell(&self, r: RoomId) -> CellZone {
        let room = &self.rooms[r.0];
        CellZone {
            room: r,
            center: room.position,
            radius: room.coverage_radius,
        }
    }

    /// All coverage zones.
    pub fn cells(&self) -> Vec<CellZone> {
        self.rooms().map(|r| self.cell(r)).collect()
    }

    /// Rooms adjacent to `r`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid id.
    pub fn neighbors(&self, r: RoomId) -> Vec<RoomId> {
        self.rooms[r.0].neighbors.iter().map(|&(n, _)| n).collect()
    }

    /// Weighted adjacency of `r`: `(neighbor, walking distance)` pairs.
    /// An invalid id has no adjacency.
    pub fn edges(&self, r: RoomId) -> &[(RoomId, f64)] {
        self.rooms.get(r.0).map_or(&[], |room| &room.neighbors)
    }

    /// Walking distance of the direct connection `a – b`, if connected.
    pub fn distance(&self, a: RoomId, b: RoomId) -> Option<f64> {
        self.rooms
            .get(a.0)?
            .neighbors
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, d)| d)
    }

    /// Looks a room up by name (first match).
    pub fn room_by_name(&self, name: &str) -> Option<RoomId> {
        self.rooms.iter().position(|r| r.name == name).map(RoomId)
    }

    /// A ready-made academic-department floor plan: nine rooms along two
    /// corridors, as in the paper's motivating scenario. Useful for
    /// examples and tests.
    pub fn academic_department() -> Building {
        let mut b = Building::new();
        // Two corridors of offices 18 m apart, lobby at the west end.
        let lobby = b.add_room("lobby", Point::new(0.0, 9.0));
        let north: Vec<RoomId> = (0..4)
            .map(|i| {
                b.add_room(
                    format!("office-n{}", i + 1),
                    Point::new(15.0 + 18.0 * i as f64, 18.0),
                )
            })
            .collect();
        let south: Vec<RoomId> = (0..4)
            .map(|i| {
                b.add_room(
                    format!("office-s{}", i + 1),
                    Point::new(15.0 + 18.0 * i as f64, 0.0),
                )
            })
            .collect();
        b.connect(lobby, north[0]);
        b.connect(lobby, south[0]);
        for w in north.windows(2) {
            b.connect(w[0], w[1]);
        }
        for w in south.windows(2) {
            b.connect(w[0], w[1]);
        }
        // A stairwell links the corridor ends.
        b.connect_with_distance(north[3], south[3], 22.0);
        b
    }

    /// A multi-floor office: `floors` copies of a six-room floor plan,
    /// linked by a stairwell room per floor (stair flights count 15 m of
    /// walking). Positions offset each floor by 100 m in y so coverage
    /// circles never span floors — the geometric stand-in for RF not
    /// penetrating slabs.
    ///
    /// # Panics
    ///
    /// Panics if `floors` is zero.
    pub fn multi_floor_office(floors: usize) -> Building {
        assert!(floors > 0, "at least one floor");
        let mut b = Building::new();
        let mut stairs: Vec<RoomId> = Vec::new();
        for f in 0..floors {
            let y0 = 100.0 * f as f64;
            let stair = b.add_room(format!("stair-f{f}"), Point::new(0.0, y0));
            let rooms: Vec<RoomId> = (0..5)
                .map(|i| {
                    b.add_room(
                        format!("room-f{f}-{i}"),
                        Point::new(16.0 + 16.0 * i as f64, y0),
                    )
                })
                .collect();
            b.connect(stair, rooms[0]);
            for w in rooms.windows(2) {
                b.connect(w[0], w[1]);
            }
            if let Some(&below) = stairs.last() {
                b.connect_with_distance(below, stair, 15.0);
            }
            stairs.push(stair);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rooms_and_edges() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(6.0, 8.0));
        b.connect(a, c);
        assert_eq!(b.num_rooms(), 2);
        assert_eq!(b.distance(a, c), Some(10.0));
        assert_eq!(b.distance(c, a), Some(10.0));
        assert_eq!(b.name(c), "c");
        assert_eq!(b.room_by_name("a"), Some(a));
        assert_eq!(b.room_by_name("zzz"), None);
    }

    #[test]
    fn explicit_distance_overrides_euclidean() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(1.0, 0.0));
        b.connect_with_distance(a, c, 25.0);
        assert_eq!(b.distance(a, c), Some(25.0));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_rejected() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(1.0, 0.0));
        b.connect(a, c);
        b.connect(c, a);
    }

    #[test]
    #[should_panic(expected = "itself")]
    fn self_loop_rejected() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        b.connect(a, a);
    }

    #[test]
    fn default_cell_radius_matches_paper() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(3.0, 4.0));
        let cell = b.cell(a);
        assert_eq!(cell.radius, 10.0);
        assert_eq!(cell.center, Point::new(3.0, 4.0));
        assert_eq!(cell.room, a);
    }

    #[test]
    fn multi_floor_office_has_isolated_floor_coverage() {
        let b = Building::multi_floor_office(3);
        assert_eq!(b.num_rooms(), 18);
        // Coverage circles never overlap across floors.
        for a in b.rooms() {
            for c in b.rooms() {
                if a == c {
                    continue;
                }
                let (pa, pc) = (b.position(a), b.position(c));
                let same_floor = (pa.y - pc.y).abs() < 1.0;
                if !same_floor {
                    assert!(
                        pa.distance(pc) > b.cell(a).radius + b.cell(c).radius,
                        "cross-floor coverage overlap {a:?}/{c:?}"
                    );
                }
            }
        }
        // Still one connected building via the stairwells.
        let mut seen = vec![false; b.num_rooms()];
        let mut stack = vec![RoomId::new(0)];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for n in b.neighbors(r) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    stack.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn academic_department_is_connected() {
        let b = Building::academic_department();
        assert_eq!(b.num_rooms(), 9);
        // BFS from room 0 reaches everything.
        let mut seen = vec![false; b.num_rooms()];
        let mut stack = vec![RoomId::new(0)];
        seen[0] = true;
        while let Some(r) = stack.pop() {
            for n in b.neighbors(r) {
                if !seen[n.index()] {
                    seen[n.index()] = true;
                    stack.push(n);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "disconnected building");
        // Every room is coverable: neighbors within a sane walking range.
        for r in b.rooms() {
            for (n, d) in b.edges(r) {
                assert!(*d > 0.0 && *d < 50.0, "edge {r:?}-{n:?} = {d}");
            }
        }
    }
}
