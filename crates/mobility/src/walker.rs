//! Walker configuration: who walks where, how fast.
//!
//! The paper's users are students, visitors, professors and staff moving
//! through a department at up to 1.5 m/s. Three movement modes cover the
//! experiments: a fixed [route](WalkMode::Route) (visitor crossing the
//! building), an endless [random walk](WalkMode::RandomWalk) over the room
//! graph (ambient population), and [standing still](WalkMode::Stationary)
//! (the paper's "standing or walking" users).

use crate::building::RoomId;
use desim::SimDuration;

/// Lowest speed a *walking* leg may draw: redrawing below this models the
/// paper's observation that a "walking user" averages ≈1.3 m/s even
/// though the population range starts at 0.
pub const DEFAULT_MIN_LEG_SPEED_M_S: f64 = 0.3;

/// How a walker chooses its next destination.
#[derive(Debug, Clone, PartialEq)]
pub enum WalkMode {
    /// Visit the listed rooms in order (each consecutive pair must be
    /// connected), then stop.
    Route(Vec<RoomId>),
    /// Cycle through the listed rooms forever (the list's last room must
    /// connect back to the first).
    Loop(Vec<RoomId>),
    /// Pick a uniformly random neighbor each leg, pausing in each room
    /// for a uniform time in the given range.
    RandomWalk {
        /// Pause range between legs.
        pause: (SimDuration, SimDuration),
    },
    /// Never move.
    Stationary,
}

/// Configuration of one pedestrian.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerConfig {
    /// The room the walker starts in.
    pub start: RoomId,
    /// Per-leg speed draw range, m/s (paper: `[0, 1.5]`).
    speed_range: (f64, f64),
    /// Draws below this are rejected so legs terminate.
    min_leg_speed: f64,
    /// Movement mode.
    pub mode: WalkMode,
}

impl WalkerConfig {
    /// A walker starting in `start` with paper-default speeds and a
    /// random-walk mode pausing 5–30 s per room.
    pub fn new(start: RoomId) -> WalkerConfig {
        WalkerConfig {
            start,
            speed_range: (0.0, 1.5),
            min_leg_speed: DEFAULT_MIN_LEG_SPEED_M_S,
            mode: WalkMode::RandomWalk {
                pause: (SimDuration::from_secs(5), SimDuration::from_secs(30)),
            },
        }
    }

    /// Sets the movement mode.
    pub fn mode(mut self, mode: WalkMode) -> WalkerConfig {
        self.mode = mode;
        self
    }

    /// Sets the speed draw range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, negative, or has a non-positive
    /// upper bound.
    pub fn speed_range(mut self, lo: f64, hi: f64) -> WalkerConfig {
        assert!(
            lo >= 0.0 && hi >= lo && hi > 0.0,
            "bad speed range [{lo}, {hi}]"
        );
        self.speed_range = (lo, hi);
        self
    }

    /// Sets the minimum accepted leg speed.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not strictly positive or exceeds the range's
    /// upper bound.
    pub fn min_leg_speed(mut self, min: f64) -> WalkerConfig {
        assert!(
            min > 0.0 && min <= self.speed_range.1,
            "bad min speed {min}"
        );
        self.min_leg_speed = min;
        self
    }

    /// Draws a leg speed: uniform in the range, redrawn until it clears
    /// the minimum.
    pub fn draw_speed(&self, rng: &mut desim::SimRng) -> f64 {
        let (lo, hi) = self.speed_range;
        if hi <= self.min_leg_speed {
            return hi;
        }
        loop {
            let v = rng.uniform(lo, hi);
            if v >= self.min_leg_speed {
                return v;
            }
        }
    }

    /// The configured speed range.
    pub fn speeds(&self) -> (f64, f64) {
        self.speed_range
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = WalkerConfig::new(RoomId::new(0));
        assert_eq!(c.speeds(), (0.0, 1.5));
        assert!(matches!(c.mode, WalkMode::RandomWalk { .. }));
    }

    #[test]
    fn draw_speed_respects_floor_and_range() {
        let c = WalkerConfig::new(RoomId::new(0)).speed_range(0.0, 1.5);
        let mut rng = desim::SimRng::seed_from(1);
        for _ in 0..500 {
            let v = c.draw_speed(&mut rng);
            assert!((DEFAULT_MIN_LEG_SPEED_M_S..=1.5).contains(&v), "v={v}");
        }
    }

    #[test]
    fn degenerate_range_returns_upper_bound() {
        let c = WalkerConfig::new(RoomId::new(0))
            .speed_range(0.1, 0.2)
            .min_leg_speed(0.2);
        let mut rng = desim::SimRng::seed_from(2);
        assert_eq!(c.draw_speed(&mut rng), 0.2);
    }

    #[test]
    #[should_panic(expected = "bad speed range")]
    fn invalid_range_rejected() {
        let _ = WalkerConfig::new(RoomId::new(0)).speed_range(2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "bad min speed")]
    fn invalid_floor_rejected() {
        let _ = WalkerConfig::new(RoomId::new(0))
            .speed_range(0.0, 1.0)
            .min_leg_speed(2.0);
    }
}
