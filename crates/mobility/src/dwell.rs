//! Cell dwell-time arithmetic (paper §5).
//!
//! The paper sizes the master's operational cycle from how long a walking
//! user stays inside one coverage cell: *"Considering that a mobile user
//! normally walks with a speed in the range [0, 1.5] meters per second
//! and that the diameter of the coverage area is about 20 m, we can
//! estimate that the average walking user will spend 15.4 s in the
//! piconet (20 m : 1.3 m/s)."* This module reproduces that estimate and
//! provides sharper (chord-aware, Monte-Carlo) variants the paper's
//! back-of-envelope skips.

use crate::geometry::{segment_circle_crossings, Point};
use desim::SimRng;

/// The paper's walking-speed range, m/s.
pub const SPEED_RANGE_M_S: (f64, f64) = (0.0, 1.5);

/// The effective mean speed the paper divides by (it excludes standing
/// users: 20 m / 15.4 s ≈ 1.3 m/s).
pub const PAPER_MEAN_SPEED_M_S: f64 = 1.3;

/// The paper's cell diameter (2 × 10 m radius).
pub const CELL_DIAMETER_M: f64 = 20.0;

/// Slowest speed that still counts as "walking" in dwell estimates
/// (standing users never cross a cell; the paper's 1.3 m/s average
/// implicitly excludes them).
pub const DEFAULT_WALKING_FLOOR_M_S: f64 = 0.3;

/// Time to cross `distance` meters at `speed` m/s.
///
/// # Panics
///
/// Panics if `speed` is not strictly positive or `distance` is negative.
pub fn crossing_time(distance: f64, speed: f64) -> f64 {
    assert!(speed > 0.0, "speed must be positive");
    assert!(distance >= 0.0, "negative distance");
    distance / speed
}

/// The paper's §5 estimate: a 20 m diameter at 1.3 m/s — ≈15.4 s.
pub fn paper_estimate_secs() -> f64 {
    crossing_time(CELL_DIAMETER_M, PAPER_MEAN_SPEED_M_S)
}

/// Mean chord length of a circle of radius `r` for chords induced by a
/// "random parallel-beam" crossing (entry offset uniform across the
/// diameter): `(π/4)·2r ≈ 0.785 · diameter`. The paper's diameter
/// assumption is therefore ~27 % optimistic for off-center crossings.
pub fn mean_chord_length(radius: f64) -> f64 {
    std::f64::consts::FRAC_PI_4 * 2.0 * radius
}

/// Monte-Carlo dwell time: walkers cross a cell of radius `radius` along
/// straight lines with uniformly random lateral offset and speed uniform
/// in `speed_range` (speeds below `min_speed` are redrawn — a standing
/// user never crosses). Returns the sample mean in seconds.
///
/// # Panics
///
/// Panics if `trials` is zero or the speed range is invalid.
pub fn monte_carlo_dwell_secs(
    radius: f64,
    speed_range: (f64, f64),
    min_speed: f64,
    trials: u32,
    rng: &mut SimRng,
) -> f64 {
    assert!(trials > 0, "zero trials");
    assert!(
        speed_range.0 <= speed_range.1 && speed_range.1 > 0.0,
        "bad speed range"
    );
    let mut total = 0.0;
    for _ in 0..trials {
        // Lateral offset strictly inside the circle so every walker
        // actually crosses.
        let offset = rng.uniform(-radius * 0.999, radius * 0.999);
        let start = Point::new(-2.0 * radius, offset);
        let end = Point::new(2.0 * radius, offset);
        let (t_in, t_out) = segment_circle_crossings(start, end, Point::new(0.0, 0.0), radius)
            .expect("crossing guaranteed by offset bound");
        let chord = (t_out - t_in) * start.distance(end);
        let mut speed = rng.uniform(speed_range.0, speed_range.1);
        while speed < min_speed {
            speed = rng.uniform(speed_range.0, speed_range.1);
        }
        total += chord / speed;
    }
    total / trials as f64
}

/// The master operational-cycle length implied by a dwell time: the paper
/// sets the cycle equal to the average cell-crossing time (15.4 s) so a
/// walker is inquired at least once per cell.
pub fn operational_cycle_secs(dwell_secs: f64) -> f64 {
    dwell_secs
}

/// Tracking load: the fraction of the operational cycle spent in inquiry
/// (paper: 3.84 s / 15.4 s ≈ 24 %).
pub fn tracking_load(inquiry_secs: f64, cycle_secs: f64) -> f64 {
    assert!(cycle_secs > 0.0, "zero cycle");
    inquiry_secs / cycle_secs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_reproduce() {
        let t = paper_estimate_secs();
        assert!((t - 15.3846).abs() < 1e-3, "got {t}");
        let load = tracking_load(3.84, t);
        assert!((load - 0.2496).abs() < 1e-3, "≈24 % load, got {load}");
    }

    #[test]
    fn chord_mean_is_pi_over_4_of_diameter() {
        assert!((mean_chord_length(10.0) - 15.7079).abs() < 1e-3);
    }

    #[test]
    fn monte_carlo_matches_analytic_shape() {
        let mut rng = SimRng::seed_from(42);
        // Fixed speed 1.3: dwell should approach mean chord / 1.3 ≈ 12.08 s.
        let mc = monte_carlo_dwell_secs(10.0, (1.3, 1.3), 0.0, 40_000, &mut rng);
        let expect = mean_chord_length(10.0) / 1.3;
        assert!((mc - expect).abs() < 0.15, "mc {mc} vs analytic {expect}");
    }

    #[test]
    fn slow_walkers_dwell_longer() {
        let mut rng = SimRng::seed_from(43);
        let fast = monte_carlo_dwell_secs(10.0, (1.4, 1.5), 0.1, 5_000, &mut rng);
        let slow = monte_carlo_dwell_secs(10.0, (0.4, 0.5), 0.1, 5_000, &mut rng);
        assert!(slow > 2.0 * fast, "slow {slow} fast {fast}");
    }

    #[test]
    fn min_speed_excludes_standers() {
        let mut rng = SimRng::seed_from(44);
        // Without the floor, near-zero speeds blow the mean up.
        let floored = monte_carlo_dwell_secs(10.0, SPEED_RANGE_M_S, 0.5, 20_000, &mut rng);
        assert!(floored < 40.0, "floored mean {floored}");
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_panics() {
        let _ = crossing_time(20.0, 0.0);
    }
}
