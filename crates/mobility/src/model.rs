//! The event-driven mobility process.
//!
//! [`MobilityModel`] moves walkers through a [`Building`] on the
//! [`desim`] engine. Motion is piecewise-linear: a *leg* connects two
//! room positions at a per-leg speed. When a leg starts the model
//! intersects it with every coverage circle
//! ([`segment_circle_crossings`])
//! and schedules the exact instants at which the walker enters and leaves
//! each cell — the signal the BIPS radio layer consumes via
//! [`set_in_range`](../../bt_baseband/medium/struct.Baseband.html#method.set_in_range).
//!
//! Like the other substrates, the model is written against
//! [`SubScheduler`] for embedding in the full-system simulation.

use std::collections::{BTreeSet, HashMap};

use desim::compose::SubScheduler;
use desim::stats::OnlineStats;
use desim::{SimDuration, SimTime};

use crate::building::{Building, RoomId};
#[allow(unused_imports)] // referenced by the module docs
use crate::geometry::segment_circle_crossings as _doc_anchor;
use crate::geometry::{inside_circle, segment_circle_crossings, Point};
use crate::walker::{WalkMode, WalkerConfig};

/// Identifies a walker within one [`MobilityModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WalkerId(usize);

impl WalkerId {
    /// Creates an id from a raw index (as returned by
    /// [`MobilityModel::add_walker`]).
    pub fn new(index: usize) -> WalkerId {
        WalkerId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A mobility event. Opaque; wrap and return to
/// [`MobilityModel::handle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MobEvent(Ev);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Bootstrap all walkers.
    Start,
    /// A walker reaches its leg destination.
    LegEnd { walker: usize, epoch: u32 },
    /// A walker crosses a cell boundary.
    Crossing {
        walker: usize,
        room: usize,
        enter: bool,
        epoch: u32,
    },
    /// A room pause ends.
    PauseEnd { walker: usize, epoch: u32 },
}

impl MobEvent {
    /// The bootstrap event: schedule once at simulation start.
    pub fn start() -> MobEvent {
        MobEvent(Ev::Start)
    }
}

/// Things the model tells its embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobNotification {
    /// A walker entered a room's coverage cell.
    CellEntered {
        /// Who.
        walker: WalkerId,
        /// Whose cell.
        room: RoomId,
        /// When.
        at: SimTime,
    },
    /// A walker left a room's coverage cell.
    CellExited {
        /// Who.
        walker: WalkerId,
        /// Whose cell.
        room: RoomId,
        /// When.
        at: SimTime,
    },
    /// A walker arrived at a room (leg end).
    Arrived {
        /// Who.
        walker: WalkerId,
        /// Where.
        room: RoomId,
        /// When.
        at: SimTime,
    },
    /// A route walker finished its itinerary.
    RouteDone {
        /// Who.
        walker: WalkerId,
        /// When.
        at: SimTime,
    },
}

/// Mobility counters and dwell-time statistics, exposed for tests and
/// experiment reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MobStats {
    /// Cell (coverage-circle) entries.
    pub cell_entries: u64,
    /// Per-cell entry counts, indexed by room; grows on demand. The
    /// congestion→edge-weight adapter folds these into path weights.
    pub per_cell_entries: Vec<u64>,
    /// Cell exits.
    pub cell_exits: u64,
    /// Room arrivals (leg ends).
    pub arrivals: u64,
    /// Completed `Route` itineraries.
    pub routes_done: u64,
    /// Per-visit cell dwell times in seconds (closed visits only: a
    /// walker still inside a cell at the end of a run has no sample).
    pub dwell_secs: OnlineStats,
}

#[derive(Debug, Clone)]
struct Leg {
    from: Point,
    to: Point,
    depart: SimTime,
    duration: SimDuration,
    dest: RoomId,
}

#[derive(Debug)]
struct WalkerRt {
    cfg: WalkerConfig,
    epoch: u32,
    at_room: RoomId,
    leg: Option<Leg>,
    /// Next index into the route (Route/Loop modes).
    route_pos: usize,
    /// Cells the walker is currently inside (room indices).
    /// Ordered set: `cells_of` iterates it, and iteration order
    /// must not depend on a hasher (workspace determinism).
    inside: BTreeSet<usize>,
}

/// The mobility process over one building.
#[derive(Debug)]
pub struct MobilityModel {
    building: Building,
    walkers: Vec<WalkerRt>,
    notifications: Vec<MobNotification>,
    started: bool,
    stats: MobStats,
    /// When each currently-open (walker, room) cell visit began.
    dwell_since: HashMap<(usize, usize), SimTime>,
}

impl MobilityModel {
    /// A model over `building` with no walkers yet.
    pub fn new(building: Building) -> MobilityModel {
        MobilityModel {
            building,
            walkers: Vec::new(),
            notifications: Vec::new(),
            started: false,
            stats: MobStats::default(),
            dwell_since: HashMap::new(),
        }
    }

    /// The building being walked.
    pub fn building(&self) -> &Building {
        &self.building
    }

    /// Adds a walker.
    ///
    /// # Panics
    ///
    /// Panics if the model already started, the start room is invalid, or
    /// a Route/Loop itinerary uses unconnected consecutive rooms.
    pub fn add_walker(&mut self, cfg: WalkerConfig) -> WalkerId {
        assert!(!self.started, "cannot add walkers after start");
        assert!(
            cfg.start.index() < self.building.num_rooms(),
            "invalid start room"
        );
        match &cfg.mode {
            WalkMode::Route(rooms) | WalkMode::Loop(rooms) => {
                assert!(!rooms.is_empty(), "empty itinerary");
                let mut prev = cfg.start;
                let looped: Vec<RoomId> = if matches!(cfg.mode, WalkMode::Loop(_)) {
                    rooms.iter().copied().chain([rooms[0]]).collect()
                } else {
                    rooms.clone()
                };
                for &r in &looped {
                    if r != prev {
                        assert!(
                            self.building.distance(prev, r).is_some(),
                            "itinerary leg {prev:?}→{r:?} not connected"
                        );
                    }
                    prev = r;
                }
            }
            WalkMode::RandomWalk { .. } | WalkMode::Stationary => {}
        }
        let id = WalkerId(self.walkers.len());
        let at_room = cfg.start;
        self.walkers.push(WalkerRt {
            cfg,
            epoch: 0,
            at_room,
            leg: None,
            route_pos: 0,
            inside: BTreeSet::new(),
        });
        id
    }

    /// Number of walkers.
    pub fn num_walkers(&self) -> usize {
        self.walkers.len()
    }

    /// A walker's position at time `now`.
    pub fn position(&self, w: WalkerId, now: SimTime) -> Point {
        let rt = &self.walkers[w.0];
        match &rt.leg {
            Some(leg) => {
                let t = now.saturating_since(leg.depart).as_secs_f64() / leg.duration.as_secs_f64();
                leg.from.lerp(leg.to, t.clamp(0.0, 1.0))
            }
            None => self.building.position(rt.at_room),
        }
    }

    /// The room a walker last arrived at (its "logical" room while in
    /// motion).
    pub fn room_of(&self, w: WalkerId) -> RoomId {
        self.walkers[w.0].at_room
    }

    /// The cells a walker is currently inside.
    pub fn cells_of(&self, w: WalkerId) -> Vec<RoomId> {
        // BTreeSet iterates in ascending order: already sorted.
        self.walkers[w.0]
            .inside
            .iter()
            .map(|&i| RoomId::new(i))
            .collect()
    }

    /// Drains accumulated notifications, oldest first.
    pub fn drain_notifications(&mut self) -> Vec<MobNotification> {
        std::mem::take(&mut self.notifications)
    }

    /// Counters and dwell-time statistics.
    pub fn stats(&self) -> &MobStats {
        &self.stats
    }

    /// Exports the model's counters into `metrics` under the
    /// `mobility.*` prefix (see `docs/OBSERVABILITY.md`).
    pub fn export_metrics(&self, metrics: &mut desim::MetricSet) {
        let s = &self.stats;
        metrics.set_counter("mobility.cell.entries", s.cell_entries);
        metrics.set_counter("mobility.cell.exits", s.cell_exits);
        metrics.set_counter("mobility.room.arrivals", s.arrivals);
        metrics.set_counter("mobility.route.completed", s.routes_done);
        metrics.observe_stats("mobility.cell.dwell_secs", &s.dwell_secs);
        metrics.gauge("mobility.walkers", self.walkers.len() as f64);
    }

    /// Launches every walker. Usually driven by [`MobEvent::start`].
    pub fn start<S: SubScheduler<MobEvent>>(&mut self, s: &mut S) {
        if self.started {
            return;
        }
        self.started = true;
        for w in 0..self.walkers.len() {
            // Initial containment: standing in the start room.
            let pos = self.building.position(self.walkers[w].at_room);
            self.sync_containment(w, pos, s.now());
            self.next_move(s, w);
        }
    }

    /// Processes one mobility event.
    pub fn handle<S: SubScheduler<MobEvent>>(&mut self, s: &mut S, event: MobEvent) {
        match event.0 {
            Ev::Start => self.start(s),
            Ev::LegEnd { walker, epoch } => {
                if self.walkers[walker].epoch != epoch {
                    return;
                }
                let dest = {
                    let rt = &mut self.walkers[walker];
                    let leg = rt.leg.take().expect("leg in progress");
                    rt.at_room = leg.dest;
                    leg.dest
                };
                self.stats.arrivals += 1;
                self.notifications.push(MobNotification::Arrived {
                    walker: WalkerId(walker),
                    room: dest,
                    at: s.now(),
                });
                // Containment safety net: motion events should have kept
                // `inside` current; re-sync exactly at the room point.
                let pos = self.building.position(dest);
                self.sync_containment(walker, pos, s.now());
                self.after_arrival(s, walker);
            }
            Ev::Crossing {
                walker,
                room,
                enter,
                epoch,
            } => {
                if self.walkers[walker].epoch != epoch {
                    return;
                }
                self.set_inside(walker, room, enter, s.now());
            }
            Ev::PauseEnd { walker, epoch } => {
                if self.walkers[walker].epoch != epoch {
                    return;
                }
                self.next_move(s, walker);
            }
        }
    }

    // ----- movement ----------------------------------------------------

    /// Decides and starts the walker's next action from its current room.
    fn next_move<S: SubScheduler<MobEvent>>(&mut self, s: &mut S, w: usize) {
        let mode = self.walkers[w].cfg.mode.clone();
        match mode {
            WalkMode::Stationary => {}
            WalkMode::Route(route) => {
                let pos = self.walkers[w].route_pos;
                if pos >= route.len() {
                    self.stats.routes_done += 1;
                    self.notifications.push(MobNotification::RouteDone {
                        walker: WalkerId(w),
                        at: s.now(),
                    });
                    return;
                }
                let dest = route[pos];
                self.walkers[w].route_pos += 1;
                if dest == self.walkers[w].at_room {
                    self.next_move(s, w);
                } else {
                    self.start_leg(s, w, dest);
                }
            }
            WalkMode::Loop(route) => {
                let pos = self.walkers[w].route_pos % route.len();
                let dest = route[pos];
                self.walkers[w].route_pos += 1;
                if dest == self.walkers[w].at_room {
                    self.next_move(s, w);
                } else {
                    self.start_leg(s, w, dest);
                }
            }
            WalkMode::RandomWalk { .. } => {
                let neighbors = self.building.neighbors(self.walkers[w].at_room);
                if neighbors.is_empty() {
                    return; // isolated room: nowhere to go
                }
                let dest = *s.rng().choose(&neighbors).expect("non-empty neighbor list");
                self.start_leg(s, w, dest);
            }
        }
    }

    /// After arriving: pause (random walk) or continue.
    fn after_arrival<S: SubScheduler<MobEvent>>(&mut self, s: &mut S, w: usize) {
        match self.walkers[w].cfg.mode.clone() {
            WalkMode::RandomWalk { pause } => {
                let lo = pause.0.as_micros();
                let hi = pause.1.as_micros().max(lo + 1);
                let wait = SimDuration::from_micros(s.rng().range_inclusive(lo, hi));
                let epoch = self.walkers[w].epoch;
                s.schedule(s.now() + wait, MobEvent(Ev::PauseEnd { walker: w, epoch }));
            }
            _ => self.next_move(s, w),
        }
    }

    /// Begins a leg toward an adjacent room, scheduling its end and every
    /// cell-boundary crossing along the way.
    fn start_leg<S: SubScheduler<MobEvent>>(&mut self, s: &mut S, w: usize, dest: RoomId) {
        let now = s.now();
        let from_room = self.walkers[w].at_room;
        let from = self.building.position(from_room);
        let to = self.building.position(dest);
        let walk_dist = self
            .building
            .distance(from_room, dest)
            .unwrap_or_else(|| from.distance(to));
        let speed = {
            let cfg = &self.walkers[w].cfg;
            cfg.draw_speed(s.rng())
        };
        let duration = SimDuration::from_secs_f64((walk_dist / speed).max(1e-6));
        let epoch = self.walkers[w].epoch;
        self.walkers[w].leg = Some(Leg {
            from,
            to,
            depart: now,
            duration,
            dest,
        });
        s.schedule(now + duration, MobEvent(Ev::LegEnd { walker: w, epoch }));

        // Schedule the exact enter/exit instants for every cell this leg
        // crosses. The straight segment approximates the walked path; an
        // edge with a longer walking distance is traversed slower, so the
        // *fractions* still map to the right instants on the segment.
        for cell in self.building.cells() {
            let Some((t_in, t_out)) = segment_circle_crossings(from, to, cell.center, cell.radius)
            else {
                continue;
            };
            let room = cell.room.index();
            if t_in > 0.0 {
                s.schedule(
                    now + mul_f(duration, t_in),
                    MobEvent(Ev::Crossing {
                        walker: w,
                        room,
                        enter: true,
                        epoch,
                    }),
                );
            } else {
                // Already inside at departure.
                self.set_inside(w, room, true, now);
            }
            if t_out < 1.0 {
                s.schedule(
                    now + mul_f(duration, t_out),
                    MobEvent(Ev::Crossing {
                        walker: w,
                        room,
                        enter: false,
                        epoch,
                    }),
                );
            }
        }
        // Cells the walker was inside but whose circle the segment never
        // intersects cannot occur (the start point would intersect), so
        // exits are fully covered by the crossings above.
    }

    // ----- containment --------------------------------------------------

    fn set_inside(&mut self, w: usize, room: usize, enter: bool, at: SimTime) {
        let changed = if enter {
            self.walkers[w].inside.insert(room)
        } else {
            self.walkers[w].inside.remove(&room)
        };
        if changed {
            let n = if enter {
                self.stats.cell_entries += 1;
                if room >= self.stats.per_cell_entries.len() {
                    self.stats.per_cell_entries.resize(room + 1, 0);
                }
                self.stats.per_cell_entries[room] += 1;
                self.dwell_since.insert((w, room), at);
                MobNotification::CellEntered {
                    walker: WalkerId(w),
                    room: RoomId::new(room),
                    at,
                }
            } else {
                self.stats.cell_exits += 1;
                if let Some(since) = self.dwell_since.remove(&(w, room)) {
                    self.stats.dwell_secs.push((at - since).as_secs_f64());
                }
                MobNotification::CellExited {
                    walker: WalkerId(w),
                    room: RoomId::new(room),
                    at,
                }
            };
            self.notifications.push(n);
        }
    }

    /// Forces `inside` to match the instantaneous position (used at
    /// bootstrap and as a safety net at leg ends).
    fn sync_containment(&mut self, w: usize, pos: Point, at: SimTime) {
        for cell in self.building.cells() {
            let is_in = inside_circle(pos, cell.center, cell.radius);
            let was_in = self.walkers[w].inside.contains(&cell.room.index());
            if is_in != was_in {
                self.set_inside(w, cell.room.index(), is_in, at);
            }
        }
    }
}

fn mul_f(d: SimDuration, f: f64) -> SimDuration {
    SimDuration::from_secs_f64(d.as_secs_f64() * f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{Context, Engine, World};

    struct Mob {
        model: MobilityModel,
        notes: Vec<MobNotification>,
    }

    impl World for Mob {
        type Event = MobEvent;
        fn handle(&mut self, ctx: &mut Context<MobEvent>, ev: MobEvent) {
            self.model.handle(ctx, ev);
            self.notes.extend(self.model.drain_notifications());
        }
    }

    /// Two rooms 30 m apart: the 10 m cells do not overlap.
    fn two_room_building() -> (Building, RoomId, RoomId) {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(30.0, 0.0));
        b.connect(a, c);
        (b, a, c)
    }

    fn engine(model: MobilityModel, seed: u64) -> Engine<Mob> {
        let mut e = Engine::new(
            Mob {
                model,
                notes: vec![],
            },
            seed,
        );
        e.schedule(SimTime::ZERO, MobEvent::start());
        e
    }

    #[test]
    fn stationary_walker_is_inside_its_cell() {
        let (b, a, _) = two_room_building();
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(WalkerConfig::new(a).mode(WalkMode::Stationary));
        let mut e = engine(model, 1);
        e.run_until(SimTime::from_secs(10));
        assert_eq!(e.world().model.cells_of(w), vec![a]);
        assert!(e
            .world()
            .notes
            .iter()
            .any(|n| matches!(n, MobNotification::CellEntered { room, .. } if *room == a)));
    }

    #[test]
    fn route_walker_crosses_cells_in_order() {
        let (b, a, c) = two_room_building();
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(
            WalkerConfig::new(a)
                .mode(WalkMode::Route(vec![c]))
                .speed_range(1.0, 1.0)
                .min_leg_speed(1.0),
        );
        let mut e = engine(model, 2);
        e.run();
        let notes = &e.world().notes;
        // Exit a's cell at 10 m (t = 10 s), enter c's at 20 m (t = 20 s),
        // arrive at 30 s.
        let exit_a = notes
            .iter()
            .find_map(|n| match n {
                MobNotification::CellExited { room, at, .. } if *room == a => Some(*at),
                _ => None,
            })
            .expect("exited a");
        let enter_c = notes
            .iter()
            .find_map(|n| match n {
                MobNotification::CellEntered { room, at, .. } if *room == c => Some(*at),
                _ => None,
            })
            .expect("entered c");
        let arrived = notes
            .iter()
            .find_map(|n| match n {
                MobNotification::Arrived { room, at, .. } if *room == c => Some(*at),
                _ => None,
            })
            .expect("arrived");
        assert_eq!(exit_a, SimTime::from_secs(10));
        assert_eq!(enter_c, SimTime::from_secs(20));
        assert_eq!(arrived, SimTime::from_secs(30));
        assert!(notes
            .iter()
            .any(|n| matches!(n, MobNotification::RouteDone { walker, .. } if *walker == w)));
        assert_eq!(e.world().model.cells_of(w), vec![c]);
    }

    #[test]
    fn position_interpolates_along_leg() {
        let (b, a, c) = two_room_building();
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(
            WalkerConfig::new(a)
                .mode(WalkMode::Route(vec![c]))
                .speed_range(1.0, 1.0)
                .min_leg_speed(1.0),
        );
        let mut e = engine(model, 3);
        e.run_until(SimTime::from_secs(15));
        let p = e.world().model.position(w, SimTime::from_secs(15));
        assert!((p.x - 15.0).abs() < 1e-9, "{p}");
    }

    #[test]
    fn random_walker_visits_rooms_and_keeps_moving() {
        let b = Building::academic_department();
        let start = b.room_by_name("lobby").unwrap();
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(WalkerConfig::new(start).mode(WalkMode::RandomWalk {
            pause: (SimDuration::from_secs(1), SimDuration::from_secs(2)),
        }));
        let mut e = engine(model, 4);
        e.run_until(SimTime::from_secs(600));
        let arrivals = e
            .world()
            .notes
            .iter()
            .filter(|n| matches!(n, MobNotification::Arrived { .. }))
            .count();
        assert!(arrivals >= 10, "only {arrivals} arrivals in 10 min");
        let _ = w;
    }

    #[test]
    fn loop_walker_cycles() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(25.0, 0.0));
        b.connect(a, c);
        let mut model = MobilityModel::new(b);
        let _ = model.add_walker(
            WalkerConfig::new(a)
                .mode(WalkMode::Loop(vec![c, a]))
                .speed_range(1.0, 1.5),
        );
        let mut e = engine(model, 5);
        e.run_until(SimTime::from_secs(300));
        let arrivals_at_a = e
            .world()
            .notes
            .iter()
            .filter(|n| matches!(n, MobNotification::Arrived { room, .. } if *room == a))
            .count();
        assert!(arrivals_at_a >= 2, "loop never came back: {arrivals_at_a}");
    }

    #[test]
    fn overlapping_cells_both_report() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(12.0, 0.0)); // cells overlap (r=10)
        b.connect(a, c);
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(
            WalkerConfig::new(a)
                .mode(WalkMode::Route(vec![c]))
                .speed_range(1.0, 1.0)
                .min_leg_speed(1.0),
        );
        let mut e = engine(model, 6);
        // Midway (t=6, x=6) the walker is inside both cells.
        e.run_until(SimTime::from_secs(6));
        assert_eq!(e.world().model.cells_of(w), vec![a, c]);
        e.run();
        assert_eq!(e.world().model.cells_of(w), vec![c]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn route_must_follow_edges() {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(30.0, 0.0));
        // no connect
        let mut model = MobilityModel::new(b);
        model.add_walker(WalkerConfig::new(a).mode(WalkMode::Route(vec![c])));
    }

    #[test]
    fn deterministic_runs() {
        let run = |seed| {
            let b = Building::academic_department();
            let start = b.room_by_name("lobby").unwrap();
            let mut model = MobilityModel::new(b);
            model.add_walker(WalkerConfig::new(start));
            let mut e = engine(model, seed);
            e.run_until(SimTime::from_secs(120));
            e.world().notes.clone()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}

#[cfg(test)]
mod isolated_room_tests {
    use super::*;
    use crate::walker::{WalkMode, WalkerConfig};
    use desim::{Context, Engine, World};

    struct Mob {
        model: MobilityModel,
    }
    impl World for Mob {
        type Event = MobEvent;
        fn handle(&mut self, ctx: &mut Context<MobEvent>, ev: MobEvent) {
            self.model.handle(ctx, ev);
        }
    }

    #[test]
    fn random_walker_in_isolated_room_stays_put() {
        let mut b = Building::new();
        let lonely = b.add_room("island", Point::new(0.0, 0.0));
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(WalkerConfig::new(lonely));
        let mut e = Engine::new(Mob { model }, 1);
        e.schedule(SimTime::ZERO, MobEvent::start());
        e.run_until(SimTime::from_secs(300));
        assert_eq!(e.world().model.room_of(w), lonely);
        assert_eq!(
            e.world().model.position(w, SimTime::from_secs(300)),
            Point::new(0.0, 0.0)
        );
        // The calendar must be quiescent (no runaway rescheduling).
        assert_eq!(e.context_mut().pending(), 0);
    }

    #[test]
    fn stationary_position_is_constant() {
        let mut b = Building::new();
        let r = b.add_room("r", Point::new(3.0, 4.0));
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(WalkerConfig::new(r).mode(WalkMode::Stationary));
        let mut e = Engine::new(Mob { model }, 2);
        e.schedule(SimTime::ZERO, MobEvent::start());
        e.run_until(SimTime::from_secs(100));
        for s in [0u64, 10, 99] {
            assert_eq!(
                e.world().model.position(w, SimTime::from_secs(s)),
                Point::new(3.0, 4.0)
            );
        }
    }
}
