//! # bips-mobility — buildings, coverage cells and walking users
//!
//! The paper sizes BIPS around pedestrian motion: users walk at speeds in
//! `[0, 1.5] m/s` through rooms whose Bluetooth coverage is a circle of
//! ~10 m radius, so an average walker spends ≈15.4 s inside a cell
//! (20 m / 1.3 m/s, §5) — which in turn fixes the master's operational
//! cycle. This crate provides that world:
//!
//! * [`geometry`] — points, segments, and the segment/circle intersection
//!   that turns continuous motion into *cell enter/exit instants*;
//! * [`building`] — rooms, doors and coverage zones (the physical side of
//!   the BIPS workstation graph);
//! * [`walker`] — waypoint and random-walk pedestrians on the
//!   [`desim`] engine, emitting [`CellEntered`](model::MobNotification)
//!   / [`CellExited`](model::MobNotification) notifications;
//! * [`dwell`] — the paper's §5 dwell-time arithmetic, analytic and
//!   Monte-Carlo.
//!
//! ```
//! use bips_mobility::dwell;
//! // The paper's own numbers: a 20 m cell at the 1.3 m/s mean walking
//! // speed is crossed in ≈15.4 s.
//! let t = dwell::crossing_time(20.0, 1.3);
//! assert!((t - 15.38).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod building;
pub mod dwell;
pub mod geometry;
pub mod model;
pub mod walker;

pub use building::{Building, CellZone, RoomId};
pub use geometry::Point;
pub use model::{MobEvent, MobNotification, MobStats, MobilityModel, WalkerId};
