//! Planar geometry in meters.
//!
//! Everything BIPS needs is 2-D: room positions, straight walking legs,
//! and circular radio coverage. The one non-trivial computation is
//! [`segment_circle_crossings`]: given a walking leg and a coverage
//! circle, find the parameter interval during which the walker is inside
//! — that interval, scaled by walking speed, is exactly the *dwell time*
//! the paper's §5 reasons about.

/// A point (or vector) in the floor plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// East coordinate, meters.
    pub x: f64,
    /// North coordinate, meters.
    pub y: f64,
}

impl Point {
    /// A point at `(x, y)` meters.
    pub const fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl std::ops::Sub for Point {
    type Output = Point;
    fn sub(self, o: Point) -> Point {
        Point::new(self.x - o.x, self.y - o.y)
    }
}

impl std::ops::Add for Point {
    type Output = Point;
    fn add(self, o: Point) -> Point {
        Point::new(self.x + o.x, self.y + o.y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

/// The fraction interval `[t_in, t_out] ⊆ [0, 1]` of the segment
/// `a → b` lying strictly inside the circle `(center, radius)`, or `None`
/// if the segment never enters it.
///
/// Degenerate segments (`a == b`) are inside iff `a` is.
pub fn segment_circle_crossings(
    a: Point,
    b: Point,
    center: Point,
    radius: f64,
) -> Option<(f64, f64)> {
    debug_assert!(radius > 0.0);
    let d = b - a;
    let f = a - center;
    let aa = d.x * d.x + d.y * d.y;
    if aa == 0.0 {
        return if a.distance(center) <= radius {
            Some((0.0, 1.0))
        } else {
            None
        };
    }
    let bb = 2.0 * (f.x * d.x + f.y * d.y);
    let cc = f.x * f.x + f.y * f.y - radius * radius;
    let disc = bb * bb - 4.0 * aa * cc;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = (-bb - sq) / (2.0 * aa);
    let t2 = (-bb + sq) / (2.0 * aa);
    let t_in = t1.max(0.0);
    let t_out = t2.min(1.0);
    if t_in >= t_out {
        // Touches at a point or misses within [0,1].
        return None;
    }
    Some((t_in, t_out))
}

/// True if `p` is inside (or on) the circle.
pub fn inside_circle(p: Point, center: Point, radius: f64) -> bool {
    p.distance(center) <= radius
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        let mid = a.lerp(b, 0.5);
        assert_eq!(mid, Point::new(1.5, 2.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn full_diameter_crossing() {
        // Walk straight through the center of a 10 m-radius cell.
        let got = segment_circle_crossings(
            Point::new(-20.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(0.0, 0.0),
            10.0,
        )
        .unwrap();
        assert!((got.0 - 0.25).abs() < 1e-12);
        assert!((got.1 - 0.75).abs() < 1e-12);
        // Inside length = 0.5 × 40 m = 20 m = the diameter.
    }

    #[test]
    fn chord_crossing_is_shorter() {
        let (t_in, t_out) = segment_circle_crossings(
            Point::new(-20.0, 6.0),
            Point::new(20.0, 6.0),
            Point::new(0.0, 0.0),
            10.0,
        )
        .unwrap();
        let chord = (t_out - t_in) * 40.0;
        assert!((chord - 16.0).abs() < 1e-9, "2·√(100−36) = 16, got {chord}");
    }

    #[test]
    fn miss_returns_none() {
        assert_eq!(
            segment_circle_crossings(
                Point::new(-20.0, 11.0),
                Point::new(20.0, 11.0),
                Point::new(0.0, 0.0),
                10.0
            ),
            None
        );
    }

    #[test]
    fn tangent_returns_none() {
        assert_eq!(
            segment_circle_crossings(
                Point::new(-20.0, 10.0),
                Point::new(20.0, 10.0),
                Point::new(0.0, 0.0),
                10.0
            ),
            None
        );
    }

    #[test]
    fn segment_starting_inside() {
        let (t_in, t_out) = segment_circle_crossings(
            Point::new(0.0, 0.0),
            Point::new(40.0, 0.0),
            Point::new(0.0, 0.0),
            10.0,
        )
        .unwrap();
        assert_eq!(t_in, 0.0);
        assert!((t_out - 0.25).abs() < 1e-12);
    }

    #[test]
    fn segment_entirely_inside() {
        let (t_in, t_out) = segment_circle_crossings(
            Point::new(-1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 0.0),
            10.0,
        )
        .unwrap();
        assert_eq!((t_in, t_out), (0.0, 1.0));
    }

    #[test]
    fn degenerate_segment() {
        let inside = segment_circle_crossings(
            Point::new(1.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
            10.0,
        );
        assert_eq!(inside, Some((0.0, 1.0)));
        let outside = segment_circle_crossings(
            Point::new(50.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(0.0, 0.0),
            10.0,
        );
        assert_eq!(outside, None);
    }

    #[test]
    fn inside_circle_boundary() {
        let c = Point::new(0.0, 0.0);
        assert!(inside_circle(Point::new(10.0, 0.0), c, 10.0));
        assert!(!inside_circle(Point::new(10.01, 0.0), c, 10.0));
    }
}
