//! Property tests for mobility: containment consistency and speed bounds.

use bips_mobility::building::Building;
use bips_mobility::geometry::{inside_circle, Point};
use bips_mobility::model::{MobEvent, MobNotification, MobilityModel, WalkerId};
use bips_mobility::walker::{WalkMode, WalkerConfig};
use desim::{Context, Engine, SimDuration, SimTime, World};
use proptest::prelude::*;

struct Mob {
    model: MobilityModel,
    notes: Vec<MobNotification>,
}

impl World for Mob {
    type Event = MobEvent;
    fn handle(&mut self, ctx: &mut Context<MobEvent>, ev: MobEvent) {
        self.model.handle(ctx, ev);
        self.notes.extend(self.model.drain_notifications());
    }
}

fn random_building(rooms: usize, seed: u64) -> Building {
    let mut rng = desim::SimRng::seed_from(seed);
    let mut b = Building::new();
    let ids: Vec<_> = (0..rooms)
        .map(|i| {
            b.add_room(
                format!("r{i}"),
                Point::new(rng.uniform(0.0, 120.0), rng.uniform(0.0, 120.0)),
            )
        })
        .collect();
    for w in ids.windows(2) {
        b.connect(w[0], w[1]);
    }
    // a few chords
    for _ in 0..rooms / 2 {
        let a = ids[rng.below(rooms as u64) as usize];
        let c = ids[rng.below(rooms as u64) as usize];
        if a != c && b.distance(a, c).is_none() {
            b.connect(a, c);
        }
    }
    b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At every sampled instant, the model's claimed cell set matches the
    /// geometric ground truth of the walker's interpolated position.
    #[test]
    fn containment_matches_geometry(rooms in 2usize..8, seed in any::<u64>(), horizon_s in 30u64..200) {
        let b = random_building(rooms, seed);
        let cells = b.cells();
        let mut model = MobilityModel::new(b);
        let w = model.add_walker(WalkerConfig::new(bips_mobility::RoomId::new(0)).mode(
            WalkMode::RandomWalk {
                pause: (SimDuration::from_secs(1), SimDuration::from_secs(4)),
            },
        ));
        let mut e = Engine::new(Mob { model, notes: vec![] }, seed);
        e.schedule(SimTime::ZERO, MobEvent::start());
        for step in 1..=horizon_s {
            let t = SimTime::from_secs(step);
            e.run_until(t);
            let pos = e.world().model.position(w, t);
            let claimed: std::collections::HashSet<usize> =
                e.world().model.cells_of(w).iter().map(|r| r.index()).collect();
            for cell in &cells {
                let truly_inside = inside_circle(pos, cell.center, cell.radius * (1.0 - 1e-9));
                let truly_outside = !inside_circle(pos, cell.center, cell.radius * (1.0 + 1e-9));
                // Exactly-on-boundary instants are allowed to disagree.
                if truly_inside {
                    prop_assert!(
                        claimed.contains(&cell.room.index()),
                        "t={t}: inside {:?} but not claimed (pos {pos})",
                        cell.room
                    );
                }
                if truly_outside {
                    prop_assert!(
                        !claimed.contains(&cell.room.index()),
                        "t={t}: outside {:?} but claimed (pos {pos})",
                        cell.room
                    );
                }
            }
        }
    }

    /// Leg durations respect the configured speed range: distance/duration
    /// never exceeds the maximum speed.
    #[test]
    fn arrivals_respect_speed_bounds(seed in any::<u64>()) {
        let mut b = Building::new();
        let a = b.add_room("a", Point::new(0.0, 0.0));
        let c = b.add_room("c", Point::new(40.0, 0.0));
        b.connect(a, c);
        let mut model = MobilityModel::new(b);
        let _ = model.add_walker(
            WalkerConfig::new(a)
                .mode(WalkMode::Loop(vec![c, a]))
                .speed_range(0.5, 1.5),
        );
        let mut e = Engine::new(Mob { model, notes: vec![] }, seed);
        e.schedule(SimTime::ZERO, MobEvent::start());
        e.run_until(SimTime::from_secs(600));
        let arrivals: Vec<SimTime> = e
            .world()
            .notes
            .iter()
            .filter_map(|n| match n {
                MobNotification::Arrived { at, .. } => Some(*at),
                _ => None,
            })
            .collect();
        prop_assert!(arrivals.len() >= 2);
        let mut prev = SimTime::ZERO;
        for at in arrivals {
            let leg = (at - prev).as_secs_f64();
            // 40 m at 1.5 m/s takes ≥ 26.7 s; at 0.5 m/s ≤ 80 s.
            prop_assert!(leg >= 40.0 / 1.5 - 1e-6, "leg too fast: {leg}s");
            prop_assert!(leg <= 40.0 / 0.5 + 1e-6, "leg too slow: {leg}s");
            prev = at;
        }
        let _ = WalkerId::new(0);
    }
}
