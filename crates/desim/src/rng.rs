//! Deterministic, forkable randomness.
//!
//! Every experiment takes one master seed. [`SeedDeriver`] turns that seed
//! plus a *stream id* (replication index, slave index, …) into independent
//! child seeds via a SplitMix64-style mix, so the random stream consumed by
//! one component never shifts another component's stream when code is
//! reordered — the classic reproducibility pitfall in network simulators.

/// SplitMix64 finalizer: a bijective mix with good avalanche behaviour.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ (Blackman & Vigna): the generator behind `rand`'s 64-bit
/// `SmallRng`, implemented here directly so the workspace carries no
/// external RNG dependency. Seeding fills the four state words with
/// successive SplitMix64 outputs, exactly like `rand_core`'s
/// `seed_from_u64`, so streams match what the `rand 0.8` façade produced.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        // rand_core 0.6 seed_from_u64: raw SplitMix64 stream (state walks
        // by the golden-gamma, each output finalized), little-endian words.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Derives independent child seeds from a master seed.
///
/// # Example
///
/// ```
/// use desim::SeedDeriver;
/// let d = SeedDeriver::new(42);
/// assert_eq!(d.derive(7), SeedDeriver::new(42).derive(7));
/// assert_ne!(d.derive(7), d.derive(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedDeriver {
    master: u64,
}

impl SeedDeriver {
    /// Creates a deriver rooted at `master`.
    pub const fn new(master: u64) -> Self {
        SeedDeriver { master }
    }

    /// The master seed this deriver was created with.
    pub const fn master(&self) -> u64 {
        self.master
    }

    /// The child seed for `stream`. Pure: the same `(master, stream)` always
    /// yields the same seed.
    pub fn derive(&self, stream: u64) -> u64 {
        splitmix64(splitmix64(self.master) ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
    }

    /// A deriver for a nested namespace, so components can hand out their
    /// own sub-streams without coordinating ids globally.
    pub fn subspace(&self, stream: u64) -> SeedDeriver {
        SeedDeriver::new(self.derive(stream))
    }

    /// Convenience: an RNG seeded with [`derive`](SeedDeriver::derive)`(stream)`.
    pub fn rng(&self, stream: u64) -> SimRng {
        SimRng::seed_from(self.derive(stream))
    }
}

/// The simulation RNG: a small, fast, seedable generator.
///
/// A self-contained xoshiro256++ behind a stable façade (so the algorithm
/// can be pinned or swapped without touching call sites), plus the
/// handful of draw shapes the baseband and mobility models need.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform integer in `[0, n)`, via Lemire's widening-multiply
    /// rejection (the same scheme `rand 0.8` used, so streams are
    /// preserved).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is empty");
        self.sample_below(n)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        if range == 0 {
            // Full 64-bit range.
            return self.inner.next_u64();
        }
        lo + self.sample_below(range)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        if lo == hi {
            return lo;
        }
        let v = lo + self.unit() * (hi - lo);
        // Guard the upper bound against rounding on huge ranges.
        if v >= hi {
            hi.next_down()
        } else {
            v
        }
    }

    /// Unbiased draw in `[0, n)` for `n > 0`.
    fn sample_below(&mut self, n: u64) -> u64 {
        // Accept v·n's high word when the low word clears the zone; the
        // zone keeps every accepted value equally likely.
        let zone = (n << n.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.inner.next_u64();
            let wide = (v as u128) * (n as u128);
            let (hi, lo) = ((wide >> 64) as u64, wide as u64);
            if lo <= zone {
                return hi;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially-distributed float with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive and finite.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0 && mean.is_finite(), "bad mean {mean}");
        let u = 1.0 - self.unit(); // in (0, 1]
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_pure_and_spread() {
        let d = SeedDeriver::new(123);
        let a: Vec<u64> = (0..64).map(|i| d.derive(i)).collect();
        let b: Vec<u64> = (0..64).map(|i| d.derive(i)).collect();
        assert_eq!(a, b);
        let mut uniq = a.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 64, "child seeds collide");
    }

    #[test]
    fn subspace_differs_from_parent_streams() {
        let d = SeedDeriver::new(5);
        let sub = d.subspace(1);
        assert_ne!(sub.derive(0), d.derive(0));
        assert_ne!(sub.derive(0), d.derive(1));
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_and_range_bounds() {
        let mut r = SimRng::seed_from(1);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.range_inclusive(5, 7);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(r.range_inclusive(4, 4), 4);
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let mut r = SimRng::seed_from(2);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.uniform(0.0, 1.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.75).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from(3);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(4);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-3.0));
        assert!(r.chance(7.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = SimRng::seed_from(6);
        let empty: [u8; 0] = [];
        assert_eq!(r.choose(&empty), None);
        assert_eq!(r.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::seed_from(0).below(0);
    }
}
