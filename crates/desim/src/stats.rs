//! Estimators used by the experiment harness.
//!
//! Three shapes cover every table and figure in the paper:
//!
//! * [`OnlineStats`] — streaming mean/variance (Welford), for the Table-1
//!   average discovery times and their confidence intervals;
//! * [`EmpiricalCdf`] — the discovery-probability-vs-time curves of
//!   Figure 2 are empirical CDFs of discovery times, evaluated on a grid;
//! * [`Histogram`] — distribution shape checks and ablation reporting.

use std::fmt;

/// Streaming mean / variance / extrema via Welford's algorithm.
///
/// # Example
///
/// ```
/// use desim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.len(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True if no observations have been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Half-width of the normal-approximation 95 % confidence interval for
    /// the mean (`1.96 · s/√n`; 0 with fewer than two observations).
    pub fn ci95_halfwidth(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.stddev() / (self.n as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} ±{:.4} (95% CI) sd={:.4}",
            self.n,
            self.mean(),
            self.ci95_halfwidth(),
            self.stddev()
        )
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// An empirical cumulative distribution function over `f64` samples.
///
/// Censored experiments (a slave never discovered within the horizon) are
/// represented by pushing the sample with
/// [`push_censored`](EmpiricalCdf::push_censored), which contributes to the denominator but
/// never to `P(X ≤ x)` — exactly how Figure 2 treats undiscovered slaves.
///
/// # Example
///
/// ```
/// use desim::stats::EmpiricalCdf;
/// let mut cdf = EmpiricalCdf::new();
/// cdf.extend([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.probability_at(2.5), 0.5);
/// assert_eq!(cdf.probability_at(100.0), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EmpiricalCdf {
    samples: Vec<f64>,
    censored: u64,
    nans: u64,
    sorted: bool,
}

impl EmpiricalCdf {
    /// An empty CDF.
    pub fn new() -> Self {
        EmpiricalCdf {
            samples: Vec::new(),
            censored: 0,
            nans: 0,
            sorted: true,
        }
    }

    /// Adds an observed sample. NaN samples are counted separately (see
    /// [`nans`](EmpiricalCdf::nans)) and never enter the sample set or
    /// the trial population — the same policy as [`Histogram::push`],
    /// and what used to make [`probability_at`](EmpiricalCdf::probability_at)
    /// panic inside its sort.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nans += 1;
            return;
        }
        self.samples.push(x);
        self.sorted = false;
    }

    /// Adds a censored trial: counted in the population, never "≤ x".
    pub fn push_censored(&mut self) {
        self.censored += 1;
    }

    /// Total number of trials (observed + censored).
    pub fn len(&self) -> u64 {
        self.samples.len() as u64 + self.censored
    }

    /// True if no trials have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of censored trials.
    pub fn censored(&self) -> u64 {
        self.censored
    }

    /// NaN samples rejected at [`push`](EmpiricalCdf::push) (counted,
    /// never part of the population).
    pub fn nans(&self) -> u64 {
        self.nans
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // total_cmp: a total order over f64 — no unwrap on NaN, and
            // push never admits NaN anyway.
            self.samples.sort_by(f64::total_cmp);
            self.sorted = true;
        }
    }

    /// `P(X ≤ x)` over all trials (0 if empty).
    pub fn probability_at(&mut self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let k = self.samples.partition_point(|&s| s <= x);
        k as f64 / self.len() as f64
    }

    /// The `p`-quantile of the *observed* samples (`None` if no sample or
    /// `p` outside `[0, 1]`). Uses the nearest-rank method.
    pub fn quantile(&mut self, p: f64) -> Option<f64> {
        if self.samples.is_empty() || !(0.0..=1.0).contains(&p) {
            return None;
        }
        self.ensure_sorted();
        let n = self.samples.len();
        let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Evaluates the CDF on an inclusive uniform grid of `points`
    /// values spanning `[lo, hi]`, returning `(x, P(X ≤ x))` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2` or `lo > hi`.
    pub fn series(&mut self, lo: f64, hi: f64, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two grid points");
        assert!(lo <= hi, "empty grid range");
        let step = (hi - lo) / (points - 1) as f64;
        (0..points)
            .map(|i| {
                let x = lo + step * i as f64;
                (x, self.probability_at(x))
            })
            .collect()
    }

    /// Mean of the observed (non-censored) samples, `None` if none.
    pub fn observed_mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }
}

impl Extend<f64> for EmpiricalCdf {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for EmpiricalCdf {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut c = EmpiricalCdf::new();
        c.extend(iter);
        c
    }
}

/// A fixed-range, uniform-bin histogram with under/overflow buckets.
///
/// # Example
///
/// ```
/// use desim::stats::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(0.5);
/// h.push(9.9);
/// h.push(42.0); // overflow
/// assert_eq!(h.count(0), 1);
/// assert_eq!(h.count(4), 1);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nans: u64,
    merge_mismatches: u64,
    last_merge_error: Option<HistMergeError>,
}

/// The shape of a [`Histogram`]: its bounds and bin count. Two
/// histograms are mergeable exactly when their shapes are equal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistShape {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Number of uniform buckets.
    pub bins: usize,
}

impl fmt::Display for HistShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})×{}", self.lo, self.hi, self.bins)
    }
}

/// A rejected [`Histogram::try_merge`]: the two shapes that failed to
/// line up. Carried on the receiving histogram (see
/// [`Histogram::last_merge_error`]) and surfaced in exported reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistMergeError {
    /// Shape of the receiving histogram.
    pub ours: HistShape,
    /// Shape of the histogram that was being merged in.
    pub theirs: HistShape,
}

impl fmt::Display for HistMergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible histograms: {} vs {}",
            self.ours, self.theirs
        )
    }
}

impl std::error::Error for HistMergeError {}

impl Histogram {
    /// A histogram over `[lo, hi)` with `bins` uniform buckets.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "zero bins");
        assert!(lo < hi, "empty range [{lo}, {hi})");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nans: 0,
            merge_mismatches: 0,
            last_merge_error: None,
        }
    }

    /// Adds one observation. NaN observations are counted separately (see
    /// [`nans`](Histogram::nans)) rather than silently landing in bucket 0,
    /// which is what the `(NaN as usize)` cast used to do.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nans += 1;
        } else if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[idx.min(last)] += 1;
        }
    }

    /// The count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// Number of buckets.
    pub fn num_bins(&self) -> usize {
        self.bins.len()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN observations (counted, never binned).
    pub fn nans(&self) -> u64 {
        self.nans
    }

    /// Total observations, including under/overflow and NaNs.
    pub fn total(&self) -> u64 {
        self.underflow + self.overflow + self.nans + self.bins.iter().sum::<u64>()
    }

    /// Merges another histogram with identical bounds and bin count into
    /// this one (bin-wise sum, used when combining replications).
    ///
    /// Mismatched shapes are a programming error: merging `[0,1)×4`
    /// counts into `[0,10)×8` counts would silently relabel every
    /// observation. The merge is therefore **skipped**, counted in
    /// [`merge_mismatches`](Histogram::merge_mismatches), and the typed
    /// [`HistMergeError`] is retained (see
    /// [`last_merge_error`](Histogram::last_merge_error)) so exported
    /// telemetry names both offending shapes instead of corrupting
    /// bins — identically in debug and release builds. Callers that
    /// want to handle the error use
    /// [`try_merge`](Histogram::try_merge).
    pub fn merge(&mut self, other: &Histogram) {
        let _ = self.try_merge(other);
    }

    /// Fallible [`merge`](Histogram::merge): returns the typed
    /// [`HistMergeError`] (and bumps the
    /// [`merge_mismatches`](Histogram::merge_mismatches) counter,
    /// leaving every bin untouched) when the bounds or bin counts
    /// differ.
    pub fn try_merge(&mut self, other: &Histogram) -> Result<(), HistMergeError> {
        if self.lo != other.lo || self.hi != other.hi || self.bins.len() != other.bins.len() {
            let err = HistMergeError {
                ours: self.shape(),
                theirs: other.shape(),
            };
            self.merge_mismatches += 1;
            self.last_merge_error = Some(err);
            return Err(err);
        }
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.nans += other.nans;
        self.merge_mismatches += other.merge_mismatches;
        if self.last_merge_error.is_none() {
            self.last_merge_error = other.last_merge_error;
        }
        Ok(())
    }

    /// This histogram's shape (bounds and bin count).
    pub fn shape(&self) -> HistShape {
        HistShape {
            lo: self.lo,
            hi: self.hi,
            bins: self.bins.len(),
        }
    }

    /// Merges rejected because the other histogram's bounds or bin count
    /// differed (0 in a healthy run).
    pub fn merge_mismatches(&self) -> u64 {
        self.merge_mismatches
    }

    /// The most recent rejected merge, if any — the detail behind
    /// [`merge_mismatches`](Histogram::merge_mismatches), surfaced in
    /// run reports.
    pub fn last_merge_error(&self) -> Option<HistMergeError> {
        self.last_merge_error
    }

    /// The `[lo, hi)` bounds of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len(), "bin {i} out of range");
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.5, 2.5, 3.5, 10.0, -4.0, 0.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), Some(-4.0));
        assert_eq!(s.max(), Some(10.0));
    }

    #[test]
    fn merge_equals_concat() {
        let a: Vec<f64> = (0..57).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..91).map(|i| (i as f64).cos() * 3.0).collect();
        let mut left: OnlineStats = a.iter().copied().collect();
        let right: OnlineStats = b.iter().copied().collect();
        left.merge(&right);
        let all: OnlineStats = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(left.len(), all.len());
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s;
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
        assert_eq!(s.min(), None);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_observation_panics() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn cdf_step_behaviour() {
        let mut c: EmpiricalCdf = [1.0, 1.0, 2.0, 5.0].into_iter().collect();
        assert_eq!(c.probability_at(0.5), 0.0);
        assert_eq!(c.probability_at(1.0), 0.5);
        assert_eq!(c.probability_at(4.99), 0.75);
        assert_eq!(c.probability_at(5.0), 1.0);
    }

    #[test]
    fn cdf_censoring_caps_probability() {
        let mut c = EmpiricalCdf::new();
        c.push(1.0);
        c.push(2.0);
        c.push_censored();
        c.push_censored();
        assert_eq!(c.len(), 4);
        assert_eq!(c.probability_at(10.0), 0.5);
        assert_eq!(c.censored(), 2);
    }

    #[test]
    fn cdf_quantiles_nearest_rank() {
        let mut c: EmpiricalCdf = (1..=10).map(|i| i as f64).collect();
        assert_eq!(c.quantile(0.1), Some(1.0));
        assert_eq!(c.quantile(0.5), Some(5.0));
        assert_eq!(c.quantile(1.0), Some(10.0));
        assert_eq!(c.quantile(1.5), None);
        assert_eq!(EmpiricalCdf::new().quantile(0.5), None);
    }

    #[test]
    fn cdf_series_grid() {
        let mut c: EmpiricalCdf = [0.0, 1.0].into_iter().collect();
        let s = c.series(0.0, 2.0, 3);
        assert_eq!(s, vec![(0.0, 0.5), (1.0, 1.0), (2.0, 1.0)]);
    }

    #[test]
    fn cdf_interleaved_push_and_query() {
        let mut c = EmpiricalCdf::new();
        c.push(2.0);
        assert_eq!(c.probability_at(2.0), 1.0);
        c.push(1.0); // must re-sort transparently
        assert_eq!(c.probability_at(1.5), 0.5);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.0, 0.24, 0.25, 0.5, 0.99, -0.1, 1.0] {
            h.push(x);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 7);
        assert_eq!(h.bin_bounds(1), (0.25, 0.5));
    }

    #[test]
    #[should_panic(expected = "zero bins")]
    fn histogram_zero_bins_panics() {
        Histogram::new(0.0, 1.0, 0);
    }

    /// Regression: NaN used to fall through both range guards and the
    /// `as usize` cast saturated it into bucket 0, silently corrupting the
    /// lowest bin. It must be counted apart from every bucket.
    #[test]
    fn histogram_nan_is_not_bin_zero() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(f64::NAN);
        h.push(0.1);
        assert_eq!(h.count(0), 1, "only the real observation lands in bin 0");
        assert_eq!(h.nans(), 1);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_merge_sums_everything() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.push(0.1);
        a.push(-1.0);
        let mut b = Histogram::new(0.0, 1.0, 2);
        b.push(0.9);
        b.push(2.0);
        b.push(f64::NAN);
        a.merge(&b);
        assert_eq!(a.count(0), 1);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.underflow(), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.nans(), 1);
        assert_eq!(a.total(), 5);
    }

    /// Regression: mismatched-bucket merges used to be a
    /// `debug_assert` panic (debug builds) or a bare counter bump
    /// (release builds). Now both build profiles behave identically:
    /// the merge is skipped and the typed error names both shapes.
    #[test]
    fn histogram_merge_rejects_mismatched_shapes() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.push(0.5);
        a.merge(&Histogram::new(0.0, 1.0, 3));
        assert_eq!(a.merge_mismatches(), 1);
        assert_eq!(a.total(), 1, "rejected merge must not add counts");
        let err = a.last_merge_error().expect("typed error retained");
        assert_eq!(
            err.ours,
            HistShape {
                lo: 0.0,
                hi: 1.0,
                bins: 2
            }
        );
        assert_eq!(
            err.theirs,
            HistShape {
                lo: 0.0,
                hi: 1.0,
                bins: 3
            }
        );
        assert_eq!(
            err.to_string(),
            "incompatible histograms: [0, 1)×2 vs [0, 1)×3"
        );
    }

    /// Regression: mismatched-shape merges used to be a hard panic in
    /// every build; now they surface as a counter plus a typed error
    /// instead of either corrupting bins or killing a release sweep.
    #[test]
    fn histogram_try_merge_counts_mismatches_and_leaves_bins_alone() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.push(0.1);
        for other in [
            Histogram::new(0.0, 1.0, 3),  // bin count differs
            Histogram::new(0.0, 2.0, 2),  // upper bound differs
            Histogram::new(-1.0, 1.0, 2), // lower bound differs
        ] {
            let err = a.try_merge(&other).expect_err("shape differs");
            assert_eq!(err.theirs, other.shape());
            assert_eq!(a.last_merge_error(), Some(err));
        }
        assert_eq!(a.merge_mismatches(), 3);
        assert_eq!(a.count(0), 1, "failed merges must not touch bins");
        assert_eq!(a.count(1), 0);
        // The retained error describes the most recent rejection.
        let last = a.last_merge_error().expect("retained");
        assert_eq!(
            last.theirs,
            HistShape {
                lo: -1.0,
                hi: 1.0,
                bins: 2
            }
        );

        // A compatible merge still works and carries mismatch state.
        let mut b = Histogram::new(0.0, 1.0, 2);
        b.push(0.9);
        assert!(b.try_merge(&a).is_ok());
        assert_eq!(b.count(0), 1);
        assert_eq!(b.count(1), 1);
        assert_eq!(b.merge_mismatches(), 3, "mismatch count must merge too");
        assert_eq!(
            b.last_merge_error(),
            Some(last),
            "mismatch detail must propagate through compatible merges"
        );
    }

    /// Regression: `probability_at` used to sort with
    /// `partial_cmp(..).expect("no NaN")` and `push` asserted on NaN —
    /// one bad sample (e.g. a 0/0 rate) killed a whole replication
    /// sweep. NaN now follows the `Histogram::push` policy: counted
    /// separately, never in the population.
    #[test]
    fn cdf_nan_is_counted_not_fatal() {
        let mut c = EmpiricalCdf::new();
        c.push(1.0);
        c.push(f64::NAN);
        c.push(2.0);
        c.push_censored();
        assert_eq!(c.nans(), 1);
        assert_eq!(c.len(), 3, "NaN must not enter the population");
        assert_eq!(c.probability_at(1.5), 1.0 / 3.0);
        assert_eq!(c.quantile(1.0), Some(2.0));
        assert_eq!(c.observed_mean(), Some(1.5));
    }
}

/// A time-weighted average: integrates a piecewise-constant signal (queue
/// length, number of connected slaves, users in coverage) over virtual
/// time.
///
/// # Example
///
/// ```
/// use desim::stats::TimeWeighted;
/// use desim::SimTime;
///
/// let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
/// tw.set(SimTime::from_secs(10), 4.0); // 0 for 10 s
/// tw.set(SimTime::from_secs(30), 1.0); // 4 for 20 s
/// // average over [0, 40): (0·10 + 4·20 + 1·10) / 40 = 2.25
/// assert_eq!(tw.average_until(SimTime::from_secs(40)), 2.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeWeighted {
    start: crate::SimTime,
    last_change: crate::SimTime,
    current: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Starts integrating `initial` at `start`.
    pub fn new(start: crate::SimTime, initial: f64) -> TimeWeighted {
        TimeWeighted {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
        }
    }

    /// Changes the signal value at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change or `value` is NaN.
    pub fn set(&mut self, now: crate::SimTime, value: f64) {
        assert!(now >= self.last_change, "time went backwards");
        assert!(!value.is_nan(), "NaN signal value");
        self.weighted_sum += self.current * (now - self.last_change).as_secs_f64();
        self.last_change = now;
        self.current = value;
    }

    /// Adds `delta` to the signal at `now` (counter-style usage).
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous change.
    pub fn add(&mut self, now: crate::SimTime, delta: f64) {
        let v = self.current + delta;
        self.set(now, v);
    }

    /// The current signal value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// The time of the most recent change (or the start, if unchanged).
    pub fn last_change(&self) -> crate::SimTime {
        self.last_change
    }

    /// The time-weighted average over `[start, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until` precedes the last change.
    pub fn average_until(&self, until: crate::SimTime) -> f64 {
        assert!(until >= self.last_change, "until precedes last change");
        let total = (until - self.start).as_secs_f64();
        if total == 0.0 {
            return self.current;
        }
        let sum = self.weighted_sum + self.current * (until - self.last_change).as_secs_f64();
        sum / total
    }
}

#[cfg(test)]
mod time_weighted_tests {
    use super::TimeWeighted;
    use crate::SimTime;

    #[test]
    fn constant_signal_averages_to_itself() {
        let tw = TimeWeighted::new(SimTime::ZERO, 3.5);
        assert_eq!(tw.average_until(SimTime::from_secs(100)), 3.5);
    }

    #[test]
    fn step_changes_integrate() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(10), 1.0);
        tw.set(SimTime::from_secs(20), 3.0);
        // [10,20): 1, [20,30): 3 → avg over [10,30) = 2
        assert_eq!(tw.average_until(SimTime::from_secs(30)), 2.0);
        assert_eq!(tw.current(), 3.0);
    }

    #[test]
    fn counter_style_add() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.add(SimTime::from_secs(5), 2.0);
        tw.add(SimTime::from_secs(10), -1.0);
        assert_eq!(tw.current(), 1.0);
        // (0·5 + 2·5 + 1·10)/20 = 1.0
        assert_eq!(tw.average_until(SimTime::from_secs(20)), 1.0);
    }

    #[test]
    fn zero_duration_average_is_current() {
        let tw = TimeWeighted::new(SimTime::from_secs(7), 9.0);
        assert_eq!(tw.average_until(SimTime::from_secs(7)), 9.0);
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn rewinding_panics() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5), 0.0);
        tw.set(SimTime::from_secs(3), 1.0);
    }
}
