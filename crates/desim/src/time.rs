//! Virtual time: integer-microsecond instants and durations.
//!
//! Bluetooth timing is built from a 312.5 µs native clock tick and a 625 µs
//! slot. Representing time as integer microseconds would split the half-tick,
//! so the engine counts **eighths of a microsecond** internally while the
//! public constructors and accessors speak µs/ms/s. All Bluetooth-relevant
//! quantities (312.5 µs, 625 µs, 1.28 s, 11.25 ms, …) are exact in this
//! representation.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// Number of internal units per microsecond.
const UNITS_PER_US: u64 = 8;

/// An instant of virtual simulation time.
///
/// `SimTime` is an absolute point on the simulation clock; the origin
/// ([`SimTime::ZERO`]) is when the [`Engine`](crate::Engine) starts.
/// Subtracting two instants yields a [`SimDuration`]; adding a duration to
/// an instant yields another instant. Instants and durations are distinct
/// types so that e.g. a scan *interval* can never be mistaken for a
/// *deadline*.
///
/// # Example
///
/// ```
/// use desim::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_micros(625) * 3;
/// assert_eq!(t.as_micros(), 1875);
/// assert_eq!(t - SimTime::from_micros(875), SimDuration::from_millis(1));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual simulation time.
///
/// See [`SimTime`] for the instant/duration distinction. The representation
/// is exact for all multiples of 0.125 µs, which covers every interval in
/// the Bluetooth baseband (312.5 µs half-slots included).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (useful as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * UNITS_PER_US)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime::from_micros(ms * 1_000)
    }

    /// Creates an instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime::from_micros(s * 1_000_000)
    }

    /// Creates an instant from fractional seconds, rounding to the nearest
    /// 0.125 µs.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid time: {s}");
        SimTime((s * 1e6 * UNITS_PER_US as f64).round() as u64)
    }

    /// Whole microseconds since the epoch (fraction truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / UNITS_PER_US
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / (1e6 * UNITS_PER_US as f64)
    }

    /// Duration since the epoch.
    pub const fn elapsed(self) -> SimDuration {
        SimDuration(self.0)
    }

    /// `self + d`, saturating at [`SimTime::MAX`] instead of overflowing.
    pub const fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// `self - other` if `self >= other`, else `None`.
    pub const fn checked_sub(self, other: SimTime) -> Option<SimDuration> {
        match self.0.checked_sub(other.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// The time elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// A duration of `us` microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * UNITS_PER_US)
    }

    /// A duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration::from_micros(ms * 1_000)
    }

    /// A duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration::from_micros(s * 1_000_000)
    }

    /// A duration of `n` eighths of a microsecond — the engine's native
    /// resolution. `from_units_0125us(2500)` is the Bluetooth half-slot
    /// (312.5 µs).
    pub const fn from_units_0125us(n: u64) -> Self {
        SimDuration(n)
    }

    /// A duration from fractional seconds, rounded to the nearest 0.125 µs.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0 && s.is_finite(), "invalid duration: {s}");
        SimDuration((s * 1e6 * UNITS_PER_US as f64).round() as u64)
    }

    /// Whole microseconds (fraction truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / UNITS_PER_US
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / (1e6 * UNITS_PER_US as f64)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    pub const fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// `self * n`, or `None` on overflow.
    pub const fn checked_mul(self, n: u64) -> Option<SimDuration> {
        match self.0.checked_mul(n) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// How many whole `other` fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    pub const fn div_duration(self, other: SimDuration) -> u64 {
        assert!(other.0 != 0, "division by zero duration");
        self.0 / other.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: SimDuration) -> SimTime {
        SimTime(self.0 - d.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 - other.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, other: SimDuration) {
        self.0 -= other.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, n: u64) -> SimDuration {
        SimDuration(self.0 * n)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, n: u64) -> SimDuration {
        SimDuration(self.0 / n)
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 % other.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

fn fmt_units(units: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let whole_us = units / UNITS_PER_US;
    let frac = units % UNITS_PER_US;
    if whole_us >= 1_000_000 {
        let s = units as f64 / (1e6 * UNITS_PER_US as f64);
        write!(f, "{s:.6}s")
    } else if frac == 0 {
        write!(f, "{whole_us}us")
    } else {
        write!(f, "{}us", units as f64 / UNITS_PER_US as f64)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t=")?;
        fmt_units(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_units(self.0, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_units(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_units(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_slot_is_exact() {
        let half = SimDuration::from_units_0125us(2500);
        assert_eq!(half.as_secs_f64(), 312.5e-6);
        assert_eq!(half + half, SimDuration::from_micros(625));
    }

    #[test]
    fn instant_duration_arithmetic() {
        let t0 = SimTime::from_millis(10);
        let t1 = t0 + SimDuration::from_micros(625);
        assert_eq!(t1 - t0, SimDuration::from_micros(625));
        assert_eq!(t1.as_micros(), 10_625);
    }

    #[test]
    fn from_secs_f64_round_trips() {
        for s in [0.0, 0.0003125, 1.28, 2.56, 10.24, 15.4] {
            let t = SimTime::from_secs_f64(s);
            assert!((t.as_secs_f64() - s).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::from_secs(1).checked_sub(SimTime::from_secs(2)),
            None
        );
    }

    #[test]
    fn duration_division() {
        let train = SimDuration::from_millis(10);
        let slot = SimDuration::from_micros(625);
        assert_eq!(train.div_duration(slot), 16);
        assert_eq!(train % slot, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_duration_panics() {
        let _ = SimDuration::from_secs(1).div_duration(SimDuration::ZERO);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert_eq!(SimTime::from_micros(625).to_string(), "625us");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(5)), "t=5us");
        assert_eq!(SimDuration::from_units_0125us(2500).to_string(), "312.5us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (0..4).map(|_| SimDuration::from_micros(625)).sum();
        assert_eq!(
            total,
            SimDuration::from_millis(2) + SimDuration::from_micros(500)
        );
    }
}
