//! Lightweight structured tracing for simulations.
//!
//! A [`Trace`] collects timestamped records emitted by model code. Tests
//! assert on traces instead of sprinkling `println!` through the models,
//! and experiment binaries can dump them for debugging. Recording is
//! generic over the record type so each model defines its own vocabulary.

use crate::time::SimTime;
use std::fmt;

/// A bounded, timestamped event log.
///
/// The log keeps at most `capacity` records, dropping the **oldest** on
/// overflow (and counting the drops), so long simulations cannot exhaust
/// memory through tracing.
///
/// # Example
///
/// ```
/// use desim::trace::Trace;
/// use desim::SimTime;
///
/// let mut t: Trace<&str> = Trace::with_capacity(2);
/// t.record(SimTime::ZERO, "a");
/// t.record(SimTime::from_secs(1), "b");
/// t.record(SimTime::from_secs(2), "c");
/// assert_eq!(t.len(), 2);
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.iter().map(|r| r.record).collect::<Vec<_>>(), vec!["b", "c"]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace<R> {
    records: std::collections::VecDeque<Entry<R>>,
    capacity: usize,
    dropped: u64,
    enabled: bool,
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry<R> {
    /// When the record was emitted.
    pub at: SimTime,
    /// The payload.
    pub record: R,
}

impl<R> Default for Trace<R> {
    fn default() -> Self {
        Trace::new()
    }
}

impl<R> Trace<R> {
    /// Default capacity used by [`Trace::new`].
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// A trace with the default capacity.
    pub fn new() -> Self {
        Trace::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// A trace bounded to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "zero-capacity trace");
        Trace {
            records: std::collections::VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            enabled: true,
        }
    }

    /// Turns recording on or off (records are silently discarded while off,
    /// without counting as dropped).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends a record at time `at`.
    pub fn record(&mut self, at: SimTime, record: R) {
        if !self.enabled {
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(Entry { at, record });
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of records evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates retained records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Entry<R>> {
        self.records.iter()
    }

    /// Removes and returns all retained records, oldest-first.
    pub fn drain(&mut self) -> Vec<Entry<R>> {
        self.records.drain(..).collect()
    }

    /// Retained records matching a predicate, oldest-first.
    pub fn filtered<F>(&self, mut pred: F) -> Vec<&Entry<R>>
    where
        F: FnMut(&R) -> bool,
    {
        self.iter().filter(|e| pred(&e.record)).collect()
    }

    /// A one-line occupancy summary (retained / dropped / capacity), for
    /// run reports and diagnostics.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            len: self.len(),
            dropped: self.dropped,
            capacity: self.capacity,
        }
    }
}

/// Occupancy of a [`Trace`], as returned by [`Trace::summary`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Records currently retained.
    pub len: usize,
    /// Records evicted by the capacity bound.
    pub dropped: u64,
    /// Maximum retained records.
    pub capacity: usize,
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records retained ({} dropped, capacity {})",
            self.len, self.dropped, self.capacity
        )
    }
}

impl<R: fmt::Display> Trace<R> {
    /// Renders the retained records one per line as `time record`.
    pub fn render(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for e in self.iter() {
            let _ = writeln!(out, "{} {}", e.at, e.record);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), 10u32);
        t.record(SimTime::from_micros(2), 20);
        let v: Vec<u32> = t.iter().map(|e| e.record).collect();
        assert_eq!(v, vec![10, 20]);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = Trace::with_capacity(3);
        for i in 0..5u32 {
            t.record(SimTime::from_micros(i as u64), i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let v: Vec<u32> = t.iter().map(|e| e.record).collect();
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_discards_silently() {
        let mut t: Trace<u8> = Trace::new();
        t.set_enabled(false);
        t.record(SimTime::ZERO, 1);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
        t.set_enabled(true);
        t.record(SimTime::ZERO, 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn drain_empties() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, 'x');
        let drained = t.drain();
        assert_eq!(drained.len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn filtered_selects() {
        let mut t = Trace::new();
        for i in 0..10u32 {
            t.record(SimTime::from_micros(i as u64), i);
        }
        let even = t.filtered(|r| r % 2 == 0);
        assert_eq!(even.len(), 5);
    }

    #[test]
    fn render_lines() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(625), "hop");
        assert_eq!(t.render(), "625us hop\n");
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        let _ = Trace::<u8>::with_capacity(0);
    }

    #[test]
    fn summary_reports_occupancy() {
        let mut t = Trace::with_capacity(2);
        for i in 0..3u32 {
            t.record(SimTime::from_micros(i as u64), i);
        }
        let s = t.summary();
        assert_eq!((s.len, s.dropped, s.capacity), (2, 1, 2));
        assert_eq!(s.to_string(), "2 records retained (1 dropped, capacity 2)");
    }
}
