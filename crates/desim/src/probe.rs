//! A ready-made engine [`Observer`]: per-event-type profiling, queue-depth
//! sampling, and event-throughput gauges.
//!
//! [`EngineProbe`] is the standard telemetry observer. It classifies each
//! event with a caller-supplied `fn(&E) -> &'static str`, counts events
//! per class, measures the wall-clock time spent in [`World::handle`] per
//! class (through a pluggable [`MonotonicClock`], so tests stay
//! deterministic), and tracks calendar depth both as a plain distribution
//! and as a time-weighted average over *virtual* time.
//!
//! The probe's accumulated state lives behind an `Rc<RefCell<..>>` handle
//! ([`ProbeHandle`]) so it stays reachable after the probe is boxed into
//! the engine:
//!
//! ```
//! use desim::{Engine, World, Context, SimTime, SimDuration};
//! use desim::metrics::MetricSet;
//! use desim::probe::EngineProbe;
//!
//! struct TickWorld { ticks: u32 }
//! #[derive(Debug)]
//! struct Tick;
//! impl World for TickWorld {
//!     type Event = Tick;
//!     fn handle(&mut self, ctx: &mut Context<Tick>, _ev: Tick) {
//!         self.ticks += 1;
//!         if self.ticks < 5 { ctx.schedule_in(SimDuration::from_millis(10), Tick); }
//!     }
//! }
//!
//! let mut engine = Engine::new(TickWorld { ticks: 0 }, 42);
//! let probe = EngineProbe::new(|_ev: &Tick| "tick");
//! let handle = probe.handle();
//! engine.attach_observer(Box::new(probe));
//! engine.schedule(SimTime::ZERO, Tick);
//! engine.run();
//!
//! let mut m = MetricSet::new();
//! handle.borrow().export_into(&mut m, engine.now());
//! assert_eq!(m.counter_value("engine.events_total"), Some(5));
//! assert_eq!(m.counter_value("engine.events.tick"), Some(5));
//! ```
//!
//! [`World::handle`]: crate::World::handle

// The probe IS the sanctioned host-clock island (see clippy.toml):
// its profiles are documented as the only run-sensitive metrics.
#![allow(clippy::disallowed_methods)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

use crate::engine::Observer;
use crate::metrics::MetricSet;
use crate::stats::{OnlineStats, TimeWeighted};
use crate::time::SimTime;

/// A monotone wall-clock source for handler profiling.
///
/// The probe never calls `Instant::now` directly; it goes through this
/// trait so tests can supply a scripted clock and assert on exact
/// profiling output. [`StdClock`] is the production implementation.
pub trait MonotonicClock {
    /// Nanoseconds elapsed since an arbitrary fixed origin; must never
    /// decrease between calls.
    fn now_nanos(&mut self) -> u64;
}

/// The real wall clock ([`Instant`]-based).
#[derive(Debug)]
pub struct StdClock {
    origin: Instant,
}

impl Default for StdClock {
    fn default() -> Self {
        StdClock {
            origin: Instant::now(),
        }
    }
}

impl MonotonicClock for StdClock {
    fn now_nanos(&mut self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A scripted clock advancing by a fixed step per reading — for
/// deterministic tests of the profiling pipeline.
#[derive(Debug)]
pub struct FixedStepClock {
    now: u64,
    step: u64,
}

impl FixedStepClock {
    /// A clock that returns `0, step, 2·step, …` on successive calls.
    pub fn new(step: u64) -> Self {
        FixedStepClock { now: 0, step }
    }
}

impl MonotonicClock for FixedStepClock {
    fn now_nanos(&mut self) -> u64 {
        let t = self.now;
        self.now += self.step;
        t
    }
}

#[derive(Debug, Default, Clone)]
struct TypeStats {
    count: u64,
    handle_nanos: OnlineStats,
}

/// The probe's accumulated telemetry, shared through a [`ProbeHandle`].
#[derive(Debug, Default)]
pub struct ProbeState {
    per_type: BTreeMap<&'static str, TypeStats>,
    queue_depth: OnlineStats,
    queue_tw: Option<TimeWeighted>,
    first_at: Option<SimTime>,
    last_at: SimTime,
    events: u64,
}

/// Shared ownership of a probe's [`ProbeState`], alive after the probe
/// itself has been boxed into an [`Engine`](crate::Engine).
pub type ProbeHandle = Rc<RefCell<ProbeState>>;

impl ProbeState {
    /// Total events observed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Writes the accumulated telemetry into `metrics` under the
    /// `engine.*` prefix. `now` is the engine's final virtual time, used
    /// to close the time-weighted queue-depth integral and the
    /// events-per-virtual-second gauge.
    ///
    /// Exported names:
    ///
    /// * `engine.events_total` — counter;
    /// * `engine.events.<type>` — counter per event class;
    /// * `engine.handle_nanos.<type>` — wall-time distribution per class;
    /// * `engine.queue_depth` — per-event distribution of pending events;
    /// * `engine.queue_depth.time_avg` — time-weighted average depth;
    /// * `engine.events_per_vsec` — events per virtual second.
    pub fn export_into(&self, metrics: &mut MetricSet, now: SimTime) {
        metrics.set_counter("engine.events_total", self.events);
        for (label, ts) in &self.per_type {
            metrics.set_counter(&format!("engine.events.{label}"), ts.count);
            metrics.observe_stats(&format!("engine.handle_nanos.{label}"), &ts.handle_nanos);
        }
        metrics.observe_stats("engine.queue_depth", &self.queue_depth);
        if let Some(tw) = &self.queue_tw {
            let until = now.max(tw.last_change());
            metrics.gauge("engine.queue_depth.time_avg", tw.average_until(until));
        }
        if let Some(first) = self.first_at {
            let span = (now.max(first) - first).as_secs_f64();
            if span > 0.0 {
                metrics.gauge("engine.events_per_vsec", self.events as f64 / span);
            }
        }
    }
}

/// The standard telemetry [`Observer`]. See the [module docs](self).
pub struct EngineProbe<E> {
    state: ProbeHandle,
    classify: fn(&E) -> &'static str,
    clock: Box<dyn MonotonicClock>,
    in_flight: Option<(u64, &'static str)>,
}

impl<E> std::fmt::Debug for EngineProbe<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineProbe")
            .field("state", &self.state)
            .finish_non_exhaustive()
    }
}

impl<E> EngineProbe<E> {
    /// A probe over the real wall clock. `classify` maps each event to a
    /// short static label used in metric names (keep it to
    /// `[a-z0-9_]`-style tokens).
    pub fn new(classify: fn(&E) -> &'static str) -> Self {
        EngineProbe::with_clock(classify, Box::new(StdClock::default()))
    }

    /// A probe over a caller-supplied clock (tests use
    /// [`FixedStepClock`]).
    pub fn with_clock(classify: fn(&E) -> &'static str, clock: Box<dyn MonotonicClock>) -> Self {
        EngineProbe {
            state: Rc::new(RefCell::new(ProbeState::default())),
            classify,
            clock,
            in_flight: None,
        }
    }

    /// A handle to the probe's state, usable after the probe is attached.
    pub fn handle(&self) -> ProbeHandle {
        Rc::clone(&self.state)
    }
}

impl<E> Observer<E> for EngineProbe<E> {
    fn on_event_dispatched(&mut self, at: SimTime, event: &E) {
        let label = (self.classify)(event);
        self.in_flight = Some((self.clock.now_nanos(), label));
        let mut st = self.state.borrow_mut();
        if st.first_at.is_none() {
            st.first_at = Some(at);
        }
    }

    fn on_event_handled(&mut self, at: SimTime, queue_depth: usize, _steps: u64) {
        let end = self.clock.now_nanos();
        let mut st = self.state.borrow_mut();
        st.events += 1;
        st.last_at = at;
        if let Some((start, label)) = self.in_flight.take() {
            let ts = st.per_type.entry(label).or_default();
            ts.count += 1;
            ts.handle_nanos.push(end.saturating_sub(start) as f64);
        }
        st.queue_depth.push(queue_depth as f64);
        match &mut st.queue_tw {
            Some(tw) => tw.set(at, queue_depth as f64),
            None => st.queue_tw = Some(TimeWeighted::new(at, queue_depth as f64)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Context, Engine, World};
    use crate::time::SimDuration;

    struct Chain {
        left: u32,
    }
    #[derive(Debug)]
    enum Ev {
        Fast,
        Slow,
    }
    impl World for Chain {
        type Event = Ev;
        fn handle(&mut self, ctx: &mut Context<Ev>, ev: Ev) {
            if self.left == 0 {
                return;
            }
            self.left -= 1;
            match ev {
                Ev::Fast => {
                    ctx.schedule_in(SimDuration::from_millis(1), Ev::Slow);
                }
                Ev::Slow => {
                    ctx.schedule_in(SimDuration::from_millis(9), Ev::Fast);
                }
            }
        }
    }

    fn classify(ev: &Ev) -> &'static str {
        match ev {
            Ev::Fast => "fast",
            Ev::Slow => "slow",
        }
    }

    #[test]
    fn probe_counts_and_profiles_by_type() {
        let mut e = Engine::new(Chain { left: 10 }, 3);
        let probe = EngineProbe::with_clock(classify, Box::new(FixedStepClock::new(50)));
        let handle = probe.handle();
        e.attach_observer(Box::new(probe));
        e.schedule(SimTime::ZERO, Ev::Fast);
        e.run();

        let mut m = MetricSet::new();
        handle.borrow().export_into(&mut m, e.now());
        assert_eq!(m.counter_value("engine.events_total"), Some(11));
        assert_eq!(m.counter_value("engine.events.fast"), Some(6));
        assert_eq!(m.counter_value("engine.events.slow"), Some(5));
        // The scripted clock ticks once at dispatch and once at handled,
        // so every handler "takes" exactly one 50 ns step.
        let prof = m.stats("engine.handle_nanos.fast").unwrap();
        assert_eq!(prof.len(), 6);
        assert_eq!(prof.mean(), 50.0);
        // The chain keeps exactly one follow-up event pending until the
        // budget runs out, then drains to zero.
        let depth = m.stats("engine.queue_depth").unwrap();
        assert_eq!(depth.len(), 11);
        assert_eq!(depth.min(), Some(0.0));
        assert_eq!(depth.max(), Some(1.0));
        assert!(m.gauge_value("engine.events_per_vsec").unwrap() > 0.0);
        assert!(m.gauge_value("engine.queue_depth.time_avg").is_some());
    }

    #[test]
    fn empty_probe_exports_safely() {
        let probe = EngineProbe::new(classify);
        let mut m = MetricSet::new();
        probe.handle().borrow().export_into(&mut m, SimTime::ZERO);
        assert_eq!(m.counter_value("engine.events_total"), Some(0));
        assert_eq!(m.gauge_value("engine.events_per_vsec"), None);
    }
}
